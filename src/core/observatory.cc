#include "core/observatory.h"

#include <cctype>

#include "common/logging.h"
#include "common/strings.h"
#include "eo/ontology.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/persistence.h"

namespace teleios::core {

namespace {

/// Strips a leading case-insensitive PROFILE keyword; true if it was
/// present (and `statement` now holds the rest).
bool StripProfilePrefix(std::string* statement) {
  std::string_view trimmed = StrTrim(*statement);
  size_t end = 0;
  while (end < trimmed.size() &&
         !std::isspace(static_cast<unsigned char>(trimmed[end]))) {
    ++end;
  }
  if (StrLower(trimmed.substr(0, end)) != "profile") return false;
  *statement = std::string(StrTrim(trimmed.substr(end)));
  return true;
}

void FlattenSpans(const obs::SpanNode& node, int64_t depth,
                  storage::Table* out) {
  std::string detail;
  for (const auto& [k, v] : node.attrs) {
    detail += (detail.empty() ? "" : " ") + k + "=" + v;
  }
  out->column(0).AppendString(node.name);
  out->column(1).AppendInt64(depth);
  out->column(2).AppendFloat64(node.millis);
  out->column(3).AppendString(detail);
  for (const obs::SpanNode& child : node.children) {
    FlattenSpans(child, depth + 1, out);
  }
}

/// The span tree as a table, pre-order, one row per span.
storage::Table SpanTreeTable(const obs::SpanNode& root) {
  storage::Table table{storage::Schema({{"span", storage::ColumnType::kString},
                                        {"depth", storage::ColumnType::kInt64},
                                        {"millis",
                                         storage::ColumnType::kFloat64},
                                        {"detail",
                                         storage::ColumnType::kString}})};
  FlattenSpans(root, 0, &table);
  return table;
}

/// Runs `execute(statement)` under a fresh trace named `trace_name` and
/// returns the finished span tree as a table (errors pass through).
template <typename Fn>
Result<storage::Table> ProfileStatement(const char* trace_name,
                                        const std::string& statement,
                                        Fn&& execute) {
  obs::ScopedTrace trace(trace_name);
  Result<storage::Table> result = execute(statement);
  obs::SpanNode root = trace.Finish();
  if (!result.ok()) return result.status();
  root.attrs.emplace_back("rows", std::to_string(result->num_rows()));
  return SpanTreeTable(root);
}

}  // namespace

template <typename Fn>
auto VirtualEarthObservatory::Governed(const char* tier,
                                       const exec::CancellationToken* cancel,
                                       Fn&& run) -> decltype(run()) {
  governor::AdmissionTicket ticket;
  {
    // Queue wait is part of the statement's observed latency; the span
    // makes it visible in PROFILE output.
    obs::TraceSpan span("governor.admit");
    auto admitted = admission_.Admit(cancel);
    if (!admitted.ok()) {
      obs::Count(obs::WithLabel("teleios_governor_rejected_total", "tier",
                                tier));
      return admitted.status();
    }
    ticket = std::move(*admitted);
  }
  // A per-query child of the caller's budget: the process (or test) root
  // enforces the limit, the child gives per-statement accounting — its
  // balance must return to zero on every path out of `run`.
  governor::MemoryBudget query_budget(std::string(tier) + "-query",
                                      governor::MemoryBudget::kUnlimited,
                                      governor::CurrentBudget());
  governor::ScopedBudget budget_scope(&query_budget);
  auto result = governor::WithOomGuard(tier, [&] { return run(); });
  obs::SetGauge("teleios_governor_query_peak_bytes",
                static_cast<double>(query_budget.peak()));
  // Always zero unless a charge guard leaked — a cheap, always-on
  // invariant check surfaced as a metric.
  obs::SetGauge("teleios_governor_query_leak_bytes",
                static_cast<double>(query_budget.used()));
  return result;
}

VirtualEarthObservatory::VirtualEarthObservatory() {
  vault_ = std::make_unique<vault::DataVault>(&catalog_);
  sciql_ = std::make_unique<sciql::SciQlEngine>(&catalog_);
  sql_ = std::make_unique<relational::SqlEngine>(&catalog_);
  chain_ = std::make_unique<noa::ProcessingChain>(vault_.get(), sciql_.get(),
                                                  &strabon_, &catalog_);
  // The domain ontology is part of the observatory's knowledge base.
  // Its load result used to be dropped here (found by the
  // [[nodiscard]] sweep); a constructor cannot propagate a Status, so
  // the outcome is logged and kept sticky in ontology_status().
  Result<size_t> loaded = strabon_.LoadTurtle(eo::OntologyTurtle());
  if (!loaded.ok()) {
    ontology_status_ = loaded.status();
    TELEIOS_LOG(Error) << "domain ontology failed to load: "
                        << loaded.status().message();
  }
}

Result<size_t> VirtualEarthObservatory::AttachArchive(
    const std::string& directory) {
  return vault_->Attach(directory);
}

Status VirtualEarthObservatory::RegisterRaster(const std::string& name) {
  if (sciql_->HasArray(name)) return Status::OK();
  TELEIOS_ASSIGN_OR_RETURN(array::ArrayPtr array,
                           vault_->GetRasterArray(name));
  return sciql_->RegisterArray(std::move(array));
}

Result<storage::Table> VirtualEarthObservatory::Sql(
    const std::string& statement, const exec::CancellationToken* cancel) {
  std::string body = statement;
  bool profile = StripProfilePrefix(&body);
  auto execute = [&](const std::string& s) {
    return Governed("sql", cancel, [&] { return sql_->Execute(s); });
  };
  if (profile) return ProfileStatement("sql", body, execute);
  return execute(body);
}

Result<storage::Table> VirtualEarthObservatory::SciQl(
    const std::string& statement, const exec::CancellationToken* cancel) {
  std::string body = statement;
  bool profile = StripProfilePrefix(&body);
  auto execute = [&](const std::string& s) {
    return Governed("sciql", cancel, [&] { return sciql_->Execute(s); });
  };
  if (profile) return ProfileStatement("sciql", body, execute);
  return execute(body);
}

Result<storage::Table> VirtualEarthObservatory::StSparql(
    const std::string& query, const exec::CancellationToken* cancel) {
  std::string body = query;
  bool profile = StripProfilePrefix(&body);
  auto execute = [&](const std::string& s) {
    return Governed("stsparql", cancel, [&] { return strabon_.Query(s); });
  };
  if (profile) return ProfileStatement("stsparql", body, execute);
  return execute(body);
}

Result<size_t> VirtualEarthObservatory::StSparqlUpdate(
    const std::string& update) {
  return strabon_.Update(update);
}

Result<size_t> VirtualEarthObservatory::LoadLinkedData(
    const std::string& turtle) {
  return strabon_.LoadTurtle(turtle);
}

Result<noa::ChainResult> VirtualEarthObservatory::RunFireChain(
    const std::string& raster_name, const noa::ChainConfig& config,
    const exec::CancellationToken* cancel) {
  return Governed("fire-chain", cancel,
                  [&] { return chain_->Run(raster_name, config, cancel); });
}

Result<noa::ChainResult> VirtualEarthObservatory::RunFireChainBatch(
    const std::vector<std::string>& raster_names,
    const noa::ChainConfig& config, const exec::CancellationToken* cancel) {
  // One admission slot and one budget for the whole batch: the chain's
  // internal fan-out (one worker per product) stays inside them.
  return Governed("fire-chain-batch", cancel, [&] {
    return chain_->RunBatch(raster_names, config, cancel);
  });
}

Status VirtualEarthObservatory::SaveCatalog(const std::string& dir) {
  return storage::SaveCatalog(catalog_, dir);
}

Result<size_t> VirtualEarthObservatory::LoadCatalog(const std::string& dir) {
  return storage::LoadCatalog(dir, &catalog_);
}

std::string VirtualEarthObservatory::MetricsText() const {
  return obs::MetricsRegistry::Global().TextExposition();
}

std::string VirtualEarthObservatory::MetricsJson() const {
  return obs::MetricsRegistry::Global().JsonExposition();
}

Result<noa::RefinementReport> VirtualEarthObservatory::Refine(
    const std::string& product_id) {
  return noa::RefineHotspots(&strabon_, product_id);
}

}  // namespace teleios::core
