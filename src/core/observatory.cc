#include "core/observatory.h"

#include <cctype>

#include "common/logging.h"
#include "common/strings.h"
#include "eo/ontology.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/persistence.h"

namespace teleios::core {

namespace {

/// Strips a leading case-insensitive PROFILE keyword; true if it was
/// present (and `statement` now holds the rest).
bool StripProfilePrefix(std::string* statement) {
  std::string_view trimmed = StrTrim(*statement);
  size_t end = 0;
  while (end < trimmed.size() &&
         !std::isspace(static_cast<unsigned char>(trimmed[end]))) {
    ++end;
  }
  if (StrLower(trimmed.substr(0, end)) != "profile") return false;
  *statement = std::string(StrTrim(trimmed.substr(end)));
  return true;
}

void FlattenSpans(const obs::SpanNode& node, int64_t depth,
                  storage::Table* out) {
  std::string detail;
  for (const auto& [k, v] : node.attrs) {
    detail += (detail.empty() ? "" : " ") + k + "=" + v;
  }
  out->column(0).AppendString(node.name);
  out->column(1).AppendInt64(depth);
  out->column(2).AppendFloat64(node.millis);
  out->column(3).AppendString(detail);
  for (const obs::SpanNode& child : node.children) {
    FlattenSpans(child, depth + 1, out);
  }
}

/// The span tree as a table, pre-order, one row per span.
storage::Table SpanTreeTable(const obs::SpanNode& root) {
  storage::Table table{storage::Schema({{"span", storage::ColumnType::kString},
                                        {"depth", storage::ColumnType::kInt64},
                                        {"millis",
                                         storage::ColumnType::kFloat64},
                                        {"detail",
                                         storage::ColumnType::kString}})};
  FlattenSpans(root, 0, &table);
  return table;
}

/// Runs `execute(statement)` under a fresh trace named `trace_name` and
/// returns the finished span tree as a table (errors pass through).
template <typename Fn>
Result<storage::Table> ProfileStatement(const char* trace_name,
                                        const std::string& statement,
                                        Fn&& execute) {
  obs::ScopedTrace trace(trace_name);
  Result<storage::Table> result = execute(statement);
  obs::SpanNode root = trace.Finish();
  if (!result.ok()) return result.status();
  root.attrs.emplace_back("rows", std::to_string(result->num_rows()));
  return SpanTreeTable(root);
}

}  // namespace

VirtualEarthObservatory::VirtualEarthObservatory() {
  vault_ = std::make_unique<vault::DataVault>(&catalog_);
  sciql_ = std::make_unique<sciql::SciQlEngine>(&catalog_);
  sql_ = std::make_unique<relational::SqlEngine>(&catalog_);
  chain_ = std::make_unique<noa::ProcessingChain>(vault_.get(), sciql_.get(),
                                                  &strabon_, &catalog_);
  // The domain ontology is part of the observatory's knowledge base.
  // Its load result used to be dropped here (found by the
  // [[nodiscard]] sweep); a constructor cannot propagate a Status, so
  // the outcome is logged and kept sticky in ontology_status().
  Result<size_t> loaded = strabon_.LoadTurtle(eo::OntologyTurtle());
  if (!loaded.ok()) {
    ontology_status_ = loaded.status();
    TELEIOS_LOG(Error) << "domain ontology failed to load: "
                        << loaded.status().message();
  }
}

Result<size_t> VirtualEarthObservatory::AttachArchive(
    const std::string& directory) {
  return vault_->Attach(directory);
}

Status VirtualEarthObservatory::RegisterRaster(const std::string& name) {
  if (sciql_->HasArray(name)) return Status::OK();
  TELEIOS_ASSIGN_OR_RETURN(array::ArrayPtr array,
                           vault_->GetRasterArray(name));
  return sciql_->RegisterArray(std::move(array));
}

Result<storage::Table> VirtualEarthObservatory::Sql(
    const std::string& statement) {
  std::string body = statement;
  if (StripProfilePrefix(&body)) {
    return ProfileStatement(
        "sql", body, [&](const std::string& s) { return sql_->Execute(s); });
  }
  return sql_->Execute(statement);
}

Result<storage::Table> VirtualEarthObservatory::SciQl(
    const std::string& statement) {
  std::string body = statement;
  if (StripProfilePrefix(&body)) {
    return ProfileStatement("sciql", body, [&](const std::string& s) {
      return sciql_->Execute(s);
    });
  }
  return sciql_->Execute(statement);
}

Result<storage::Table> VirtualEarthObservatory::StSparql(
    const std::string& query) {
  std::string body = query;
  if (StripProfilePrefix(&body)) {
    return ProfileStatement("stsparql", body, [&](const std::string& s) {
      return strabon_.Query(s);
    });
  }
  return strabon_.Query(query);
}

Result<size_t> VirtualEarthObservatory::StSparqlUpdate(
    const std::string& update) {
  return strabon_.Update(update);
}

Result<size_t> VirtualEarthObservatory::LoadLinkedData(
    const std::string& turtle) {
  return strabon_.LoadTurtle(turtle);
}

Result<noa::ChainResult> VirtualEarthObservatory::RunFireChain(
    const std::string& raster_name, const noa::ChainConfig& config) {
  return chain_->Run(raster_name, config);
}

Result<noa::ChainResult> VirtualEarthObservatory::RunFireChainBatch(
    const std::vector<std::string>& raster_names,
    const noa::ChainConfig& config) {
  return chain_->RunBatch(raster_names, config);
}

Status VirtualEarthObservatory::SaveCatalog(const std::string& dir) {
  return storage::SaveCatalog(catalog_, dir);
}

Result<size_t> VirtualEarthObservatory::LoadCatalog(const std::string& dir) {
  return storage::LoadCatalog(dir, &catalog_);
}

std::string VirtualEarthObservatory::MetricsText() const {
  return obs::MetricsRegistry::Global().TextExposition();
}

std::string VirtualEarthObservatory::MetricsJson() const {
  return obs::MetricsRegistry::Global().JsonExposition();
}

Result<noa::RefinementReport> VirtualEarthObservatory::Refine(
    const std::string& product_id) {
  return noa::RefineHotspots(&strabon_, product_id);
}

}  // namespace teleios::core
