#include "core/observatory.h"

#include "eo/ontology.h"

namespace teleios::core {

VirtualEarthObservatory::VirtualEarthObservatory() {
  vault_ = std::make_unique<vault::DataVault>(&catalog_);
  sciql_ = std::make_unique<sciql::SciQlEngine>(&catalog_);
  sql_ = std::make_unique<relational::SqlEngine>(&catalog_);
  chain_ = std::make_unique<noa::ProcessingChain>(vault_.get(), sciql_.get(),
                                                  &strabon_, &catalog_);
  // The domain ontology is part of the observatory's knowledge base.
  (void)strabon_.LoadTurtle(eo::OntologyTurtle());
}

Result<size_t> VirtualEarthObservatory::AttachArchive(
    const std::string& directory) {
  return vault_->Attach(directory);
}

Status VirtualEarthObservatory::RegisterRaster(const std::string& name) {
  if (sciql_->HasArray(name)) return Status::OK();
  TELEIOS_ASSIGN_OR_RETURN(array::ArrayPtr array,
                           vault_->GetRasterArray(name));
  return sciql_->RegisterArray(std::move(array));
}

Result<storage::Table> VirtualEarthObservatory::Sql(
    const std::string& statement) {
  return sql_->Execute(statement);
}

Result<storage::Table> VirtualEarthObservatory::SciQl(
    const std::string& statement) {
  return sciql_->Execute(statement);
}

Result<storage::Table> VirtualEarthObservatory::StSparql(
    const std::string& query) {
  return strabon_.Query(query);
}

Result<size_t> VirtualEarthObservatory::StSparqlUpdate(
    const std::string& update) {
  return strabon_.Update(update);
}

Result<size_t> VirtualEarthObservatory::LoadLinkedData(
    const std::string& turtle) {
  return strabon_.LoadTurtle(turtle);
}

Result<noa::ChainResult> VirtualEarthObservatory::RunFireChain(
    const std::string& raster_name, const noa::ChainConfig& config) {
  return chain_->Run(raster_name, config);
}

Result<noa::RefinementReport> VirtualEarthObservatory::Refine(
    const std::string& product_id) {
  return noa::RefineHotspots(&strabon_, product_id);
}

}  // namespace teleios::core
