#include "core/observatory.h"

#include <cctype>
#include <optional>
#include <type_traits>
#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/strings.h"
#include "eo/ontology.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "relational/sql_parser.h"
#include "storage/persistence.h"

namespace teleios::core {

namespace {

/// Strips a leading case-insensitive PROFILE keyword; true if it was
/// present (and `statement` now holds the rest).
bool StripProfilePrefix(std::string* statement) {
  std::string_view trimmed = StrTrim(*statement);
  size_t end = 0;
  while (end < trimmed.size() &&
         !std::isspace(static_cast<unsigned char>(trimmed[end]))) {
    ++end;
  }
  if (StrLower(trimmed.substr(0, end)) != "profile") return false;
  *statement = std::string(StrTrim(trimmed.substr(end)));
  return true;
}

void FlattenSpans(const obs::SpanNode& node, int64_t depth,
                  storage::Table* out) {
  std::string detail;
  for (const auto& [k, v] : node.attrs) {
    detail += (detail.empty() ? "" : " ") + k + "=" + v;
  }
  out->column(0).AppendString(node.name);
  out->column(1).AppendInt64(depth);
  out->column(2).AppendFloat64(node.millis);
  out->column(3).AppendString(detail);
  for (const obs::SpanNode& child : node.children) {
    FlattenSpans(child, depth + 1, out);
  }
}

/// True when `statement` parses as a mutating SQL statement (anything
/// but SELECT). Parse failures return false: the engine will produce
/// the real error, and nothing gets logged for a statement that can
/// never apply.
bool IsSqlMutation(const std::string& statement) {
  Result<relational::Statement> parsed = relational::ParseSql(statement);
  if (!parsed.ok()) return false;
  return !std::holds_alternative<relational::SelectStatement>(*parsed);
}

/// The span tree as a table, pre-order, one row per span.
storage::Table SpanTreeTable(const obs::SpanNode& root) {
  storage::Table table{storage::Schema({{"span", storage::ColumnType::kString},
                                        {"depth", storage::ColumnType::kInt64},
                                        {"millis",
                                         storage::ColumnType::kFloat64},
                                        {"detail",
                                         storage::ColumnType::kString}})};
  FlattenSpans(root, 0, &table);
  return table;
}

}  // namespace

template <typename Fn>
auto VirtualEarthObservatory::Governed(const char* tier,
                                       const std::string& statement,
                                       bool profile,
                                       const CancellationToken* cancel,
                                       Fn&& run) -> decltype(run()) {
  using R = decltype(run());
  constexpr bool kTableResult = std::is_same_v<R, Result<storage::Table>>;

  // Register first: the statement is observable in sys.queries (and
  // killable) from the moment it exists, queue wait included. The
  // registry token chains to the caller's, so either cancels the work.
  obs::QueryGuard query = introspection_.Start(tier, statement, cancel);
  const bool traced = profile || introspection_.ShouldSample(query.id());
  std::optional<obs::ScopedTrace> trace;
  if (traced) trace.emplace(tier);

  Status admit_error = Status::OK();
  governor::AdmissionTicket ticket;
  double queued_millis = 0;
  {
    // Queue wait is part of the statement's observed latency; the span
    // makes it visible in PROFILE output.
    obs::TraceSpan span("governor.admit");
    auto admitted = admission_.Admit(query.token());
    if (admitted.ok()) {
      ticket = std::move(*admitted);
      queued_millis = span.ElapsedMillis();
    } else {
      admit_error = admitted.status();
    }
  }
  if (!admit_error.ok()) {
    obs::Count(obs::WithLabel("teleios_governor_rejected_total", "tier",
                              tier));
    std::string trace_json;
    if (trace.has_value()) {
      obs::SpanNode root = trace->Finish();
      root.attrs.emplace_back("status", StatusCodeName(admit_error.code()));
      trace_json = obs::ToChromeTraceJson(root);
    }
    introspection_.Finish(std::move(query), admit_error.code(), -1, 0,
                          std::move(trace_json));
    return admit_error;
  }
  introspection_.MarkRunning(query, queued_millis);

  // A per-query child of the caller's budget: the process (or test) root
  // enforces the limit, the child gives per-statement accounting — its
  // balance must return to zero on every path out of `run`.
  governor::MemoryBudget query_budget(std::string(tier) + "-query",
                                      governor::MemoryBudget::kUnlimited,
                                      governor::CurrentBudget());
  R result = [&] {
    governor::ScopedBudget budget_scope(&query_budget);
    // Install the registry token thread-locally: engines that never
    // thread a token still stop at morsel boundaries after KillQuery.
    ScopedCancel cancel_scope(query.token());
    return governor::WithOomGuard(tier, [&] { return run(); });
  }();
  obs::SetGauge("teleios_governor_query_peak_bytes",
                static_cast<double>(query_budget.peak()));
  // Always zero unless a charge guard leaked — a cheap, always-on
  // invariant check surfaced as a metric.
  obs::SetGauge("teleios_governor_query_leak_bytes",
                static_cast<double>(query_budget.used()));

  int64_t rows = -1;
  if constexpr (kTableResult) {
    if (result.ok()) rows = static_cast<int64_t>(result->num_rows());
  }

  // A failing statement still finishes its trace: the root span carries
  // the outcome as a status attribute, so exported trees are self-
  // describing on error paths too.
  obs::SpanNode root;
  std::string trace_json;
  if (trace.has_value()) {
    root = trace->Finish();
    root.attrs.emplace_back("status",
                            StatusCodeName(result.status().code()));
    if (rows >= 0) root.attrs.emplace_back("rows", std::to_string(rows));
    trace_json = obs::ToChromeTraceJson(root);
  }
  introspection_.Finish(std::move(query), result.status().code(), rows,
                        query_budget.peak(), std::move(trace_json));

  if constexpr (kTableResult) {
    if (profile) {
      // PROFILE of a failing statement keeps returning the error (the
      // trace still landed in sys.query_log above).
      if (!result.ok()) return result;
      return SpanTreeTable(root);
    }
  }
  return result;
}

VirtualEarthObservatory::VirtualEarthObservatory() {
  vault_ = std::make_unique<vault::DataVault>(&catalog_);
  sciql_ = std::make_unique<sciql::SciQlEngine>(&catalog_);
  sql_ = std::make_unique<relational::SqlEngine>(&catalog_);
  chain_ = std::make_unique<noa::ProcessingChain>(vault_.get(), sciql_.get(),
                                                  &strabon_, &catalog_);
  // Both query engines serve the sys.* schema from this observatory's
  // live state.
  sql_->set_virtual_tables(&system_tables_);
  sciql_->set_virtual_tables(&system_tables_);
  // The domain ontology is part of the observatory's knowledge base.
  // Its load result used to be dropped here (found by the
  // [[nodiscard]] sweep); a constructor cannot propagate a Status, so
  // the outcome is logged and kept sticky in ontology_status().
  Result<size_t> loaded = strabon_.LoadTurtle(eo::OntologyTurtle());
  if (!loaded.ok()) {
    ontology_status_ = loaded.status();
    TELEIOS_LOG(Error) << "domain ontology failed to load: "
                        << loaded.status().message();
  }
}

Result<size_t> VirtualEarthObservatory::AttachArchive(
    const std::string& directory) {
  return vault_->Attach(directory);
}

Status VirtualEarthObservatory::RegisterRaster(const std::string& name) {
  if (sciql_->HasArray(name)) return Status::OK();
  TELEIOS_ASSIGN_OR_RETURN(array::ArrayPtr array,
                           vault_->GetRasterArray(name));
  return sciql_->RegisterArray(std::move(array));
}

Result<storage::Table> VirtualEarthObservatory::Sql(
    const std::string& statement, const CancellationToken* cancel) {
  std::string body = statement;
  bool profile = StripProfilePrefix(&body);
  return Governed("sql", body, profile, cancel, [&] {
    // A durable observatory write-ahead-logs mutating statements; the
    // log+apply runs inside the governed scope, so admission, budget,
    // and introspection see the durable path like any other statement.
    // Mutations are single-writer (see sql_write_mu_) — the lock is
    // taken inside the governed scope so admission queueing, not the
    // mutex, is where concurrent statements wait first.
    if (IsSqlMutation(body)) {
      MutexLock write_lock(sql_write_mu_);
      if (durability_ != nullptr) return durability_->SqlMutation(body);
      return sql_->Execute(body);
    }
    return sql_->Execute(body);
  });
}

Result<storage::Table> VirtualEarthObservatory::SciQl(
    const std::string& statement, const CancellationToken* cancel) {
  std::string body = statement;
  bool profile = StripProfilePrefix(&body);
  return Governed("sciql", body, profile, cancel,
                  [&] { return sciql_->Execute(body); });
}

Result<storage::Table> VirtualEarthObservatory::StSparql(
    const std::string& query, const CancellationToken* cancel) {
  std::string body = query;
  bool profile = StripProfilePrefix(&body);
  return Governed("stsparql", body, profile, cancel,
                  [&] { return strabon_.Query(body); });
}

Result<size_t> VirtualEarthObservatory::StSparqlUpdate(
    const std::string& update) {
  if (durability_ != nullptr) return durability_->StrabonUpdate(update);
  return strabon_.Update(update);
}

Result<size_t> VirtualEarthObservatory::LoadLinkedData(
    const std::string& turtle) {
  if (durability_ != nullptr) return durability_->LoadTurtle(turtle);
  return strabon_.LoadTurtle(turtle);
}

Result<noa::ChainResult> VirtualEarthObservatory::RunFireChain(
    const std::string& raster_name, const noa::ChainConfig& config,
    const CancellationToken* cancel) {
  return Governed("fire-chain", "fire-chain " + raster_name,
                  /*profile=*/false, cancel,
                  [&] { return chain_->Run(raster_name, config, cancel); });
}

Result<noa::ChainResult> VirtualEarthObservatory::RunFireChainBatch(
    const std::vector<std::string>& raster_names,
    const noa::ChainConfig& config, const CancellationToken* cancel) {
  // One admission slot and one budget for the whole batch: the chain's
  // internal fan-out (one worker per product) stays inside them.
  std::string label =
      "fire-chain-batch (" + std::to_string(raster_names.size()) +
      " rasters)";
  return Governed("fire-chain-batch", label, /*profile=*/false, cancel, [&] {
    return chain_->RunBatch(raster_names, config, cancel);
  });
}

Status VirtualEarthObservatory::SaveCatalog(const std::string& dir) {
  return storage::SaveCatalog(catalog_, dir);
}

Result<size_t> VirtualEarthObservatory::LoadCatalog(const std::string& dir) {
  return storage::LoadCatalog(dir, &catalog_);
}

Status VirtualEarthObservatory::Open(const std::string& dir) {
  return Open(dir, DurabilityOptions::FromEnv());
}

Status VirtualEarthObservatory::Open(const std::string& dir,
                                     const DurabilityOptions& options) {
  if (durability_ != nullptr) {
    return Status::Internal("observatory already opened at '" +
                            durability_->dir() + "'");
  }
  DurabilityEngines engines;
  engines.catalog = &catalog_;
  engines.sql = sql_.get();
  engines.strabon = &strabon_;
  engines.vault = vault_.get();
  auto durability =
      std::make_unique<DurabilityManager>(engines, dir, options);
  TELEIOS_RETURN_IF_ERROR(durability->Recover());
  durability_ = std::move(durability);
  // Live vault transitions mirror into the log from here on (replayed
  // attachments above fired no hooks — the hook was not yet installed —
  // so recovery does not re-log itself).
  DurabilityManager* raw = durability_.get();
  vault_->set_transition_hook([raw](const vault::VaultTransition& t) {
    raw->OnVaultTransition(t);
  });
  system_tables_.set_durability(raw);
  return Status::OK();
}

Status VirtualEarthObservatory::Checkpoint() {
  if (durability_ == nullptr) {
    return Status::Internal("observatory is not durable; call Open first");
  }
  return durability_->Checkpoint();
}

RecoveryReport VirtualEarthObservatory::recovery_report() const {
  if (durability_ == nullptr) return RecoveryReport{};
  return durability_->recovery_report();
}

DurabilityStats VirtualEarthObservatory::durability_stats() const {
  if (durability_ == nullptr) return DurabilityStats{};
  return durability_->stats();
}

Result<size_t> VirtualEarthObservatory::PublishAnnotations(
    const mining::AnnotationService& service, const std::string& product_id) {
  if (durability_ != nullptr) {
    if (service.annotations().empty()) {
      return Status::InvalidArgument("nothing annotated yet");
    }
    return durability_->PublishAnnotations(service.annotations(),
                                           product_id);
  }
  return service.Publish(product_id, &strabon_);
}

Result<size_t> VirtualEarthObservatory::DeleteAnnotations(
    const std::string& product_id) {
  if (durability_ != nullptr) return durability_->DeleteAnnotations(product_id);
  return strabon_.Update(mining::DeleteAnnotationsUpdate(product_id));
}

std::string VirtualEarthObservatory::MetricsText() const {
  return obs::MetricsRegistry::Global().TextExposition();
}

std::string VirtualEarthObservatory::MetricsJson() const {
  return obs::MetricsRegistry::Global().JsonExposition();
}

Result<noa::RefinementReport> VirtualEarthObservatory::Refine(
    const std::string& product_id) {
  return noa::RefineHotspots(&strabon_, product_id);
}

}  // namespace teleios::core
