#ifndef TELEIOS_NOA_REFINEMENT_H_
#define TELEIOS_NOA_REFINEMENT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "eo/scene.h"
#include "geo/geometry.h"
#include "strabon/strabon.h"

namespace teleios::noa {

/// Statistics of a refinement pass (demo scenario 2: improving the
/// thematic accuracy of the hotspot shapefiles).
struct RefinementReport {
  size_t hotspots_examined = 0;
  size_t hotspots_refined = 0;   // geometry clipped by the sea
  size_t hotspots_removed = 0;   // entirely at sea
  double area_removed = 0;       // square degrees clipped away
  /// The stSPARQL statements executed, in order (demo scenario 2 shows
  /// these to the user).
  std::vector<std::string> statements;
};

/// Refines the hotspot products of `product_id` in `strabon` against the
/// sea geometry published by the coastline linked-data layer
/// (noa:sea noa:hasGeometry ...): hotspot geometry intersecting the sea
/// is replaced by its strdf:difference with the sea, and hotspots that
/// end up empty are retyped as noa:RejectedHotspot. All edits are
/// executed as stSPARQL UPDATE statements, exactly as the paper's
/// post-processing step describes.
Result<RefinementReport> RefineHotspots(strabon::Strabon* strabon,
                                        const std::string& product_id);

/// Thematic accuracy of a hotspot product against ground truth: the
/// fraction of total hotspot area that overlaps true fire circles
/// (precision) and the fraction of fire area covered (recall).
struct ThematicAccuracy {
  double precision = 0;
  double recall = 0;
};

Result<ThematicAccuracy> ScoreHotspotsAgainstTruth(
    const std::vector<geo::Geometry>& hotspot_geometries,
    const geo::Geometry& ground_truth);

/// Fetches the (current) geometries of all noa:Hotspot instances of a
/// product from Strabon.
Result<std::vector<geo::Geometry>> FetchHotspotGeometries(
    strabon::Strabon* strabon, const std::string& product_id);

}  // namespace teleios::noa

#endif  // TELEIOS_NOA_REFINEMENT_H_
