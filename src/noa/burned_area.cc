#include "noa/burned_area.h"

#include <set>

#include "eo/product.h"
#include "geo/clip.h"
#include "geo/wkt.h"
#include "strabon/temporal.h"

namespace teleios::noa {

using rdf::Term;

Result<BurnedAreaProduct> MapBurnedArea(strabon::Strabon* strabon,
                                        const std::string& product_id_suffix,
                                        int64_t window_start,
                                        int64_t window_end) {
  if (window_end < window_start) {
    return Status::InvalidArgument("burned-area window ends before start");
  }
  std::string period = "\"[" + strabon::FormatDateTime(window_start) + ", " +
                       strabon::FormatDateTime(window_end) +
                       "]\"^^strdf:period";
  // Hotspots whose valid time falls inside the window, with provenance.
  TELEIOS_ASSIGN_OR_RETURN(
      strabon::SolutionSet solutions,
      strabon->Select("SELECT ?g ?p WHERE { ?h a noa:Hotspot ; "
                      "noa:hasGeometry ?g ; noa:hasValidTime ?vt ; "
                      "noa:derivedFromProduct ?p . "
                      "FILTER(strdf:during(?vt, " + period + ")) }"));
  BurnedAreaProduct product;
  product.id = "burned-area-" + product_id_suffix;
  product.window_start = window_start;
  product.window_end = window_end;

  std::set<rdf::TermId> sources;
  geo::Geometry merged;
  for (const auto& row : solutions.rows) {
    if (row[0] == rdf::kNoTerm) continue;
    const Term& term = strabon->store().dict().At(row[0]);
    auto g = geo::ParseWkt(term.lexical);
    if (!g.ok() || g->IsEmpty()) continue;  // rejected/empty geometries
    if (merged.IsEmpty()) {
      merged = std::move(*g);
    } else {
      TELEIOS_ASSIGN_OR_RETURN(merged, geo::Union(merged, *g));
    }
    ++product.hotspots_merged;
    if (row.size() > 1 && row[1] != rdf::kNoTerm) sources.insert(row[1]);
  }
  product.geometry = std::move(merged);
  product.area = product.geometry.Area();

  // Publish.
  std::string ns(eo::kNoaNs);
  Term subject = Term::Iri(ns + "burnedArea/" + product.id);
  strabon->Add(subject, Term::Iri(rdf::kRdfType),
               Term::Iri(ns + "BurnedArea"));
  strabon->Add(subject, Term::Iri(ns + "hasGeometry"),
               Term::WktLiteral(geo::WriteWkt(product.geometry)));
  strabon->Add(subject, Term::Iri(ns + "hasValidTime"),
               strabon::PeriodLiteral(window_start, window_end));
  for (rdf::TermId source : sources) {
    strabon->Add(subject, Term::Iri(ns + "derivedFromProduct"),
                 strabon->store().dict().At(source));
  }
  return product;
}

}  // namespace teleios::noa
