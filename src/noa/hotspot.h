#ifndef TELEIOS_NOA_HOTSPOT_H_
#define TELEIOS_NOA_HOTSPOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "eo/scene.h"
#include "geo/geometry.h"
#include "vault/formats.h"

namespace teleios::noa {

/// A detected fire hotspot: one connected component of fire pixels,
/// polygonized and georeferenced — the unit of the shapefile products the
/// NOA chain delivers.
struct Hotspot {
  int64_t id = 0;
  geo::Geometry geometry;    // world coordinates (lon/lat)
  int64_t pixel_count = 0;
  double max_t39 = 0;        // peak 3.9um brightness temperature
  double confidence = 0;     // heuristic 0..1
  int64_t detected_at = 0;   // acquisition time
};

/// Extracts hotspots from a fire mask: 4-connected components >=
/// `min_pixels`, boundary polygonization, georeferencing through the
/// scene transform.
Result<std::vector<Hotspot>> ExtractHotspots(
    const eo::Scene& scene, const std::vector<uint8_t>& fire_mask,
    int min_pixels = 1);

/// Packs hotspots as a .vec product ("shapefile" in the paper's terms).
vault::VecFile HotspotsToVec(const std::vector<Hotspot>& hotspots,
                             const std::string& product_name);

/// Reads hotspots back from a .vec product.
Result<std::vector<Hotspot>> HotspotsFromVec(const vault::VecFile& file);

/// Connected-component labelling (4-connectivity); returns labels >=1 per
/// pixel (0 = background) and the number of components.
size_t LabelComponents(const std::vector<uint8_t>& mask, int width,
                       int height, std::vector<int32_t>* labels);

}  // namespace teleios::noa

#endif  // TELEIOS_NOA_HOTSPOT_H_
