#ifndef TELEIOS_NOA_BURNED_AREA_H_
#define TELEIOS_NOA_BURNED_AREA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "geo/geometry.h"
#include "strabon/strabon.h"

namespace teleios::noa {

/// A burned-area product: the union of all (refined) hotspot footprints
/// detected within a time window — the post-event damage-assessment
/// product NOA delivers alongside real-time hotspots (noa:BurnedArea in
/// the domain ontology; "burned area" in paper Figures 1-2).
struct BurnedAreaProduct {
  std::string id;
  geo::Geometry geometry;       // dissolved union of hotspot footprints
  size_t hotspots_merged = 0;
  int64_t window_start = 0;
  int64_t window_end = 0;
  double area = 0;              // square degrees
};

/// Builds the burned-area product for [window_start, window_end]: selects
/// hotspots via a temporal stSPARQL query (strdf:during on the valid
/// time), dissolves their geometries with polygon union, and publishes
/// the result as a noa:BurnedArea with geometry, period and provenance
/// (one noa:derivedFromProduct link per contributing product).
Result<BurnedAreaProduct> MapBurnedArea(strabon::Strabon* strabon,
                                        const std::string& product_id_suffix,
                                        int64_t window_start,
                                        int64_t window_end);

}  // namespace teleios::noa

#endif  // TELEIOS_NOA_BURNED_AREA_H_
