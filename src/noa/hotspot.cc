#include "noa/hotspot.h"

#include <algorithm>

#include "common/strings.h"
#include "geo/polygonize.h"
#include "geo/wkt.h"

namespace teleios::noa {

size_t LabelComponents(const std::vector<uint8_t>& mask, int width,
                       int height, std::vector<int32_t>* labels) {
  labels->assign(mask.size(), 0);
  int32_t next = 0;
  std::vector<size_t> stack;
  for (size_t start = 0; start < mask.size(); ++start) {
    if (!mask[start] || (*labels)[start] != 0) continue;
    ++next;
    stack.push_back(start);
    (*labels)[start] = next;
    while (!stack.empty()) {
      size_t i = stack.back();
      stack.pop_back();
      int c = static_cast<int>(i % width);
      int r = static_cast<int>(i / width);
      const int dc[4] = {1, -1, 0, 0};
      const int dr[4] = {0, 0, 1, -1};
      for (int k = 0; k < 4; ++k) {
        int cc = c + dc[k];
        int rr = r + dr[k];
        if (cc < 0 || rr < 0 || cc >= width || rr >= height) continue;
        size_t j = static_cast<size_t>(rr) * width + cc;
        if (mask[j] && (*labels)[j] == 0) {
          (*labels)[j] = next;
          stack.push_back(j);
        }
      }
    }
  }
  return static_cast<size_t>(next);
}

Result<std::vector<Hotspot>> ExtractHotspots(
    const eo::Scene& scene, const std::vector<uint8_t>& fire_mask,
    int min_pixels) {
  if (fire_mask.size() != scene.PixelCount()) {
    return Status::InvalidArgument("mask size mismatch");
  }
  int w = scene.spec.width;
  int h = scene.spec.height;
  std::vector<int32_t> labels;
  size_t count = LabelComponents(fire_mask, w, h, &labels);

  std::vector<Hotspot> hotspots;
  for (size_t comp = 1; comp <= count; ++comp) {
    std::vector<uint8_t> comp_mask(fire_mask.size(), 0);
    int64_t pixels = 0;
    double max_t39 = 0;
    for (size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == static_cast<int32_t>(comp)) {
        comp_mask[i] = 1;
        ++pixels;
        max_t39 = std::max(max_t39, scene.tir039[i]);
      }
    }
    if (pixels < min_pixels) continue;
    std::vector<geo::Polygon> pixel_polys =
        geo::PolygonizeMask(comp_mask, w, h);
    // Georeference every vertex.
    std::vector<geo::Polygon> world;
    for (geo::Polygon& poly : pixel_polys) {
      geo::Polygon out;
      auto map_ring = [&](const geo::Ring& ring) {
        geo::Ring r;
        for (const geo::Point& p : ring) {
          r.push_back(scene.transform.PixelToWorld(p.x, p.y));
        }
        return r;
      };
      out.outer = map_ring(poly.outer);
      for (const geo::Ring& hole : poly.holes) {
        out.holes.push_back(map_ring(hole));
      }
      world.push_back(std::move(out));
    }
    Hotspot hotspot;
    hotspot.id = static_cast<int64_t>(hotspots.size()) + 1;
    hotspot.geometry = geo::Geometry::MakeMultiPolygon(std::move(world));
    hotspot.pixel_count = pixels;
    hotspot.max_t39 = max_t39;
    // Confidence: saturating function of peak temperature over 310K.
    hotspot.confidence =
        std::clamp((max_t39 - 310.0) / 40.0, 0.05, 0.99);
    hotspot.detected_at = scene.spec.acquisition_time;
    hotspots.push_back(std::move(hotspot));
  }
  return hotspots;
}

vault::VecFile HotspotsToVec(const std::vector<Hotspot>& hotspots,
                             const std::string& product_name) {
  vault::VecFile file;
  file.name = product_name;
  for (const Hotspot& hotspot : hotspots) {
    vault::VecFeature feature;
    feature.id = hotspot.id;
    feature.attributes["pixel_count"] = std::to_string(hotspot.pixel_count);
    feature.attributes["max_t39"] = StrFormat("%.2f", hotspot.max_t39);
    feature.attributes["confidence"] = StrFormat("%.3f", hotspot.confidence);
    feature.attributes["detected_at"] = std::to_string(hotspot.detected_at);
    feature.geometry = hotspot.geometry;
    file.features.push_back(std::move(feature));
  }
  return file;
}

Result<std::vector<Hotspot>> HotspotsFromVec(const vault::VecFile& file) {
  std::vector<Hotspot> hotspots;
  for (const vault::VecFeature& feature : file.features) {
    Hotspot hotspot;
    hotspot.id = feature.id;
    hotspot.geometry = feature.geometry;
    auto get = [&](const char* key) -> Result<double> {
      auto it = feature.attributes.find(key);
      if (it == feature.attributes.end()) {
        return Status::NotFound(std::string("missing attribute ") + key);
      }
      return ParseDouble(it->second);
    };
    TELEIOS_ASSIGN_OR_RETURN(double pixels, get("pixel_count"));
    TELEIOS_ASSIGN_OR_RETURN(hotspot.max_t39, get("max_t39"));
    TELEIOS_ASSIGN_OR_RETURN(hotspot.confidence, get("confidence"));
    TELEIOS_ASSIGN_OR_RETURN(double at, get("detected_at"));
    hotspot.pixel_count = static_cast<int64_t>(pixels);
    hotspot.detected_at = static_cast<int64_t>(at);
    hotspots.push_back(std::move(hotspot));
  }
  return hotspots;
}

}  // namespace teleios::noa
