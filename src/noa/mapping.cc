#include "noa/mapping.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"
#include "geo/predicates.h"
#include "geo/wkt.h"

namespace teleios::noa {

Status RapidMapper::AddQueryLayer(const std::string& name,
                                  const std::string& color, char glyph,
                                  const std::string& query) {
  TELEIOS_ASSIGN_OR_RETURN(strabon::SolutionSet solutions,
                           strabon_->Select(query));
  MapLayer layer;
  layer.name = name;
  layer.color = color;
  layer.glyph = glyph;
  for (const auto& row : solutions.rows) {
    if (row.empty() || row[0] == rdf::kNoTerm) continue;
    const rdf::Term& term = strabon_->store().dict().At(row[0]);
    auto g = geo::ParseWkt(term.lexical);
    if (!g.ok() || g->IsEmpty()) continue;
    layer.geometries.push_back(std::move(*g));
    std::string label;
    if (row.size() > 1 && row[1] != rdf::kNoTerm) {
      label = strabon_->store().dict().At(row[1]).lexical;
    }
    layer.labels.push_back(std::move(label));
  }
  layers_.push_back(std::move(layer));
  return Status::OK();
}

void RapidMapper::AddLayer(MapLayer layer) {
  layers_.push_back(std::move(layer));
}

geo::Envelope RapidMapper::Extent() const {
  geo::Envelope extent = geo::Envelope::Empty();
  for (const MapLayer& layer : layers_) {
    for (const geo::Geometry& g : layer.geometries) {
      extent.Expand(g.GetEnvelope());
    }
  }
  if (extent.IsEmpty()) return {0, 0, 1, 1};
  double margin_x = std::max(1e-6, extent.Width() * 0.03);
  double margin_y = std::max(1e-6, extent.Height() * 0.03);
  extent.min_x -= margin_x;
  extent.max_x += margin_x;
  extent.min_y -= margin_y;
  extent.max_y += margin_y;
  return extent;
}

namespace {

struct Projector {
  geo::Envelope extent;
  double width;
  double height;

  /// World -> SVG pixel (y flipped).
  geo::Point Map(const geo::Point& p) const {
    double x = (p.x - extent.min_x) / extent.Width() * width;
    double y = (1.0 - (p.y - extent.min_y) / extent.Height()) * height;
    return {x, y};
  }
};

void SvgRing(std::ostringstream& os, const geo::Ring& ring,
             const Projector& proj) {
  for (size_t i = 0; i < ring.size(); ++i) {
    geo::Point p = proj.Map(ring[i]);
    os << (i == 0 ? "M" : "L") << StrFormat("%.1f %.1f ", p.x, p.y);
  }
  os << "Z ";
}

}  // namespace

std::string RapidMapper::RenderSvg(int width, int height) const {
  Projector proj{Extent(), static_cast<double>(width),
                 static_cast<double>(height - 60)};
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
     << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << " "
     << height << "\">\n";
  os << "<rect width=\"" << width << "\" height=\"" << height
     << "\" fill=\"#eef6fb\"/>\n";
  for (const MapLayer& layer : layers_) {
    os << "<g id=\"" << layer.name << "\">\n";
    for (size_t i = 0; i < layer.geometries.size(); ++i) {
      const geo::Geometry& g = layer.geometries[i];
      switch (g.kind()) {
        case geo::GeometryKind::kPoint:
        case geo::GeometryKind::kMultiPoint: {
          for (const geo::Point& p : g.points()) {
            geo::Point m = proj.Map(p);
            os << "<circle cx=\"" << StrFormat("%.1f", m.x) << "\" cy=\""
               << StrFormat("%.1f", m.y) << "\" r=\"4\" fill=\""
               << layer.color << "\"/>\n";
            if (i < layer.labels.size() && !layer.labels[i].empty()) {
              os << "<text x=\"" << StrFormat("%.1f", m.x + 6) << "\" y=\""
                 << StrFormat("%.1f", m.y - 4)
                 << "\" font-size=\"10\" fill=\"#333\">" << layer.labels[i]
                 << "</text>\n";
            }
          }
          break;
        }
        case geo::GeometryKind::kLineString:
        case geo::GeometryKind::kMultiLineString: {
          for (const geo::LineString& line : g.lines()) {
            os << "<polyline fill=\"none\" stroke=\"" << layer.color
               << "\" stroke-width=\"1.5\" points=\"";
            for (const geo::Point& p : line.points) {
              geo::Point m = proj.Map(p);
              os << StrFormat("%.1f,%.1f ", m.x, m.y);
            }
            os << "\"/>\n";
          }
          break;
        }
        case geo::GeometryKind::kPolygon:
        case geo::GeometryKind::kMultiPolygon: {
          os << "<path fill=\"" << layer.color
             << "\" fill-opacity=\"0.55\" fill-rule=\"evenodd\" stroke=\""
             << layer.color << "\" d=\"";
          for (const geo::Polygon& poly : g.polygons()) {
            SvgRing(os, poly.outer, proj);
            for (const geo::Ring& hole : poly.holes) {
              SvgRing(os, hole, proj);
            }
          }
          os << "\"/>\n";
          break;
        }
        case geo::GeometryKind::kEmpty:
          break;
      }
    }
    os << "</g>\n";
  }
  // Legend.
  int ly = height - 44;
  int lx = 10;
  for (const MapLayer& layer : layers_) {
    os << "<rect x=\"" << lx << "\" y=\"" << ly
       << "\" width=\"12\" height=\"12\" fill=\"" << layer.color << "\"/>\n"
       << "<text x=\"" << lx + 16 << "\" y=\"" << ly + 10
       << "\" font-size=\"11\" fill=\"#222\">" << layer.name << "</text>\n";
    lx += 16 + static_cast<int>(layer.name.size()) * 7 + 14;
  }
  os << "</svg>\n";
  return os.str();
}

std::string RapidMapper::RenderAscii(int cols, int rows) const {
  geo::Envelope extent = Extent();
  std::vector<std::string> grid(static_cast<size_t>(rows),
                                std::string(static_cast<size_t>(cols), ' '));
  auto plot = [&](const geo::Point& p, char glyph) {
    int c = static_cast<int>((p.x - extent.min_x) / extent.Width() * cols);
    int r = static_cast<int>((1.0 - (p.y - extent.min_y) / extent.Height()) *
                             rows);
    if (c >= 0 && c < cols && r >= 0 && r < rows) {
      grid[static_cast<size_t>(r)][static_cast<size_t>(c)] = glyph;
    }
  };
  for (const MapLayer& layer : layers_) {
    for (const geo::Geometry& g : layer.geometries) {
      for (const geo::Point& p : g.points()) plot(p, layer.glyph);
      for (const geo::LineString& line : g.lines()) {
        for (const geo::Point& p : line.points) plot(p, layer.glyph);
      }
      // Polygons: plot cell centers that fall inside.
      if (!g.polygons().empty()) {
        for (int r = 0; r < rows; ++r) {
          for (int c = 0; c < cols; ++c) {
            double x = extent.min_x +
                       (static_cast<double>(c) + 0.5) / cols * extent.Width();
            double y = extent.min_y + (1.0 - (static_cast<double>(r) + 0.5) /
                                                 rows) *
                                          extent.Height();
            for (const geo::Polygon& poly : g.polygons()) {
              if (geo::PointInPolygon({x, y}, poly)) {
                grid[static_cast<size_t>(r)][static_cast<size_t>(c)] =
                    layer.glyph;
                break;
              }
            }
          }
        }
      }
    }
  }
  std::ostringstream os;
  os << "+" << std::string(static_cast<size_t>(cols), '-') << "+\n";
  for (const std::string& row : grid) os << "|" << row << "|\n";
  os << "+" << std::string(static_cast<size_t>(cols), '-') << "+\n";
  for (const MapLayer& layer : layers_) {
    os << layer.glyph << " = " << layer.name << "  ";
  }
  os << "\n";
  return os.str();
}

}  // namespace teleios::noa
