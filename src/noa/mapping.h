#ifndef TELEIOS_NOA_MAPPING_H_
#define TELEIOS_NOA_MAPPING_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geo/geometry.h"
#include "strabon/strabon.h"

namespace teleios::noa {

/// One thematic layer of a fire map.
struct MapLayer {
  std::string name;
  std::string color;  // SVG fill/stroke
  char glyph = '*';   // ASCII rendering symbol
  std::vector<geo::Geometry> geometries;
  std::vector<std::string> labels;  // parallel to geometries ("" = none)
};

/// Automatic generation of fire maps enriched with linked open data
/// (demo scenario 2b). Layers are populated with stSPARQL queries
/// against Strabon, then rendered to SVG and ASCII — replacing what used
/// to be "a time-consuming manual process" (paper §4).
class RapidMapper {
 public:
  explicit RapidMapper(strabon::Strabon* strabon) : strabon_(strabon) {}

  /// Adds a layer whose geometries come from `query`, which must SELECT
  /// the geometry variable first (and optionally a label second).
  Status AddQueryLayer(const std::string& name, const std::string& color,
                       char glyph, const std::string& query);

  /// Adds a pre-built layer.
  void AddLayer(MapLayer layer);

  const std::vector<MapLayer>& layers() const { return layers_; }

  /// Map extent covering all layers (with a margin).
  geo::Envelope Extent() const;

  /// SVG document of all layers plus a legend.
  std::string RenderSvg(int width = 800, int height = 700) const;

  /// Terminal rendering (rows x cols character grid).
  std::string RenderAscii(int cols = 72, int rows = 36) const;

 private:
  strabon::Strabon* strabon_;
  std::vector<MapLayer> layers_;
};

}  // namespace teleios::noa

#endif  // TELEIOS_NOA_MAPPING_H_
