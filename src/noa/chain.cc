#include "noa/chain.h"

#include "common/logging.h"
#include "common/strings.h"
#include "exec/parallel_for.h"
#include "geo/wkt.h"
#include "governor/memory_budget.h"
#include "obs/metrics.h"
#include "strabon/temporal.h"

namespace teleios::noa {

using rdf::Term;

namespace {

/// Latency histogram for one chain stage, labelled by stage name.
obs::Histogram* StageHistogram(const std::string& stage) {
  return obs::MetricsRegistry::Global().GetHistogram(
      obs::WithLabel("teleios_noa_stage_millis", "stage", stage));
}

}  // namespace

std::string ProcessingChain::ClassificationSciQl(
    const std::string& raster_name, const ChainConfig& config) {
  std::string slab;
  if (config.has_crop) {
    slab = StrFormat("[%d:%d, %d:%d]", config.crop_y0, config.crop_y1,
                     config.crop_x0, config.crop_x1);
  }
  std::string predicate;
  switch (config.classifier.kind) {
    case ClassifierKind::kThreshold:
      predicate = StrFormat("IR039 > %.3f", config.classifier.threshold_kelvin);
      break;
    case ClassifierKind::kContextual:
      predicate = StrFormat(
          "IR039 - IR108 > %.3f and IR039 > %.3f and CLOUDMASK < 0.5 "
          "and LANDMASK > 0.5",
          config.classifier.diff_kelvin, config.classifier.min_t39);
      break;
  }
  return "SELECT y, x FROM \"" + raster_name + "\"" + slab + " WHERE " +
         predicate;
}

Result<ChainResult> ProcessingChain::Run(const std::string& raster_name,
                                         const ChainConfig& config,
                                         const CancellationToken* cancel) {
  obs::Count("teleios_noa_chain_runs_total");
  obs::ScopedTrace trace("noa.chain");
  Result<ChainResult> result = RunStages(raster_name, config, cancel);
  if (!result.ok()) {
    obs::Count(obs::WithLabel("teleios_noa_chain_errors_total", "code",
                              StatusCodeName(result.status().code())));
    return result;
  }
  result->trace = trace.Finish();
  obs::Observe("teleios_noa_chain_millis", result->trace.millis);
  for (const obs::SpanNode& stage : result->trace.children) {
    result->timings.push_back({stage.name, stage.millis});
  }
  return result;
}

Result<ChainResult> ProcessingChain::RunBatch(
    const std::vector<std::string>& raster_names, const ChainConfig& config,
    const CancellationToken* cancel) {
  size_t n = raster_names.size();
  // Products run concurrently (one morsel each); per-product results
  // land in their input slot and are merged in input order below, so the
  // batch aggregate is identical at every thread count.
  std::vector<Result<ChainResult>> results(
      n, Result<ChainResult>(Status::Cancelled("product not started")));
  std::vector<uint8_t> ran(n, 0);
  exec::ParallelOptions opts;
  opts.grain = 1;
  opts.label = "noa.batch";
  opts.cancel = cancel;
  Status st = exec::ParallelFor(
      n, opts, [&](size_t, size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          results[i] = Run(raster_names[i], config, cancel);
          ran[i] = 1;
        }
        return Status::OK();
      });
  // Cancellation is not a batch error: the products it skipped are
  // recorded as per-input failures and everything finished is kept.
  if (!st.ok() && st.code() != StatusCode::kCancelled &&
      st.code() != StatusCode::kDeadlineExceeded) {
    return st;
  }
  ChainResult batch;
  for (size_t i = 0; i < n; ++i) {
    const std::string& name = raster_names[i];
    if (!ran[i]) {
      Status skipped =
          cancel != nullptr ? cancel->Check() : Status::OK();
      if (skipped.ok()) skipped = Status::Internal("product not run");
      batch.failures.push_back({name, std::move(skipped)});
      obs::Count("teleios_noa_products_failed_total");
      continue;
    }
    Result<ChainResult>& one = results[i];
    if (!one.ok()) {
      TELEIOS_LOG(Warning) << "noa: chain failed for '" << name
                           << "': " << one.status().ToString();
      batch.failures.push_back({name, one.status()});
      obs::Count("teleios_noa_products_failed_total");
      continue;
    }
    batch.product_ids.push_back(one->product_id);
    batch.hotspots.insert(batch.hotspots.end(), one->hotspots.begin(),
                          one->hotspots.end());
    batch.timings.insert(batch.timings.end(), one->timings.begin(),
                         one->timings.end());
    batch.sciql.insert(batch.sciql.end(), one->sciql.begin(),
                       one->sciql.end());
  }
  return batch;
}

Result<ChainResult> ProcessingChain::RunStages(const std::string& raster_name,
                                               const ChainConfig& config,
                                               const CancellationToken* cancel) {
  ChainResult result;

  // (a) Ingestion: lazy vault ingestion into a SciQL array.
  array::ArrayPtr array;
  vault::TerHeader header;
  eo::Scene scene;
  governor::BudgetCharge scene_charge;
  {
    obs::TraceSpan stage("ingestion", StageHistogram("ingestion"));
    stage.SetAttr("raster", raster_name);
    TELEIOS_ASSIGN_OR_RETURN(array, vault_->GetRasterArray(raster_name));
    if (!sciql_->HasArray(raster_name)) {
      Status registered = sciql_->RegisterArray(array);
      // A concurrent product of the same raster may have won the race
      // between the HasArray probe and this registration; both proceed.
      if (!registered.ok() &&
          registered.code() != StatusCode::kAlreadyExists) {
        return registered;
      }
    }
    TELEIOS_ASSIGN_OR_RETURN(header, vault_->GetRasterHeader(raster_name));
    // The re-read raster plus the scene planes built from it; held until
    // the chain finishes with the scene.
    TELEIOS_ASSIGN_OR_RETURN(
        scene_charge,
        governor::ChargeCurrent(
            2 * static_cast<size_t>(header.width) *
                static_cast<size_t>(header.height) *
                header.band_names.size() * sizeof(double),
            "chain scene '" + raster_name + "'"));
    vault::TerRaster raster;
    TELEIOS_ASSIGN_OR_RETURN(raster, vault::ReadTer(header.path));
    TELEIOS_ASSIGN_OR_RETURN(scene, eo::SceneFromRaster(raster));
  }

  // (b)+(d) Cropping + classification, expressed as one SciQL SELECT
  // (slab = crop, WHERE = per-pixel classifier).
  storage::Table fire_cells;
  {
    obs::TraceSpan stage("crop+classify (SciQL)",
                         StageHistogram("classification"));
    std::string classify = ClassificationSciQl(raster_name, config);
    result.sciql.push_back(classify);
    TELEIOS_ASSIGN_OR_RETURN(fire_cells, sciql_->Execute(classify));
    stage.SetAttr("fire_pixels", std::to_string(fire_cells.num_rows()));
    obs::Count("teleios_noa_pixels_classified_total", scene.PixelCount());
    obs::Count("teleios_noa_fire_pixels_total", fire_cells.num_rows());
  }

  // (c)+(e) Georeferencing + hotspot polygon products.
  {
    obs::TraceSpan stage("georeference+polygonize",
                         StageHistogram("hotspot_extraction"));
    // Build the fire mask from the (y, x) result rows.
    std::vector<uint8_t> mask(scene.PixelCount(), 0);
    auto ycol = fire_cells.ColumnByName("y");
    auto xcol = fire_cells.ColumnByName("x");
    if (!ycol.ok() || !xcol.ok()) {
      return Status::Internal("SciQL classification lost dimensions");
    }
    for (size_t r = 0; r < fire_cells.num_rows(); ++r) {
      int64_t y = (*ycol)->GetInt64(r);
      int64_t x = (*xcol)->GetInt64(r);
      if (y >= 0 && x >= 0 && y < scene.spec.height && x < scene.spec.width) {
        mask[static_cast<size_t>(y) * scene.spec.width + x] = 1;
      }
    }
    TELEIOS_ASSIGN_OR_RETURN(
        result.hotspots, ExtractHotspots(scene, mask, config.min_pixels));
    stage.SetAttr("hotspots", std::to_string(result.hotspots.size()));
    obs::Count("teleios_noa_hotspots_extracted_total",
               result.hotspots.size());
  }

  // Register the derived L2 product in both catalogs. One product at a
  // time: the relational catalog and the Strabon store are shared across
  // concurrent batch products.
  obs::TraceSpan stage("catalog+shapefile", StageHistogram("publication"));
  MutexLock publish_lock(publish_mu_);
  result.product_id = raster_name + "-hotspots-" +
                      ClassifierKindName(config.classifier.kind);
  eo::ProductMetadata meta;
  meta.id = result.product_id;
  meta.satellite = header.satellite;
  meta.sensor = header.sensor;
  meta.level = eo::ProductLevel::kL2;
  meta.acquisition_time = header.acquisition_time;
  meta.footprint_wkt = header.FootprintWkt();
  meta.derived_from = raster_name;
  if (!config.output_dir.empty()) {
    vault::VecFile vec = HotspotsToVec(result.hotspots, result.product_id);
    result.vec_path = config.output_dir + "/" + result.product_id + ".vec";
    // The export is the chain's only unguarded I/O edge: retry transient
    // faults before declaring the product failed (WriteVec is atomic, so
    // a failed attempt leaves no partial file behind), under the export
    // breaker so a persistently failing output directory sheds later
    // products instantly, and bounded by the caller's deadline so retry
    // backoff never outlives it.
    io::RetryPolicy policy = retry_;
    if (policy.cancel == nullptr) policy.cancel = cancel;
    TELEIOS_RETURN_IF_ERROR(export_breaker_.Run([&] {
      return io::WithRetry(policy, "export '" + result.product_id + "'",
                           [&] { return vault::WriteVec(vec, result.vec_path); });
    }));
    meta.file_path = result.vec_path;
  }
  TELEIOS_RETURN_IF_ERROR(eo::RegisterProductRow(meta, catalog_));
  TELEIOS_RETURN_IF_ERROR(eo::RegisterProductTriples(meta, strabon_));
  TELEIOS_RETURN_IF_ERROR(
      PublishHotspots(result.hotspots, result.product_id, strabon_)
          .status());
  return result;
}

Result<size_t> PublishHotspots(const std::vector<Hotspot>& hotspots,
                               const std::string& product_id,
                               strabon::Strabon* strabon) {
  std::string ns(eo::kNoaNs);
  Term product = Term::Iri(ns + "product/" + product_id);
  size_t added = 0;
  for (const Hotspot& hotspot : hotspots) {
    Term subject = Term::Iri(ns + "hotspot/" + product_id + "/" +
                             std::to_string(hotspot.id));
    strabon->Add(subject, Term::Iri(rdf::kRdfType),
                 Term::Iri(ns + "Hotspot"));
    strabon->Add(subject, Term::Iri(ns + "hasGeometry"),
                 Term::WktLiteral(geo::WriteWkt(hotspot.geometry)));
    strabon->Add(subject, Term::Iri(ns + "hasConfidence"),
                 Term::DoubleLiteral(hotspot.confidence));
    strabon->Add(
        subject, Term::Iri(ns + "detectedAt"),
        Term::Literal(strabon::FormatDateTime(hotspot.detected_at),
                      rdf::kXsdDateTime));
    // stRDF valid time: the MSG/SEVIRI acquisition repeat cycle (15
    // minutes) around the detection instant, as a strdf:period literal.
    strabon->Add(subject, Term::Iri(ns + "hasValidTime"),
                 strabon::PeriodLiteral(hotspot.detected_at - 450,
                                        hotspot.detected_at + 450));
    strabon->Add(subject, Term::Iri(ns + "derivedFromProduct"), product);
    added += 6;
  }
  return added;
}

}  // namespace teleios::noa
