#include "noa/refinement.h"

#include "common/strings.h"
#include "eo/product.h"
#include "geo/clip.h"
#include "geo/predicates.h"
#include "geo/wkt.h"

namespace teleios::noa {

namespace {

std::string ProductIri(const std::string& product_id) {
  return std::string(eo::kNoaNs) + "product/" + product_id;
}

}  // namespace

Result<std::vector<geo::Geometry>> FetchHotspotGeometries(
    strabon::Strabon* strabon, const std::string& product_id) {
  std::string query =
      "SELECT ?g WHERE { ?h a noa:Hotspot ; "
      "noa:derivedFromProduct <" +
      ProductIri(product_id) +
      "> ; noa:hasGeometry ?g . }";
  TELEIOS_ASSIGN_OR_RETURN(strabon::SolutionSet solutions,
                           strabon->Select(query));
  std::vector<geo::Geometry> out;
  for (const auto& row : solutions.rows) {
    if (row[0] == rdf::kNoTerm) continue;
    const rdf::Term& term = strabon->store().dict().At(row[0]);
    TELEIOS_ASSIGN_OR_RETURN(geo::Geometry g, geo::ParseWkt(term.lexical));
    out.push_back(std::move(g));
  }
  return out;
}

Result<RefinementReport> RefineHotspots(strabon::Strabon* strabon,
                                        const std::string& product_id) {
  RefinementReport report;

  // Fetch the sea geometry from the coastline linked-data layer.
  std::string sea_query =
      "SELECT ?g WHERE { ?sea a noa:Sea ; noa:hasGeometry ?g . }";
  TELEIOS_ASSIGN_OR_RETURN(strabon::SolutionSet sea_solutions,
                           strabon->Select(sea_query));
  if (sea_solutions.rows.empty() ||
      sea_solutions.rows[0][0] == rdf::kNoTerm) {
    return Status::NotFound(
        "no noa:Sea geometry loaded; load the coastline layer first");
  }
  const std::string sea_wkt =
      strabon->store().dict().At(sea_solutions.rows[0][0]).lexical;
  std::string sea_literal = "\"" + sea_wkt + "\"^^strdf:WKT";

  TELEIOS_ASSIGN_OR_RETURN(std::vector<geo::Geometry> before,
                           FetchHotspotGeometries(strabon, product_id));
  report.hotspots_examined = before.size();
  double area_before = 0;
  for (const geo::Geometry& g : before) area_before += g.Area();

  // Statement 1 (the paper's refinement post-processing step): replace
  // geometry that leaks over the coastline with its difference from the
  // sea.
  std::string product_iri = ProductIri(product_id);
  std::string refine_update =
      "DELETE { ?h noa:hasGeometry ?g } "
      "INSERT { ?h noa:hasGeometry ?ng . ?h noa:refinedGeometry ?ng } "
      "WHERE { ?h a noa:Hotspot ; noa:derivedFromProduct <" +
      product_iri +
      "> ; noa:hasGeometry ?g . "
      "BIND(strdf:difference(?g, " + sea_literal + ") AS ?ng) "
      "FILTER(strdf:intersects(?g, " + sea_literal + ")) }";
  report.statements.push_back(refine_update);
  TELEIOS_ASSIGN_OR_RETURN(size_t refined_edits,
                           strabon->Update(refine_update));
  // Each refined hotspot contributes one delete + two inserts.
  report.hotspots_refined = refined_edits / 3;

  // Statement 2: hotspots whose refined geometry is empty were entirely
  // at sea -> reject them.
  std::string reject_update =
      "DELETE { ?h a noa:Hotspot } "
      "INSERT { ?h a noa:RejectedHotspot } "
      "WHERE { ?h a noa:Hotspot ; noa:derivedFromProduct <" +
      product_iri +
      "> ; noa:hasGeometry ?g . FILTER(strdf:isEmpty(?g)) }";
  report.statements.push_back(reject_update);
  TELEIOS_ASSIGN_OR_RETURN(size_t rejected_edits,
                           strabon->Update(reject_update));
  report.hotspots_removed = rejected_edits / 2;

  TELEIOS_ASSIGN_OR_RETURN(std::vector<geo::Geometry> after,
                           FetchHotspotGeometries(strabon, product_id));
  double area_after = 0;
  for (const geo::Geometry& g : after) area_after += g.Area();
  report.area_removed = area_before - area_after;
  return report;
}

Result<ThematicAccuracy> ScoreHotspotsAgainstTruth(
    const std::vector<geo::Geometry>& hotspot_geometries,
    const geo::Geometry& ground_truth) {
  ThematicAccuracy accuracy;
  double truth_area = ground_truth.Area();
  double hotspot_area = 0;
  double overlap_area = 0;
  for (const geo::Geometry& h : hotspot_geometries) {
    if (h.IsEmpty()) continue;
    hotspot_area += h.Area();
    if (ground_truth.IsEmpty()) continue;
    if (!geo::Intersects(h, ground_truth)) continue;
    TELEIOS_ASSIGN_OR_RETURN(geo::Geometry overlap,
                             geo::Intersection(h, ground_truth));
    overlap_area += overlap.Area();
  }
  accuracy.precision = hotspot_area > 0 ? overlap_area / hotspot_area : 0.0;
  accuracy.recall = truth_area > 0 ? overlap_area / truth_area : 0.0;
  return accuracy;
}

}  // namespace teleios::noa
