#ifndef TELEIOS_NOA_CLASSIFICATION_H_
#define TELEIOS_NOA_CLASSIFICATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "eo/scene.h"

namespace teleios::noa {

/// The two interchangeable classification submodules of the NOA chain
/// (demo scenario 1 compares chains with different classifiers).
enum class ClassifierKind {
  /// Fixed brightness-temperature threshold on the 3.9um band.
  kThreshold,
  /// Contextual test on the 3.9-10.8um difference with cloud/sea
  /// rejection — higher thematic accuracy, slightly more expensive.
  kContextual,
};

const char* ClassifierKindName(ClassifierKind kind);

struct ClassifierConfig {
  ClassifierKind kind = ClassifierKind::kThreshold;
  double threshold_kelvin = 318.0;  // kThreshold: T3.9 above this = fire
  double diff_kelvin = 10.0;        // kContextual: T3.9 - T10.8 above this
  double min_t39 = 308.0;           // kContextual: absolute floor
};

/// Per-pixel fire/no-fire classification; returns a row-major 0/1 mask.
/// The threshold classifier knows nothing about clouds or water — that is
/// exactly why its products need the semantic refinement step.
Result<std::vector<uint8_t>> ClassifyFirePixels(const eo::Scene& scene,
                                                const ClassifierConfig& config);

/// Pixel-level confusion against the scene's ground-truth fires.
struct PixelScore {
  int64_t true_positive = 0;
  int64_t false_positive = 0;
  int64_t false_negative = 0;

  double Precision() const {
    int64_t denom = true_positive + false_positive;
    return denom == 0 ? 0.0
                      : static_cast<double>(true_positive) / denom;
  }
  double Recall() const {
    int64_t denom = true_positive + false_negative;
    return denom == 0 ? 0.0
                      : static_cast<double>(true_positive) / denom;
  }
  double F1() const {
    double p = Precision();
    double r = Recall();
    return p + r == 0 ? 0.0 : 2 * p * r / (p + r);
  }
};

/// Scores a fire mask against ground truth (a pixel is truly burning when
/// it lies within 1.2 radii of a seeded fire center).
PixelScore ScoreMask(const eo::Scene& scene,
                     const std::vector<uint8_t>& mask);

}  // namespace teleios::noa

#endif  // TELEIOS_NOA_CLASSIFICATION_H_
