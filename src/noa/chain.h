#ifndef TELEIOS_NOA_CHAIN_H_
#define TELEIOS_NOA_CHAIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "eo/product.h"
#include "eo/scene.h"
#include "common/cancellation.h"
#include "governor/circuit_breaker.h"
#include "io/retry.h"
#include "noa/classification.h"
#include "noa/hotspot.h"
#include "obs/trace.h"
#include "sciql/sciql_engine.h"
#include "storage/catalog.h"
#include "strabon/strabon.h"
#include "vault/vault.h"

namespace teleios::noa {

/// Configuration of one execution of the NOA fire-monitoring processing
/// chain (demo scenario 1): ingestion -> cropping -> georeferencing ->
/// classification -> hotspot shapefile generation.
struct ChainConfig {
  ClassifierConfig classifier;
  /// Optional pixel-space crop [x0, x1) x [y0, y1); disabled when empty.
  bool has_crop = false;
  int crop_x0 = 0, crop_y0 = 0, crop_x1 = 0, crop_y1 = 0;
  int min_pixels = 1;
  /// Directory where the .vec hotspot product is written ("" = skip).
  std::string output_dir;
};

struct StepTiming {
  std::string step;
  double millis = 0;
};

/// One input the chain could not turn into a product (corrupt file,
/// exhausted export retries, ...). Batch runs record these and keep
/// going — an operational monitoring service must not lose a night of
/// hotspots to one bad scene.
struct ChainFailure {
  std::string raster;  // the input raster name
  Status status;
};

struct ChainResult {
  std::string product_id;           // the generated L2 product
  /// Batch runs: every product generated, in input order.
  std::vector<std::string> product_ids;
  /// Batch runs: inputs that failed (the rest still completed).
  std::vector<ChainFailure> failures;
  std::vector<Hotspot> hotspots;
  /// Per-stage wall clock, derived from `trace` (one entry per
  /// top-level stage span, in execution order).
  std::vector<StepTiming> timings;
  /// The full "noa.chain" trace tree for this run, including the spans
  /// recorded by the tiers the chain calls into (vault ingestion, SciQL
  /// statement execution, ...).
  obs::SpanNode trace;
  std::string vec_path;             // "" when output_dir was empty
  std::vector<std::string> sciql;   // the SciQL statements executed
};

/// The NOA processing chain, wired into the TELEIOS tiers: the vault
/// ingests (lazily), SciQL expresses cropping + classification
/// declaratively, hotspot extraction polygonizes + georeferences, and
/// the product plus its hotspots are registered in both the relational
/// catalog and Strabon.
class ProcessingChain {
 public:
  ProcessingChain(vault::DataVault* vault, sciql::SciQlEngine* sciql,
                  strabon::Strabon* strabon, storage::Catalog* catalog)
      : vault_(vault), sciql_(sciql), strabon_(strabon), catalog_(catalog) {}

  /// Runs the chain on an attached raster. The classification is
  /// evaluated through real SciQL (SELECT with slab + cell expression)
  /// against the ingested array. `cancel` (optional) bounds the fallible
  /// I/O edges: export retry backoff never outlives its deadline.
  Result<ChainResult> Run(const std::string& raster_name,
                          const ChainConfig& config,
                          const CancellationToken* cancel = nullptr);

  /// Runs the chain over a batch of attached rasters, processing
  /// products concurrently on the global thread pool (TELEIOS_THREADS=1
  /// degrades to the serial loop). A raster that fails (corrupt payload,
  /// export fault) is recorded in ChainResult::failures — and counted in
  /// teleios_noa_products_failed_total — while the remaining rasters
  /// still produce their products (ChainResult::product_ids, hotspots
  /// and timings are the aggregates over the successful runs, in input
  /// order regardless of completion order). A cancelled/expired `cancel`
  /// token stops products that have not started; each unstarted input is
  /// recorded as a failure carrying the token's status.
  Result<ChainResult> RunBatch(const std::vector<std::string>& raster_names,
                               const ChainConfig& config,
                               const CancellationToken* cancel = nullptr);

  /// Retry policy for the fallible I/O edges of the chain (product
  /// export). Default: 3 attempts, no backoff sleep.
  void set_retry(const io::RetryPolicy& policy) { retry_ = policy; }

  /// Overload breaker around product export: a persistently failing
  /// output directory trips it open and later products shed their export
  /// (and fail fast into ChainResult::failures) instead of each burning
  /// a full retry budget. Exposed for tests to Reconfigure() and inject
  /// a deterministic clock.
  governor::CircuitBreaker& export_breaker() { return export_breaker_; }

  /// The SciQL classification statement for a config (exposed so demos
  /// can show "how SciQL queries implement the NOA chain", paper §4).
  static std::string ClassificationSciQl(const std::string& raster_name,
                                         const ChainConfig& config);

 private:
  /// The chain body; Run wraps it in the "noa.chain" trace and derives
  /// `timings` + `trace` from the finished tree.
  Result<ChainResult> RunStages(const std::string& raster_name,
                                const ChainConfig& config,
                                const CancellationToken* cancel);

  vault::DataVault* vault_;
  sciql::SciQlEngine* sciql_;
  strabon::Strabon* strabon_;
  storage::Catalog* catalog_;
  io::RetryPolicy retry_;
  /// Serializes the publication stage (catalog row, Strabon triples,
  /// shapefile export) across concurrent batch products — the shared
  /// catalogs are not internally synchronized. Publication order between
  /// products is scheduling-dependent; everything user-visible in
  /// ChainResult is merged in input order instead. A capability with no
  /// GUARDED_BY members: it guards *external* state (catalog_, strabon_,
  /// the output directory), which the analysis cannot express.
  // teleios-lint: allow(TL002) -- guards external catalogs, see above.
  Mutex publish_mu_;
  /// Self-locking; shared by every product the chain exports.
  governor::CircuitBreaker export_breaker_{"noa-export"};
};

/// Publishes hotspot descriptions as stRDF into Strabon (type,
/// geometry, confidence, detection time, provenance). Returns triples
/// added.
Result<size_t> PublishHotspots(const std::vector<Hotspot>& hotspots,
                               const std::string& product_id,
                               strabon::Strabon* strabon);

}  // namespace teleios::noa

#endif  // TELEIOS_NOA_CHAIN_H_
