#include "noa/classification.h"

#include <cmath>

namespace teleios::noa {

const char* ClassifierKindName(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kThreshold:
      return "threshold";
    case ClassifierKind::kContextual:
      return "contextual";
  }
  return "?";
}

Result<std::vector<uint8_t>> ClassifyFirePixels(
    const eo::Scene& scene, const ClassifierConfig& config) {
  size_t n = scene.PixelCount();
  if (scene.tir039.size() != n || scene.tir108.size() != n) {
    return Status::InvalidArgument("scene bands not initialized");
  }
  std::vector<uint8_t> mask(n, 0);
  switch (config.kind) {
    case ClassifierKind::kThreshold:
      for (size_t i = 0; i < n; ++i) {
        mask[i] = scene.tir039[i] > config.threshold_kelvin ? 1 : 0;
      }
      break;
    case ClassifierKind::kContextual:
      for (size_t i = 0; i < n; ++i) {
        double diff = scene.tir039[i] - scene.tir108[i];
        bool fire = diff > config.diff_kelvin &&
                    scene.tir039[i] > config.min_t39 &&
                    !scene.cloudmask[i] && scene.landmask[i];
        mask[i] = fire ? 1 : 0;
      }
      break;
  }
  return mask;
}

PixelScore ScoreMask(const eo::Scene& scene,
                     const std::vector<uint8_t>& mask) {
  PixelScore score;
  int w = scene.spec.width;
  int h = scene.spec.height;
  for (int r = 0; r < h; ++r) {
    for (int c = 0; c < w; ++c) {
      size_t i = static_cast<size_t>(r) * w + c;
      bool truly_fire = false;
      for (const eo::FireEvent& fire : scene.fires) {
        double dx = (c + 0.5) - fire.center_col;
        double dy = (r + 0.5) - fire.center_row;
        if (std::hypot(dx, dy) <= 1.2 * fire.radius) {
          truly_fire = true;
          break;
        }
      }
      bool predicted = mask[i] != 0;
      if (predicted && truly_fire) ++score.true_positive;
      else if (predicted && !truly_fire) ++score.false_positive;
      else if (!predicted && truly_fire) ++score.false_negative;
    }
  }
  return score;
}

}  // namespace teleios::noa
