#include "server/session.h"

#include <chrono>
#include <utility>

#include "obs/event_log.h"
#include "obs/metrics.h"

namespace teleios::server {

namespace {

using storage::ColumnType;
using storage::Schema;
using storage::Table;
using storage::TablePtr;

/// splitmix64 — cheap, well-mixed cancel keys (not a security boundary;
/// the key just prevents one tenant's fat-fingered CANCEL from killing
/// another's statement).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Session::Session(uint64_t id, uint64_t cancel_key, std::string peer,
                 std::string protocol, size_t budget_bytes)
    : id_(id),
      cancel_key_(cancel_key),
      peer_(std::move(peer)),
      protocol_(std::move(protocol)),
      open_unix_millis_(obs::UnixMillisNow()),
      budget_("session-" + std::to_string(id), budget_bytes,
              &governor::ProcessBudget()) {}

std::shared_ptr<CancellationToken> Session::BeginStatement(
    uint64_t deadline_millis) {
  auto token = std::make_shared<CancellationToken>();
  token->LinkParent(&connection_token_);
  if (deadline_millis > 0) {
    token->CancelAfter(std::chrono::milliseconds(deadline_millis));
  }
  MutexLock lock(mu_);
  active_statement_ = token;
  return token;
}

void Session::EndStatement() {
  MutexLock lock(mu_);
  active_statement_.reset();
}

bool Session::CancelActiveStatement() {
  std::shared_ptr<CancellationToken> token;
  {
    MutexLock lock(mu_);
    token = active_statement_;
  }
  if (token == nullptr) return false;
  token->Cancel();
  return true;
}

uint32_t Session::AddPrepared(PreparedStatement stmt) {
  MutexLock lock(mu_);
  uint32_t id = next_stmt_id_++;
  prepared_.emplace(id, std::move(stmt));
  return id;
}

Result<PreparedStatement> Session::GetPrepared(uint32_t stmt_id) const {
  MutexLock lock(mu_);
  auto it = prepared_.find(stmt_id);
  if (it == prepared_.end()) {
    return Status::NotFound("no prepared statement with id " +
                            std::to_string(stmt_id));
  }
  return it->second;
}

Status Session::ClosePrepared(uint32_t stmt_id) {
  MutexLock lock(mu_);
  if (prepared_.erase(stmt_id) == 0) {
    return Status::NotFound("no prepared statement with id " +
                            std::to_string(stmt_id));
  }
  return Status::OK();
}

void Session::set_state(const std::string& state) {
  MutexLock lock(mu_);
  state_ = state;
}

std::string Session::state() const {
  MutexLock lock(mu_);
  return state_;
}

void Session::Touch(int64_t now_millis) {
  MutexLock lock(mu_);
  last_activity_millis_ = now_millis;
}

int64_t Session::last_activity_millis() const {
  MutexLock lock(mu_);
  return last_activity_millis_;
}

void Session::set_client_id(uint64_t id) {
  MutexLock lock(mu_);
  client_id_ = id;
}

uint64_t Session::client_id() const {
  MutexLock lock(mu_);
  return client_id_;
}

void Session::AddBytesStreamed(uint64_t n) {
  obs::Count("teleios_server_bytes_out_total", n);
  MutexLock lock(mu_);
  bytes_streamed_ += n;
}

uint64_t Session::bytes_streamed() const {
  MutexLock lock(mu_);
  return bytes_streamed_;
}

void Session::RegisterConnection(Connection* conn) {
  MutexLock lock(mu_);
  conn_ = conn;
}

void Session::ClearConnection() {
  MutexLock lock(mu_);
  conn_ = nullptr;
}

void Session::ForceClose() {
  connection_token_.Cancel();
  MutexLock lock(mu_);
  if (conn_ != nullptr) conn_->ShutdownBoth();
}

SessionStats Session::Stats() const {
  MutexLock lock(mu_);
  SessionStats stats;
  stats.id = id_;
  stats.peer = peer_;
  stats.protocol = protocol_;
  stats.state = state_;
  stats.queries_run = queries_run_;
  stats.bytes_streamed = bytes_streamed_;
  stats.prepared_statements = prepared_.size();
  stats.open_unix_millis = open_unix_millis_;
  stats.last_activity_unix_millis = last_activity_millis_;
  stats.client_id = client_id_;
  return stats;
}

SessionRegistry::SessionRegistry() : clock_(&obs::UnixMillisNow) {}

void SessionRegistry::SetClockForTest(Clock clock) {
  MutexLock lock(mu_);
  clock_ = clock != nullptr ? std::move(clock) : &obs::UnixMillisNow;
}

int64_t SessionRegistry::NowMillis() const {
  Clock clock;
  {
    MutexLock lock(mu_);
    clock = clock_;
  }
  return clock();
}

size_t SessionRegistry::ReapExpired(int64_t lease_millis) {
  if (lease_millis <= 0) return 0;
  const int64_t now = NowMillis();
  std::vector<std::shared_ptr<Session>> expired;
  {
    MutexLock lock(mu_);
    for (const auto& [id, session] : sessions_) {
      std::string state = session->state();
      // Only sessions sitting between statements (or never past the
      // handshake) hold a lease; a statement mid-execution or
      // mid-stream is making progress and is covered by the per-write
      // timeout instead.
      if (state != "idle" && state != "handshake") continue;
      if (now - session->last_activity_millis() > lease_millis) {
        expired.push_back(session);
      }
    }
  }
  for (const auto& session : expired) {
    SessionStats stats = session->Stats();
    obs::Count("teleios_server_lease_expired_total");
    obs::PostEvent(
        "server.lease_expired",
        {{"session", std::to_string(stats.id)},
         {"peer", stats.peer},
         {"idle_millis",
          std::to_string(now - stats.last_activity_unix_millis)}});
    session->set_state("expired");
    // Half-closing wakes the handler out of its read poll; it unwinds
    // and Close()es the session, releasing budget and registry entry
    // through the one normal teardown path.
    session->ForceClose();
  }
  return expired.size();
}

std::shared_ptr<Session> SessionRegistry::Open(const std::string& peer,
                                               const std::string& protocol,
                                               size_t budget_bytes) {
  std::shared_ptr<Session> session;
  size_t live_now = 0;
  int64_t now = NowMillis();
  {
    MutexLock lock(mu_);
    uint64_t id = next_id_++;
    ++opened_;
    uint64_t key = Mix(id ^ Mix(static_cast<uint64_t>(
                           std::chrono::steady_clock::now()
                               .time_since_epoch()
                               .count())));
    session =
        std::make_shared<Session>(id, key, peer, protocol, budget_bytes);
    session->Touch(now);
    sessions_.emplace(id, session);
    live_now = sessions_.size();
  }
  obs::Count("teleios_server_connections_total");
  obs::SetGauge("teleios_server_sessions", static_cast<double>(live_now));
  obs::PostEvent("session.open", {{"session", std::to_string(session->id())},
                                  {"peer", peer},
                                  {"protocol", protocol}});
  return session;
}

void SessionRegistry::Close(const std::shared_ptr<Session>& session) {
  if (session == nullptr) return;
  size_t live_now = 0;
  {
    MutexLock lock(mu_);
    sessions_.erase(session->id());
    live_now = sessions_.size();
  }
  obs::SetGauge("teleios_server_sessions", static_cast<double>(live_now));
  SessionStats stats = session->Stats();
  obs::PostEvent("session.close",
                 {{"session", std::to_string(stats.id)},
                  {"peer", stats.peer},
                  {"queries", std::to_string(stats.queries_run)},
                  {"bytes_streamed", std::to_string(stats.bytes_streamed)}});
}

Status SessionRegistry::CancelStatement(uint64_t session_id,
                                        uint64_t cancel_key) {
  std::shared_ptr<Session> session;
  {
    MutexLock lock(mu_);
    auto it = sessions_.find(session_id);
    if (it != sessions_.end()) session = it->second;
  }
  if (session == nullptr) {
    return Status::NotFound("no live session " + std::to_string(session_id));
  }
  if (session->cancel_key() != cancel_key) {
    obs::Count("teleios_server_bad_cancel_total");
    return Status::InvalidArgument("cancel key mismatch for session " +
                                   std::to_string(session_id));
  }
  session->CancelActiveStatement();
  return Status::OK();
}

void SessionRegistry::CancelAll() {
  std::vector<std::shared_ptr<Session>> all;
  {
    MutexLock lock(mu_);
    for (auto& [id, session] : sessions_) all.push_back(session);
  }
  for (auto& session : all) session->connection_token()->Cancel();
}

void SessionRegistry::ForceCloseAll() {
  std::vector<std::shared_ptr<Session>> all;
  {
    MutexLock lock(mu_);
    for (auto& [id, session] : sessions_) all.push_back(session);
  }
  for (auto& session : all) session->ForceClose();
}

size_t SessionRegistry::live() const {
  MutexLock lock(mu_);
  return sessions_.size();
}

uint64_t SessionRegistry::opened_total() const {
  MutexLock lock(mu_);
  return opened_;
}

std::vector<SessionStats> SessionRegistry::Snapshot() const {
  std::vector<std::shared_ptr<Session>> all;
  {
    MutexLock lock(mu_);
    for (const auto& [id, session] : sessions_) all.push_back(session);
  }
  std::vector<SessionStats> stats;
  stats.reserve(all.size());
  for (const auto& session : all) stats.push_back(session->Stats());
  return stats;
}

bool SessionRegistry::Serves(const std::string& name) const {
  return name == "sys.sessions";
}

std::vector<std::string> SessionRegistry::TableNames() const {
  return {"sys.sessions"};
}

Result<TablePtr> SessionRegistry::Materialize(const std::string& name) {
  if (!Serves(name)) {
    return Status::NotFound("not a server virtual table: " + name);
  }
  auto table = std::make_shared<Table>(
      Schema({{"id", ColumnType::kInt64},
              {"peer", ColumnType::kString},
              {"protocol", ColumnType::kString},
              {"state", ColumnType::kString},
              {"queries_run", ColumnType::kInt64},
              {"bytes_streamed", ColumnType::kInt64},
              {"prepared_statements", ColumnType::kInt64},
              {"open_unix_millis", ColumnType::kInt64},
              {"last_activity_unix_millis", ColumnType::kInt64},
              {"client_id", ColumnType::kInt64}}));
  for (const SessionStats& s : Snapshot()) {
    table->column(0).AppendInt64(static_cast<int64_t>(s.id));
    table->column(1).AppendString(s.peer);
    table->column(2).AppendString(s.protocol);
    table->column(3).AppendString(s.state);
    table->column(4).AppendInt64(static_cast<int64_t>(s.queries_run));
    table->column(5).AppendInt64(static_cast<int64_t>(s.bytes_streamed));
    table->column(6).AppendInt64(static_cast<int64_t>(s.prepared_statements));
    table->column(7).AppendInt64(s.open_unix_millis);
    table->column(8).AppendInt64(s.last_activity_unix_millis);
    table->column(9).AppendInt64(static_cast<int64_t>(s.client_id));
  }
  return table;
}

}  // namespace teleios::server
