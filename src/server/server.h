#ifndef TELEIOS_SERVER_SERVER_H_
#define TELEIOS_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/observatory.h"
#include "exec/thread_pool.h"
#include "server/dedup.h"
#include "server/protocol.h"
#include "server/session.h"
#include "server/transport.h"

namespace teleios::server {

struct ServerConfig {
  /// Listen port on 127.0.0.1; 0 picks an ephemeral port (tests).
  int port = 0;
  /// Live connections served at once; further arrivals are shed with a
  /// protocol ERROR / HTTP 503 before any session state is built.
  /// TELEIOS_SERVER_MAX_SESSIONS, default 64.
  int max_sessions = 64;
  /// Shared secret required in HELLO / the Authorization: Bearer header;
  /// empty disables authentication. TELEIOS_AUTH_TOKEN.
  std::string auth_token;
  /// Rows per ROWS frame — the streaming granularity. The serialized
  /// frame is charged to the session budget while in flight, so this
  /// (not the result size) bounds per-connection server-side buffering.
  /// TELEIOS_SERVER_CHUNK_ROWS, default 1024.
  size_t chunk_rows = 1024;
  /// Per-session memory budget (child of the process root) that session
  /// statements and the streaming window charge against.
  /// TELEIOS_SESSION_MEMORY_BUDGET (k/m/g suffixes), default unlimited.
  size_t session_budget_bytes = governor::MemoryBudget::kUnlimited;
  /// Largest HTTP request (head + body) the facade accepts.
  size_t max_http_bytes = 1u << 20;
  /// Kernel accept backlog on the listen socket — arrivals beyond it
  /// are refused by the kernel before the accept loop ever sees them.
  /// TELEIOS_SERVER_BACKLOG, default 128.
  int backlog = 128;
  /// Session lease: a binary session idle longer than this (no frame,
  /// no PING) is reaped — its connection is closed and its budget and
  /// registry entry released. 0 disables the reaper.
  /// TELEIOS_SERVER_LEASE_MS, default 60000.
  int64_t lease_millis = 60'000;
  /// Per-write timeout: a client that stops reading long enough for a
  /// frame write to stall this long is killed (the stream aborts, the
  /// session unwinds). 0 disables. TELEIOS_SERVER_WRITE_TIMEOUT_MS,
  /// default 30000.
  int write_timeout_millis = 30'000;
  /// Completed mutating statements remembered per client for idempotent
  /// retry. TELEIOS_SERVER_DEDUP_WINDOW, default 128.
  int dedup_window = 128;

  static ServerConfig FromEnv();
};

/// The observatory's network front door: one loopback TCP listener
/// shared by the binary wire protocol (see protocol.h) and a minimal
/// HTTP/1.1 JSON facade, distinguished by the first four bytes of each
/// connection. Connections are served thread-per-connection on a
/// dedicated exec::ThreadPool (never the global morsel pool — a parked
/// recv must not starve a running scan).
///
/// Every statement a connection runs flows through the same governed
/// path as in-process callers — ActiveQueryRegistry registration,
/// admission control, per-query budget as a child of the session budget
/// — and its cancellation token chains to the connection token, so a
/// CANCEL frame or a dropped socket cooperatively stops the running
/// morsel loop.
///
/// Shutdown() is the SIGTERM path: stop accepting, let in-flight
/// statements finish streaming, force-close stragglers after the drain
/// window, then write a final WAL checkpoint when the observatory is
/// durable.
class TeleiosServer {
 public:
  TeleiosServer(core::VirtualEarthObservatory* observatory,
                ServerConfig config = ServerConfig::FromEnv());
  ~TeleiosServer();

  TeleiosServer(const TeleiosServer&) = delete;
  TeleiosServer& operator=(const TeleiosServer&) = delete;

  /// Binds, registers sys.sessions with the observatory, and starts the
  /// accept loop. Fails (kIoError) when the port is taken.
  Status Start();

  /// Graceful drain; safe to call twice. Blocks up to `drain_timeout`
  /// waiting for live sessions to finish their current statement, then
  /// cancels and force-closes the rest, joins the connection pool, and
  /// checkpoints a durable observatory.
  Status Shutdown(
      std::chrono::milliseconds drain_timeout = std::chrono::seconds(5));

  /// The bound port (after Start; the ephemeral port when config.port
  /// was 0).
  int port() const { return port_; }
  bool running() const { return started_ && !stopping_; }
  bool draining() const { return draining_; }

  SessionRegistry& sessions() { return sessions_; }
  DedupRegistry& dedup() { return dedup_; }
  const ServerConfig& config() const { return config_; }

 private:
  friend struct ConnectionIo;

  void AcceptLoop();
  /// The lease reaper: polls the session registry and force-closes
  /// sessions idle past config_.lease_millis (see
  /// SessionRegistry::ReapExpired).
  void ReapLoop();
  /// Sheds one connection before session setup: sniffs just enough to
  /// answer in the right protocol, replies kUnavailable / 503, closes.
  void ShedConnection(std::unique_ptr<Connection> conn);
  void HandleConnection(std::unique_ptr<Connection> conn);
  void ServeBinary(Connection* conn,
                   const std::shared_ptr<Session>& session);
  void ServeHttp(Connection* conn, const std::shared_ptr<Session>& session,
                 const std::string& sniffed);

  /// Reads one frame (header + CRC-checked body); kUnavailable on clean
  /// EOF between frames, kCancelled once draining, kDataLoss on a
  /// malformed or torn frame.
  Status ReadFrame(Connection* conn, Frame* frame);
  /// Writes one frame under the per-write timeout; a stalled client
  /// surfaces kDeadlineExceeded (counted) and kills the connection.
  Status WriteFrame(Connection* conn,
                    const std::shared_ptr<Session>& session, Opcode opcode,
                    std::string_view payload);

  /// Runs one statement through the observatory's governed entry points
  /// and streams the result (SCHEMA / ROWS* / DONE) or an ERROR frame.
  /// The returned status is the *connection's* health: engine errors are
  /// reported to the client and return OK here; only a dead socket is
  /// non-OK. A nonzero `request_id` (on a session that declared a
  /// client_id) goes through the dedup window: a duplicate replays the
  /// recorded outcome instead of re-executing.
  Status RunAndStream(Connection* conn,
                      const std::shared_ptr<Session>& session, Lang lang,
                      const std::string& statement, uint64_t deadline_millis,
                      uint64_t request_id = 0);

  /// Streams one materialized table as SCHEMA / ROWS* / DONE — shared
  /// by fresh results and dedup replays.
  Status StreamTable(Connection* conn,
                     const std::shared_ptr<Session>& session,
                     const storage::Table& table);

  Result<storage::Table> RunStatement(
      const std::shared_ptr<Session>& session, Lang lang,
      const std::string& statement, uint64_t deadline_millis);

  core::VirtualEarthObservatory* const observatory_;
  const ServerConfig config_;
  SessionRegistry sessions_;
  DedupRegistry dedup_;
  std::unique_ptr<Listener> listener_;
  int port_ = 0;
  std::unique_ptr<exec::ThreadPool> pool_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> accept_done_{false};
  /// Connections a handler is serving right now — the shed threshold.
  /// Tracked separately from sessions_.live() because a connection
  /// occupies a pool worker from accept, before its session exists.
  std::atomic<int> active_connections_{0};
};

}  // namespace teleios::server

#endif  // TELEIOS_SERVER_SERVER_H_
