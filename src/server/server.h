#ifndef TELEIOS_SERVER_SERVER_H_
#define TELEIOS_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/observatory.h"
#include "exec/thread_pool.h"
#include "server/protocol.h"
#include "server/session.h"
#include "server/socket.h"

namespace teleios::server {

struct ServerConfig {
  /// Listen port on 127.0.0.1; 0 picks an ephemeral port (tests).
  int port = 0;
  /// Live connections served at once; further arrivals are shed with a
  /// protocol ERROR / HTTP 503 before any session state is built.
  /// TELEIOS_SERVER_MAX_SESSIONS, default 64.
  int max_sessions = 64;
  /// Shared secret required in HELLO / the Authorization: Bearer header;
  /// empty disables authentication. TELEIOS_AUTH_TOKEN.
  std::string auth_token;
  /// Rows per ROWS frame — the streaming granularity. The serialized
  /// frame is charged to the session budget while in flight, so this
  /// (not the result size) bounds per-connection server-side buffering.
  /// TELEIOS_SERVER_CHUNK_ROWS, default 1024.
  size_t chunk_rows = 1024;
  /// Per-session memory budget (child of the process root) that session
  /// statements and the streaming window charge against.
  /// TELEIOS_SESSION_MEMORY_BUDGET (k/m/g suffixes), default unlimited.
  size_t session_budget_bytes = governor::MemoryBudget::kUnlimited;
  /// Largest HTTP request (head + body) the facade accepts.
  size_t max_http_bytes = 1u << 20;

  static ServerConfig FromEnv();
};

/// The observatory's network front door: one loopback TCP listener
/// shared by the binary wire protocol (see protocol.h) and a minimal
/// HTTP/1.1 JSON facade, distinguished by the first four bytes of each
/// connection. Connections are served thread-per-connection on a
/// dedicated exec::ThreadPool (never the global morsel pool — a parked
/// recv must not starve a running scan).
///
/// Every statement a connection runs flows through the same governed
/// path as in-process callers — ActiveQueryRegistry registration,
/// admission control, per-query budget as a child of the session budget
/// — and its cancellation token chains to the connection token, so a
/// CANCEL frame or a dropped socket cooperatively stops the running
/// morsel loop.
///
/// Shutdown() is the SIGTERM path: stop accepting, let in-flight
/// statements finish streaming, force-close stragglers after the drain
/// window, then write a final WAL checkpoint when the observatory is
/// durable.
class TeleiosServer {
 public:
  TeleiosServer(core::VirtualEarthObservatory* observatory,
                ServerConfig config = ServerConfig::FromEnv());
  ~TeleiosServer();

  TeleiosServer(const TeleiosServer&) = delete;
  TeleiosServer& operator=(const TeleiosServer&) = delete;

  /// Binds, registers sys.sessions with the observatory, and starts the
  /// accept loop. Fails (kIoError) when the port is taken.
  Status Start();

  /// Graceful drain; safe to call twice. Blocks up to `drain_timeout`
  /// waiting for live sessions to finish their current statement, then
  /// cancels and force-closes the rest, joins the connection pool, and
  /// checkpoints a durable observatory.
  Status Shutdown(
      std::chrono::milliseconds drain_timeout = std::chrono::seconds(5));

  /// The bound port (after Start; the ephemeral port when config.port
  /// was 0).
  int port() const { return port_; }
  bool running() const { return started_ && !stopping_; }
  bool draining() const { return draining_; }

  SessionRegistry& sessions() { return sessions_; }
  const ServerConfig& config() const { return config_; }

 private:
  friend struct ConnectionIo;

  void AcceptLoop();
  /// Sheds one connection before session setup: sniffs just enough to
  /// answer in the right protocol, replies kUnavailable / 503, closes.
  void ShedConnection(Socket sock);
  void HandleConnection(Socket sock);
  void ServeBinary(Socket* sock, const std::shared_ptr<Session>& session);
  void ServeHttp(Socket* sock, const std::shared_ptr<Session>& session,
                 const std::string& sniffed);

  /// Reads one frame (header + CRC-checked body); kUnavailable on clean
  /// EOF between frames, kCancelled once draining, kDataLoss on a
  /// malformed or torn frame.
  Status ReadFrame(Socket* sock, Frame* frame);
  Status WriteFrame(Socket* sock, const std::shared_ptr<Session>& session,
                    Opcode opcode, std::string_view payload);

  /// Runs one statement through the observatory's governed entry points
  /// and streams the result (SCHEMA / ROWS* / DONE) or an ERROR frame.
  /// The returned status is the *connection's* health: engine errors are
  /// reported to the client and return OK here; only a dead socket is
  /// non-OK.
  Status RunAndStream(Socket* sock, const std::shared_ptr<Session>& session,
                      Lang lang, const std::string& statement,
                      uint64_t deadline_millis);

  Result<storage::Table> RunStatement(
      const std::shared_ptr<Session>& session, Lang lang,
      const std::string& statement, uint64_t deadline_millis);

  core::VirtualEarthObservatory* const observatory_;
  const ServerConfig config_;
  SessionRegistry sessions_;
  Socket listener_;
  int port_ = 0;
  std::unique_ptr<exec::ThreadPool> pool_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> accept_done_{false};
  /// Connections a handler is serving right now — the shed threshold.
  /// Tracked separately from sessions_.live() because a connection
  /// occupies a pool worker from accept, before its session exists.
  std::atomic<int> active_connections_{0};
};

}  // namespace teleios::server

#endif  // TELEIOS_SERVER_SERVER_H_
