#include "server/server.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "common/strings.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "server/http.h"

namespace teleios::server {

namespace {

using std::chrono::steady_clock;

/// Env int with a floor; unset/unparsable keeps the default.
int EnvInt(const char* name, int def, int min_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return def;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  if (end == env) return def;
  return std::max(min_value, static_cast<int>(v));
}

/// Same k/m/g-suffix grammar as TELEIOS_MEMORY_BUDGET (see the
/// governor); unset, 0 or unparsable = unlimited.
size_t EnvBytes(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return governor::MemoryBudget::kUnlimited;
  }
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env) return governor::MemoryBudget::kUnlimited;
  switch (std::tolower(static_cast<unsigned char>(*end))) {
    case 'k':
      v <<= 10;
      break;
    case 'm':
      v <<= 20;
      break;
    case 'g':
      v <<= 30;
      break;
    default:
      break;
  }
  return v == 0 ? governor::MemoryBudget::kUnlimited
                : static_cast<size_t>(v);
}

/// Frame header + CRC overhead on the wire, for budget accounting.
constexpr size_t kFrameOverhead = 9;  // u32 length + u32 crc + u8 opcode

/// How long a fresh connection may take to show its first protocol
/// bytes and HELLO before the server hangs up — an unauthenticated
/// socket must not pin a pool worker forever.
constexpr std::chrono::seconds kHandshakeTimeout(10);

}  // namespace

/// keep_going context for Socket::ReadExact poll slices: abandon the
/// read once the server drains, and optionally on a handshake deadline.
struct ConnectionIo {
  TeleiosServer* server = nullptr;
  bool has_deadline = false;
  steady_clock::time_point deadline;

  static bool KeepGoing(void* arg) {
    auto* io = static_cast<ConnectionIo*>(arg);
    if (io->server->stopping_ || io->server->draining_) return false;
    if (io->has_deadline && steady_clock::now() > io->deadline) return false;
    return true;
  }
};

ServerConfig ServerConfig::FromEnv() {
  ServerConfig config;
  config.port = EnvInt("TELEIOS_SERVER_PORT", 0, 0);
  config.max_sessions = EnvInt("TELEIOS_SERVER_MAX_SESSIONS", 64, 1);
  const char* token = std::getenv("TELEIOS_AUTH_TOKEN");
  if (token != nullptr) config.auth_token = token;
  config.chunk_rows = static_cast<size_t>(
      EnvInt("TELEIOS_SERVER_CHUNK_ROWS", 1024, 1));
  config.session_budget_bytes = EnvBytes("TELEIOS_SESSION_MEMORY_BUDGET");
  config.backlog = EnvInt("TELEIOS_SERVER_BACKLOG", 128, 1);
  config.lease_millis = EnvInt("TELEIOS_SERVER_LEASE_MS", 60'000, 0);
  config.write_timeout_millis =
      EnvInt("TELEIOS_SERVER_WRITE_TIMEOUT_MS", 30'000, 0);
  config.dedup_window = EnvInt("TELEIOS_SERVER_DEDUP_WINDOW", 128, 1);
  return config;
}

TeleiosServer::TeleiosServer(core::VirtualEarthObservatory* observatory,
                             ServerConfig config)
    : observatory_(observatory),
      config_(std::move(config)),
      dedup_(/*max_clients=*/256,
             static_cast<size_t>(config_.dedup_window)) {}

TeleiosServer::~TeleiosServer() {
  Status st = Shutdown();
  (void)st;  // a destructor has no one to report a checkpoint error to
}

Status TeleiosServer::Start() {
  if (started_) return Status::AlreadyExists("server already started");
  TELEIOS_ASSIGN_OR_RETURN(
      listener_, GetTransport()->Listen(config_.port, config_.backlog));
  port_ = listener_->bound_port();
  observatory_->system_tables().set_extra(&sessions_);
  // One worker per serveable connection plus the accept loop and (when
  // leasing) the reaper; never the global morsel pool — a handler
  // parked in recv(2) must not steal a core from a running scan. The
  // pool spawns `threads - 1` workers (the submitter participates in
  // morsel pools, but nobody waits on this one), hence the extra +1.
  const int reaper_workers = config_.lease_millis > 0 ? 1 : 0;
  pool_ = std::make_unique<exec::ThreadPool>(
      config_.max_sessions + 2 + reaper_workers, "server");
  started_ = true;
  pool_->Submit([this] { AcceptLoop(); });
  if (config_.lease_millis > 0) {
    pool_->Submit([this] { ReapLoop(); });
  }
  obs::PostEvent("server.start", {{"port", std::to_string(port_)}});
  return Status::OK();
}

void TeleiosServer::AcceptLoop() {
  while (!stopping_) {
    Result<std::unique_ptr<Connection>> accepted =
        listener_->AcceptWithTimeout(100);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kUnavailable) {
        // A poll timeout — or an injected/transient accept failure; a
        // real arrival that got refused is worth counting.
        if (accepted.status().message() != "accept timed out") {
          obs::Count("teleios_server_accept_refused_total");
        }
        continue;
      }
      break;  // listener shut down (or hard error): stop accepting
    }
    if (active_connections_.load() >= config_.max_sessions) {
      ShedConnection(std::move(accepted).value());
      continue;
    }
    ++active_connections_;
    auto conn = std::make_shared<std::unique_ptr<Connection>>(
        std::move(accepted).value());
    pool_->Submit([this, conn]() mutable {
      HandleConnection(std::move(*conn));
      --active_connections_;
    });
  }
  accept_done_ = true;
}

void TeleiosServer::ReapLoop() {
  // Sleep in short ticks (so shutdown never waits on this thread) but
  // scan only every ~lease/10 — expiry is noticed within ~10% of the
  // configured idle bound without hammering the registry.
  const auto tick = std::chrono::milliseconds(10);
  const int64_t ticks_per_scan =
      std::max<int64_t>(1, config_.lease_millis / 10 / tick.count());
  int64_t ticks = 0;
  while (!stopping_) {
    std::this_thread::sleep_for(tick);
    if (stopping_) break;
    if (++ticks % ticks_per_scan != 0) continue;
    sessions_.ReapExpired(config_.lease_millis);
  }
}

void TeleiosServer::ShedConnection(std::unique_ptr<Connection> conn) {
  obs::Count("teleios_server_sheds_total");
  obs::PostEvent("server.shed",
                 {{"peer", conn->peer()},
                  {"live", std::to_string(active_connections_.load())}});
  // Sniff briefly (one poll slice) so the refusal speaks the client's
  // protocol; a silent client just gets the close.
  char preamble[4] = {0};
  ConnectionIo io{this, true, steady_clock::now()};
  Status sniffed = conn->ReadExact(preamble, sizeof(preamble), 200,
                                   &ConnectionIo::KeepGoing, &io);
  Status refusal =
      Status::Unavailable("server at max_sessions=" +
                          std::to_string(config_.max_sessions) +
                          "; connection refused");
  Status st;
  if (sniffed.ok() && std::memcmp(preamble, kMagic, sizeof(kMagic)) == 0) {
    std::string out;
    AppendFrame(&out, Opcode::kError, EncodeError(refusal));
    st = conn->WriteAll(out, config_.write_timeout_millis);
  } else {
    st = conn->WriteAll(
        BuildHttpResponse(503, "application/json", ErrorToJson(refusal)),
        config_.write_timeout_millis);
  }
  (void)st;  // the peer is being dropped either way
}

void TeleiosServer::HandleConnection(std::unique_ptr<Connection> conn) {
  char preamble[4] = {0};
  ConnectionIo io{this, true, steady_clock::now() + kHandshakeTimeout};
  Status st = conn->ReadExact(preamble, sizeof(preamble), 250,
                              &ConnectionIo::KeepGoing, &io);
  if (!st.ok()) return;  // silent or dropped connection: nothing owed

  const bool binary = std::memcmp(preamble, kMagic, sizeof(kMagic)) == 0;
  std::shared_ptr<Session> session = sessions_.Open(
      conn->peer(), binary ? "binary" : "http",
      config_.session_budget_bytes);
  session->RegisterConnection(conn.get());
  if (binary) {
    ServeBinary(conn.get(), session);
  } else {
    ServeHttp(conn.get(), session, std::string(preamble, sizeof(preamble)));
  }
  session->ClearConnection();
  // A dropped socket cancels whatever the session was still running —
  // the morsel loop unwinds at its next poll even though the handler
  // thread has already moved on.
  session->connection_token()->Cancel();
  sessions_.Close(session);
}

Status TeleiosServer::ReadFrame(Connection* conn, Frame* frame) {
  char header[8];
  ConnectionIo io{this, false, {}};
  TELEIOS_RETURN_IF_ERROR(conn->ReadExact(header, sizeof(header), 250,
                                          &ConnectionIo::KeepGoing, &io));
  uint32_t crc = 0;
  TELEIOS_ASSIGN_OR_RETURN(
      uint32_t length,
      DecodeFrameLength(std::string_view(header, sizeof(header)), &crc));
  std::string body(length, '\0');
  // The body must follow promptly — a half-sent frame cannot hold the
  // connection open past the handshake timeout.
  ConnectionIo body_io{this, true, steady_clock::now() + kHandshakeTimeout};
  Status st = conn->ReadExact(body.data(), body.size(), 250,
                              &ConnectionIo::KeepGoing, &body_io);
  if (!st.ok()) {
    return st.code() == StatusCode::kCancelled
               ? st
               : Status::DataLoss("frame body truncated: " + st.message());
  }
  TELEIOS_ASSIGN_OR_RETURN(*frame, DecodeFrameBody(body, crc));
  obs::Count("teleios_server_frames_total");
  obs::Count("teleios_server_bytes_in_total", sizeof(header) + body.size());
  return Status::OK();
}

Status TeleiosServer::WriteFrame(Connection* conn,
                                 const std::shared_ptr<Session>& session,
                                 Opcode opcode, std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + kFrameOverhead);
  AppendFrame(&out, opcode, payload);
  Status st = conn->WriteAll(out, config_.write_timeout_millis);
  if (!st.ok()) {
    if (st.code() == StatusCode::kDeadlineExceeded) {
      // The client stopped reading long enough to stall this write:
      // kill the connection so its budget, registry entry, and pool
      // worker come back.
      obs::Count("teleios_server_write_timeouts_total");
      obs::PostEvent("server.write_timeout",
                     {{"session", session != nullptr
                                      ? std::to_string(session->id())
                                      : std::string("0")},
                      {"opcode", OpcodeName(opcode)}});
      conn->ShutdownBoth();
    }
    return st;
  }
  if (session != nullptr) session->AddBytesStreamed(out.size());
  return Status::OK();
}

void TeleiosServer::ServeBinary(Connection* conn,
                                const std::shared_ptr<Session>& session) {
  auto protocol_error = [&](const Status& st) {
    obs::Count("teleios_server_protocol_errors_total");
    Status write = WriteFrame(conn, session, Opcode::kError, EncodeError(st));
    (void)write;  // the connection is being dropped regardless
  };

  // --- HELLO ---------------------------------------------------------------
  Frame frame;
  Status st = ReadFrame(conn, &frame);
  if (!st.ok()) {
    if (st.code() == StatusCode::kDataLoss) protocol_error(st);
    return;
  }
  if (frame.opcode != Opcode::kHello) {
    protocol_error(Status::InvalidArgument(
        "first frame must be HELLO, got " + std::string(OpcodeName(frame.opcode))));
    return;
  }
  io::ByteReader hello(frame.payload);
  uint32_t version = 0;
  std::string auth_token;
  uint64_t default_deadline = 0;
  uint64_t client_id = 0;
  if (!hello.ReadU32(&version) || !hello.ReadStr(&auth_token) ||
      !hello.ReadU64(&default_deadline)) {
    protocol_error(Status::DataLoss("malformed HELLO payload"));
    return;
  }
  // Optional v2 trailing field: the client's stable identity for the
  // idempotent-retry window. A v1 HELLO simply ends here.
  if (!hello.exhausted() &&
      (!hello.ReadU64(&client_id) || !hello.exhausted())) {
    protocol_error(Status::DataLoss("malformed HELLO payload"));
    return;
  }
  if (version == 0 || version > kProtocolVersion) {
    protocol_error(Status::InvalidArgument(
        "client protocol version " + std::to_string(version) +
        " not supported (server speaks " +
        std::to_string(kProtocolVersion) + ")"));
    return;
  }
  if (!config_.auth_token.empty() && auth_token != config_.auth_token) {
    protocol_error(Status::InvalidArgument("authentication failed"));
    return;
  }
  session->set_client_id(client_id);
  st = WriteFrame(conn, session, Opcode::kWelcome,
                  EncodeWelcome(kProtocolVersion, session->id(),
                                session->cancel_key()));
  if (!st.ok()) return;
  session->set_state("idle");
  session->Touch(sessions_.NowMillis());

  // --- statement loop ------------------------------------------------------
  for (;;) {
    st = ReadFrame(conn, &frame);
    if (!st.ok()) {
      // kUnavailable: clean close between frames. kCancelled: draining.
      if (st.code() == StatusCode::kDataLoss) protocol_error(st);
      if (st.code() == StatusCode::kCancelled && draining_) {
        Status bye = WriteFrame(
            conn, session, Opcode::kError,
            EncodeError(Status::Unavailable("server shutting down")));
        (void)bye;
      }
      return;
    }
    // Every frame renews the lease — including PING, whose whole job
    // is to renew it.
    session->Touch(sessions_.NowMillis());
    io::ByteReader reader(frame.payload);
    switch (frame.opcode) {
      case Opcode::kQuery: {
        uint8_t lang_byte = 0;
        std::string statement;
        uint64_t deadline = 0;
        uint64_t request_id = 0;
        if (!reader.ReadBytes(&lang_byte, 1) ||
            !reader.ReadStr(&statement, kMaxFrameBytes) ||
            !reader.ReadU64(&deadline) || lang_byte < 1 || lang_byte > 3 ||
            // Optional v2 trailing field: the retry request id.
            (!reader.exhausted() &&
             (!reader.ReadU64(&request_id) || !reader.exhausted()))) {
          protocol_error(Status::DataLoss("malformed QUERY payload"));
          return;
        }
        st = RunAndStream(conn, session, static_cast<Lang>(lang_byte),
                          statement,
                          deadline > 0 ? deadline : default_deadline,
                          request_id);
        if (!st.ok()) return;
        break;
      }
      case Opcode::kPrepare: {
        uint8_t lang_byte = 0;
        std::string statement;
        if (!reader.ReadBytes(&lang_byte, 1) ||
            !reader.ReadStr(&statement, kMaxFrameBytes) ||
            !reader.exhausted() || lang_byte < 1 || lang_byte > 3) {
          protocol_error(Status::DataLoss("malformed PREPARE payload"));
          return;
        }
        uint32_t stmt_id = session->AddPrepared(
            {static_cast<Lang>(lang_byte), std::move(statement)});
        st = WriteFrame(conn, session, Opcode::kStmtReady,
                        EncodeStmtReady(stmt_id));
        if (!st.ok()) return;
        break;
      }
      case Opcode::kExecute: {
        uint32_t stmt_id = 0;
        uint32_t nparams = 0;
        if (!reader.ReadU32(&stmt_id) || !reader.ReadU32(&nparams) ||
            nparams > 1024) {
          protocol_error(Status::DataLoss("malformed EXECUTE payload"));
          return;
        }
        std::vector<Value> params;
        params.reserve(nparams);
        bool bad = false;
        for (uint32_t i = 0; i < nparams; ++i) {
          Result<Value> v = ReadValue(&reader);
          if (!v.ok()) {
            bad = true;
            break;
          }
          params.push_back(std::move(v).value());
        }
        uint64_t deadline = 0;
        uint64_t request_id = 0;
        if (bad || !reader.ReadU64(&deadline) ||
            // Optional v2 trailing field: the retry request id.
            (!reader.exhausted() &&
             (!reader.ReadU64(&request_id) || !reader.exhausted()))) {
          protocol_error(Status::DataLoss("malformed EXECUTE payload"));
          return;
        }
        Result<PreparedStatement> stmt = session->GetPrepared(stmt_id);
        if (!stmt.ok()) {
          st = WriteFrame(conn, session, Opcode::kError,
                          EncodeError(stmt.status()));
          if (!st.ok()) return;
          break;
        }
        Result<std::string> bound =
            BindParameters(stmt.value().text, params);
        if (!bound.ok()) {
          st = WriteFrame(conn, session, Opcode::kError,
                          EncodeError(bound.status()));
          if (!st.ok()) return;
          break;
        }
        st = RunAndStream(conn, session, stmt.value().lang, bound.value(),
                          deadline > 0 ? deadline : default_deadline,
                          request_id);
        if (!st.ok()) return;
        break;
      }
      case Opcode::kCancel: {
        uint64_t target_session = 0;
        uint64_t cancel_key = 0;
        if (!reader.ReadU64(&target_session) ||
            !reader.ReadU64(&cancel_key) || !reader.exhausted()) {
          protocol_error(Status::DataLoss("malformed CANCEL payload"));
          return;
        }
        Status cancelled =
            sessions_.CancelStatement(target_session, cancel_key);
        st = cancelled.ok()
                 ? WriteFrame(conn, session, Opcode::kDone, EncodeDone(0, 0))
                 : WriteFrame(conn, session, Opcode::kError,
                              EncodeError(cancelled));
        if (!st.ok()) return;
        break;
      }
      case Opcode::kCloseStmt: {
        uint32_t stmt_id = 0;
        if (!reader.ReadU32(&stmt_id) || !reader.exhausted()) {
          protocol_error(Status::DataLoss("malformed CLOSE_STMT payload"));
          return;
        }
        Status closed = session->ClosePrepared(stmt_id);
        st = closed.ok()
                 ? WriteFrame(conn, session, Opcode::kDone, EncodeDone(0, 0))
                 : WriteFrame(conn, session, Opcode::kError,
                              EncodeError(closed));
        if (!st.ok()) return;
        break;
      }
      case Opcode::kPing: {
        // The lease heartbeat: echo the payload back so clients can
        // measure round trips. The Touch above already renewed the
        // lease.
        obs::Count("teleios_server_pings_total");
        st = WriteFrame(conn, session, Opcode::kPong, frame.payload);
        if (!st.ok()) return;
        break;
      }
      case Opcode::kGoodbye:
        return;
      default:
        protocol_error(Status::InvalidArgument(
            "unexpected opcode " +
            std::to_string(static_cast<int>(frame.opcode))));
        return;
    }
  }
}

Result<storage::Table> TeleiosServer::RunStatement(
    const std::shared_ptr<Session>& session, Lang lang,
    const std::string& statement, uint64_t deadline_millis) {
  session->AddQuery();
  obs::Count(obs::WithLabel("teleios_server_queries_total", "lang",
                            LangName(lang)));
  std::shared_ptr<CancellationToken> token =
      session->BeginStatement(deadline_millis);
  // Install the session budget thread-locally: the facade's per-query
  // budget becomes its child, so the chain reads process -> session ->
  // query in sys.budgets.
  governor::ScopedBudget scope(session->budget());
  Result<storage::Table> result = Status::Internal("unreachable");
  switch (lang) {
    case Lang::kSql:
      result = observatory_->Sql(statement, token.get());
      break;
    case Lang::kSciQl:
      result = observatory_->SciQl(statement, token.get());
      break;
    case Lang::kStSparql: {
      // SELECT/ASK stream rows; updates return a one-row count table so
      // both shapes fit the same SCHEMA/ROWS/DONE stream.
      std::string_view head = StrTrim(statement);
      std::string first = StrLower(std::string(
          head.substr(0, std::min<size_t>(head.size(), 6))));
      if (StrStartsWith(first, "insert") || StrStartsWith(first, "delete")) {
        Result<size_t> count = observatory_->StSparqlUpdate(statement);
        if (!count.ok()) {
          result = count.status();
        } else {
          storage::Table table(
              storage::Schema({{"count", storage::ColumnType::kInt64}}));
          table.column(0).AppendInt64(
              static_cast<int64_t>(count.value()));
          result = std::move(table);
        }
      } else {
        result = observatory_->StSparql(statement, token.get());
      }
      break;
    }
  }
  session->EndStatement();
  return result;
}

Status TeleiosServer::StreamTable(Connection* conn,
                                  const std::shared_ptr<Session>& session,
                                  const storage::Table& table) {
  session->set_state("streaming");
  Status st =
      WriteFrame(conn, session, Opcode::kSchema, EncodeSchema(table));
  if (!st.ok()) return st;
  uint64_t chunks = 0;
  const size_t num_rows = table.num_rows();
  for (size_t begin = 0; begin < num_rows; begin += config_.chunk_rows) {
    size_t end = std::min(num_rows, begin + config_.chunk_rows);
    std::string payload = EncodeRowChunk(table, begin, end);
    // Backpressure: the serialized chunk is charged to the session
    // budget for as long as it sits in our hands / the socket buffer —
    // a slow reader throttles the stream instead of growing the heap.
    Result<governor::BudgetCharge> charge = governor::TryCharge(
        session->budget(), payload.size() + kFrameOverhead,
        "result stream window");
    if (!charge.ok()) {
      session->set_state("idle");
      return WriteFrame(conn, session, Opcode::kError,
                        EncodeError(charge.status()));
    }
    st = WriteFrame(conn, session, Opcode::kRows, payload);
    if (!st.ok()) return st;
    ++chunks;
  }
  st = WriteFrame(conn, session, Opcode::kDone,
                  EncodeDone(num_rows, chunks));
  session->set_state("idle");
  return st;
}

Status TeleiosServer::RunAndStream(Connection* conn,
                                   const std::shared_ptr<Session>& session,
                                   Lang lang, const std::string& statement,
                                   uint64_t deadline_millis,
                                   uint64_t request_id) {
  const uint64_t client_id = session->client_id();
  const bool dedup = request_id != 0 && client_id != 0;
  if (dedup) {
    DedupRegistry::Claim claim = dedup_.Begin(client_id, request_id);
    if (claim.kind == DedupRegistry::Claim::kDone) {
      // A retry of a statement that already ran to a definitive outcome:
      // replay the recording, never re-execute.
      if (!claim.status.ok()) {
        return WriteFrame(conn, session, Opcode::kError,
                          EncodeError(claim.status));
      }
      if (claim.result == nullptr) {
        return WriteFrame(
            conn, session, Opcode::kError,
            EncodeError(Status::Internal("dedup window lost its result")));
      }
      return StreamTable(conn, session, *claim.result);
    }
    if (claim.kind == DedupRegistry::Claim::kInFlight) {
      // The retry raced the original (still executing on its dying
      // connection). Tell the client to back off; the connection itself
      // is healthy.
      return WriteFrame(conn, session, Opcode::kError,
                        EncodeError(claim.status));
    }
  }
  session->set_state("executing");
  Result<storage::Table> result =
      RunStatement(session, lang, statement, deadline_millis);
  if (dedup) {
    // Record the outcome BEFORE streaming: the handler is synchronous,
    // so by the time a mid-stream disconnect is noticed the statement
    // has already completed here — the retry on a fresh connection
    // replays it instead of applying the mutation twice.
    //
    // Cancellation / deadline are not definitive: the statement was
    // aborted before committing, so the retry should re-execute rather
    // than replay an error that no longer describes anything.
    StatusCode code = result.status().code();
    if (code == StatusCode::kCancelled ||
        code == StatusCode::kDeadlineExceeded) {
      dedup_.Abandon(client_id, request_id);
    } else if (result.ok()) {
      dedup_.Complete(client_id, request_id, Status::OK(),
                      std::make_shared<const storage::Table>(result.value()));
    } else {
      dedup_.Complete(client_id, request_id, result.status(), nullptr);
    }
  }
  if (!result.ok()) {
    session->set_state("idle");
    // An engine error is the statement's problem, not the connection's.
    return WriteFrame(conn, session, Opcode::kError,
                      EncodeError(result.status()));
  }
  return StreamTable(conn, session, result.value());
}

void TeleiosServer::ServeHttp(Connection* conn,
                              const std::shared_ptr<Session>& session,
                              const std::string& sniffed) {
  obs::Count("teleios_server_http_requests_total");
  session->set_state("executing");
  session->Touch(sessions_.NowMillis());
  auto respond = [&](int status, std::string_view content_type,
                     std::string_view body) {
    std::string out = BuildHttpResponse(status, content_type, body);
    Status st = conn->WriteAll(out, config_.write_timeout_millis);
    if (st.ok()) session->AddBytesStreamed(out.size());
  };

  // Read up to CRLFCRLF (the head), bounded by max_http_bytes.
  std::string data = sniffed;
  size_t head_end;
  while ((head_end = data.find("\r\n\r\n")) == std::string::npos) {
    if (data.size() > config_.max_http_bytes) {
      respond(413, "application/json",
              ErrorToJson(Status::InvalidArgument("request too large")));
      return;
    }
    char buf[4096];
    Result<size_t> r = conn->ReadSome(buf, sizeof(buf), 5000);
    if (!r.ok() || r.value() == 0) return;  // slowloris / dropped
    data.append(buf, r.value());
  }
  Result<HttpRequest> parsed = ParseHttpHead(data.substr(0, head_end + 4));
  if (!parsed.ok()) {
    respond(400, "application/json", ErrorToJson(parsed.status()));
    return;
  }
  HttpRequest request = std::move(parsed).value();
  Result<size_t> length =
      DeclaredContentLength(request, config_.max_http_bytes);
  if (!length.ok()) {
    respond(413, "application/json", ErrorToJson(length.status()));
    return;
  }
  request.body = data.substr(head_end + 4);
  if (request.body.size() < length.value()) {
    size_t missing = length.value() - request.body.size();
    std::string rest(missing, '\0');
    ConnectionIo io{this, true, steady_clock::now() + kHandshakeTimeout};
    Status st = conn->ReadExact(rest.data(), rest.size(), 250,
                                &ConnectionIo::KeepGoing, &io);
    if (!st.ok()) return;
    request.body += rest;
  } else {
    request.body.resize(length.value());
  }
  obs::Count("teleios_server_bytes_in_total",
             data.size() + request.body.size());

  // --- routes --------------------------------------------------------------
  if (request.method == "GET" && request.path == "/healthz") {
    respond(200, "text/plain", draining_ ? "draining\n" : "ok\n");
    return;
  }
  if (request.method == "GET" && request.path == "/metrics") {
    respond(200, "text/plain; version=0.0.4", observatory_->MetricsText());
    return;
  }
  if (request.method == "GET" && request.path == "/sessions") {
    Result<storage::TablePtr> table = sessions_.Materialize("sys.sessions");
    if (!table.ok()) {
      respond(500, "application/json", ErrorToJson(table.status()));
    } else {
      respond(200, "application/json", TableToJson(*table.value()));
    }
    return;
  }
  if (request.path == "/query") {
    if (request.method != "POST") {
      respond(405, "application/json",
              ErrorToJson(Status::InvalidArgument(
                  "use POST /query with the statement as the body")));
      return;
    }
    if (!config_.auth_token.empty()) {
      auto it = request.headers.find("authorization");
      if (it == request.headers.end() ||
          it->second != "Bearer " + config_.auth_token) {
        respond(401, "application/json",
                ErrorToJson(
                    Status::InvalidArgument("authentication failed")));
        return;
      }
    }
    std::string lang_name = "sql";
    auto lang_it = request.query.find("lang");
    if (lang_it != request.query.end()) lang_name = lang_it->second;
    Result<Lang> lang = ParseLang(lang_name);
    if (!lang.ok()) {
      respond(400, "application/json", ErrorToJson(lang.status()));
      return;
    }
    uint64_t deadline = 0;
    auto deadline_it = request.query.find("timeout_millis");
    if (deadline_it != request.query.end()) {
      Result<int64_t> millis = ParseInt64(deadline_it->second);
      if (!millis.ok() || millis.value() < 0) {
        respond(400, "application/json",
                ErrorToJson(
                    Status::InvalidArgument("bad timeout_millis value")));
        return;
      }
      deadline = static_cast<uint64_t>(millis.value());
    }
    if (request.body.empty()) {
      respond(400, "application/json",
              ErrorToJson(Status::InvalidArgument(
                  "empty statement: POST the query text as the body")));
      return;
    }
    Result<storage::Table> result =
        RunStatement(session, lang.value(), request.body, deadline);
    session->set_state("idle");
    if (!result.ok()) {
      respond(HttpStatusForError(result.status()), "application/json",
              ErrorToJson(result.status()));
    } else {
      respond(200, "application/json", TableToJson(result.value()));
    }
    return;
  }
  respond(404, "application/json",
          ErrorToJson(Status::NotFound("no route for " + request.method +
                                       " " + request.path)));
}

Status TeleiosServer::Shutdown(std::chrono::milliseconds drain_timeout) {
  if (!started_) return Status::OK();
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    return Status::OK();  // second (sequential) call: already shut down
  }
  draining_ = true;
  obs::PostEvent("server.drain",
                 {{"live", std::to_string(sessions_.live())}});
  // Wake the accept loop out of its poll and refuse new connections.
  if (listener_ != nullptr) listener_->ShutdownBoth();
  // Let in-flight statements finish streaming: handlers notice
  // draining_ between read polls (≤250ms) and unwind after their
  // current statement completes.
  auto deadline = steady_clock::now() + drain_timeout;
  while (steady_clock::now() < deadline &&
         (active_connections_.load() > 0 || !accept_done_.load())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (active_connections_.load() > 0) {
    // Stragglers: cancel their statements and half-close their sockets;
    // the handlers' next read/write fails and they unwind.
    sessions_.CancelAll();
    sessions_.ForceCloseAll();
  }
  pool_.reset();  // joins the accept loop and every handler
  if (listener_ != nullptr) listener_->Close();
  observatory_->system_tables().set_extra(nullptr);
  obs::PostEvent("server.stop",
                 {{"sessions_served",
                   std::to_string(sessions_.opened_total())}});
  // The SIGTERM contract: a durable observatory leaves a fresh
  // checkpoint behind so restart recovery has no WAL tail to replay.
  if (observatory_->durable()) {
    TELEIOS_RETURN_IF_ERROR(observatory_->Checkpoint());
  }
  return Status::OK();
}

}  // namespace teleios::server
