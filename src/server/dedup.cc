#include "server/dedup.h"

#include <utility>

#include "obs/metrics.h"

namespace teleios::server {

DedupRegistry::DedupRegistry(size_t max_clients, size_t window,
                             size_t max_result_bytes)
    : max_clients_(max_clients == 0 ? 1 : max_clients),
      window_(window == 0 ? 1 : window),
      max_result_bytes_(max_result_bytes) {}

DedupRegistry::Claim DedupRegistry::Begin(uint64_t client_id,
                                          uint64_t request_id) {
  Claim claim;
  {
    MutexLock lock(mu_);
    auto it = clients_.find(client_id);
    if (it == clients_.end()) {
      if (clients_.size() >= max_clients_) EvictColdestClient();
      it = clients_.emplace(client_id, ClientWindow{}).first;
    }
    ClientWindow& window = it->second;
    window.last_used_seq = ++use_seq_;
    auto entry_it = window.entries.find(request_id);
    if (entry_it == window.entries.end()) {
      window.entries.emplace(request_id, Entry{});
      claim.kind = Claim::kFresh;
    } else if (entry_it->second.done) {
      ++hits_;
      claim.kind = Claim::kDone;
      claim.status = entry_it->second.status;
      claim.result = entry_it->second.result;
    } else {
      // Still executing on another connection (the retry raced the
      // original). The client backs off and retries; by then the
      // original has completed and the entry replays.
      ++in_flight_hits_;
      claim.kind = Claim::kInFlight;
      claim.status = Status::Unavailable(
          "request " + std::to_string(request_id) +
          " is still in flight; retry shortly");
    }
  }
  if (claim.kind == Claim::kDone) {
    obs::Count("teleios_server_dedup_hits_total");
  } else if (claim.kind == Claim::kInFlight) {
    obs::Count("teleios_server_dedup_inflight_total");
  }
  return claim;
}

void DedupRegistry::Complete(uint64_t client_id, uint64_t request_id,
                             const Status& status,
                             std::shared_ptr<const storage::Table> result) {
  MutexLock lock(mu_);
  auto it = clients_.find(client_id);
  if (it == clients_.end()) return;  // window evicted mid-statement
  auto entry_it = it->second.entries.find(request_id);
  if (entry_it == it->second.entries.end()) return;
  if (result != nullptr && result->MemoryUsage() > max_result_bytes_) {
    // Too big to pin in the window: forget the request instead of
    // holding a giant table. A duplicate re-executes — acceptable only
    // because oversized results mean a misclassified read, and reads
    // are safe to repeat.
    ++oversize_;
    it->second.entries.erase(entry_it);
    return;
  }
  entry_it->second.done = true;
  entry_it->second.status = status;
  entry_it->second.result = std::move(result);
  it->second.completed.push_back(request_id);
  EvictIfNeeded(&it->second);
}

void DedupRegistry::Abandon(uint64_t client_id, uint64_t request_id) {
  MutexLock lock(mu_);
  auto it = clients_.find(client_id);
  if (it == clients_.end()) return;
  auto entry_it = it->second.entries.find(request_id);
  if (entry_it != it->second.entries.end() && !entry_it->second.done) {
    it->second.entries.erase(entry_it);
  }
}

void DedupRegistry::EvictIfNeeded(ClientWindow* window) {
  while (window->completed.size() > window_) {
    uint64_t oldest = window->completed.front();
    window->completed.pop_front();
    window->entries.erase(oldest);
    ++evicted_;
  }
}

void DedupRegistry::EvictColdestClient() {
  auto coldest = clients_.end();
  for (auto it = clients_.begin(); it != clients_.end(); ++it) {
    if (coldest == clients_.end() ||
        it->second.last_used_seq < coldest->second.last_used_seq) {
      coldest = it;
    }
  }
  if (coldest != clients_.end()) {
    evicted_ += coldest->second.entries.size();
    clients_.erase(coldest);
  }
}

DedupStats DedupRegistry::stats() const {
  MutexLock lock(mu_);
  DedupStats stats;
  stats.hits = hits_;
  stats.in_flight = in_flight_hits_;
  stats.evicted = evicted_;
  stats.oversize = oversize_;
  stats.clients = clients_.size();
  for (const auto& [id, window] : clients_) {
    stats.entries += window.entries.size();
  }
  return stats;
}

}  // namespace teleios::server
