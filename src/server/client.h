#ifndef TELEIOS_SERVER_CLIENT_H_
#define TELEIOS_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "server/protocol.h"
#include "server/transport.h"
#include "storage/table.h"

namespace teleios::server {

struct ClientOptions {
  /// Sent in HELLO; must match the server's TELEIOS_AUTH_TOKEN.
  std::string auth_token;
  /// Default per-statement deadline the server arms when a QUERY carries
  /// none; 0 = no deadline.
  uint64_t default_deadline_millis = 0;
  /// Stable client identity sent in HELLO when nonzero: the key of the
  /// server's idempotent-retry dedup window. ResilientClient fills this
  /// in and keeps it fixed across reconnects.
  uint64_t client_id = 0;
};

/// Blocking client for the TELEIOS binary wire protocol (protocol.h):
/// the library behind teleios_cli, bench_server, and the server tests.
/// One Client is one connection/session; it is movable, not copyable,
/// and NOT thread-safe — concurrency means one Client per thread, which
/// is exactly the server-side session model anyway.
class Client {
 public:
  /// Connects (through the process transport — see transport.h), sends
  /// the magic preamble + HELLO, and consumes WELCOME. Errors surface
  /// the server's refusal (bad auth, version skew) or the socket
  /// failure.
  static Result<Client> Connect(const std::string& host, int port,
                                const ClientOptions& options = {});

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Session identity from WELCOME. The cancel key authorizes Cancel()
  /// for this session from any connection.
  uint64_t session_id() const { return session_id_; }
  uint64_t cancel_key() const { return cancel_key_; }

  /// Runs one statement and reassembles the streamed result. Engine
  /// errors come back as the error Status the server framed; the
  /// connection stays usable afterwards. A nonzero `request_id` tags
  /// the statement for the server's idempotent-retry window (requires a
  /// nonzero client_id in HELLO).
  Result<storage::Table> Query(Lang lang, const std::string& statement,
                               uint64_t deadline_millis = 0,
                               uint64_t request_id = 0);

  /// Split halves of Query() for pipelining: issue several SendQuery()s
  /// back to back, then drain the results in order with ReadResult().
  Status SendQuery(Lang lang, const std::string& statement,
                   uint64_t deadline_millis = 0, uint64_t request_id = 0);
  Result<storage::Table> ReadResult();

  /// Prepared statements: server-side (lang, text) replayed by Execute
  /// with positional `?` parameters.
  Result<uint32_t> Prepare(Lang lang, const std::string& statement);
  Result<storage::Table> Execute(uint32_t stmt_id,
                                 const std::vector<Value>& params,
                                 uint64_t deadline_millis = 0,
                                 uint64_t request_id = 0);
  Status CloseStmt(uint32_t stmt_id);

  /// Cancels `session_id`'s in-flight statement (usually another
  /// connection's — cancelling your own requires a second connection,
  /// since this one is blocked streaming). Requires that session's key.
  Status Cancel(uint64_t session_id, uint64_t cancel_key);

  /// The lease heartbeat: round-trips a PING and checks the echoed
  /// payload. A healthy idle connection answers within the server's
  /// write timeout.
  Status Ping();

  /// Polite close (GOODBYE); the destructor just drops the connection,
  /// which the server handles identically.
  Status Goodbye();

  /// Rows/chunks reported by the most recent DONE frame.
  uint64_t last_total_rows() const { return last_total_rows_; }
  uint64_t last_chunks() const { return last_chunks_; }

  // --- low-level access (tests: malformed-frame fuzzing) -------------------

  /// Writes raw bytes on the connection, bypassing framing.
  Status SendRaw(std::string_view bytes) { return conn_->WriteAll(bytes); }
  /// Reads one frame off the wire.
  Result<Frame> ReadFrame();
  /// Sends one well-formed frame.
  Status SendFrame(Opcode opcode, std::string_view payload);

  Connection& connection() { return *conn_; }

 private:
  Client() = default;

  /// Waits for kDone/kError after a control request (CANCEL/CLOSE_STMT).
  Status ReadAck();

  std::unique_ptr<Connection> conn_;
  uint64_t session_id_ = 0;
  uint64_t cancel_key_ = 0;
  uint64_t default_deadline_millis_ = 0;
  uint64_t last_total_rows_ = 0;
  uint64_t last_chunks_ = 0;
  uint64_t ping_seq_ = 0;
};

}  // namespace teleios::server

#endif  // TELEIOS_SERVER_CLIENT_H_
