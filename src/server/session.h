#ifndef TELEIOS_SERVER_SESSION_H_
#define TELEIOS_SERVER_SESSION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/cancellation.h"
#include "governor/memory_budget.h"
#include "relational/virtual_tables.h"
#include "server/protocol.h"
#include "server/transport.h"
#include "storage/table.h"

namespace teleios::server {

/// One statement PREPAREd on a session, replayed by EXECUTE with bound
/// parameters.
struct PreparedStatement {
  Lang lang = Lang::kSql;
  std::string text;
};

/// Point-in-time reading of one session (`sys.sessions`).
struct SessionStats {
  uint64_t id = 0;
  std::string peer;
  std::string protocol;  // "binary" | "http"
  std::string state;     // handshake / idle / executing / streaming / draining
  uint64_t queries_run = 0;
  uint64_t bytes_streamed = 0;
  uint64_t prepared_statements = 0;
  int64_t open_unix_millis = 0;
  /// Lease bookkeeping: last frame/request seen (registry clock).
  int64_t last_activity_unix_millis = 0;
  /// Stable client identity from HELLO (0 for v1 / HTTP clients).
  uint64_t client_id = 0;
};

/// Per-connection server state: identity (id + cancel key), the
/// connection-lifetime cancellation token every statement chains to, a
/// per-session MemoryBudget child of the process root (statement
/// budgets chain under it through the facade's CurrentBudget
/// propagation), the prepared-statement table, and streaming counters.
///
/// Created by SessionRegistry::Open, destroyed by Close; the handler
/// thread owns the socket, but registers it here so a draining server
/// can force-close connections that outlive the drain window.
class Session {
 public:
  Session(uint64_t id, uint64_t cancel_key, std::string peer,
          std::string protocol, size_t budget_bytes);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return id_; }
  uint64_t cancel_key() const { return cancel_key_; }
  const std::string& peer() const { return peer_; }

  /// The connection-lifetime token: cancelled when the socket drops or
  /// the server force-drains, which reaches the running statement too
  /// (statement tokens link to it).
  CancellationToken* connection_token() { return &connection_token_; }

  /// The session's budget; the handler installs it thread-locally while
  /// serving, so per-query children chain process -> session -> query.
  governor::MemoryBudget* budget() { return &budget_; }

  /// Starts a statement: a fresh token chained to the connection token,
  /// with `deadline_millis` armed when nonzero. The token is retained so
  /// a CANCEL frame (from any connection holding the cancel key) can
  /// reach it; EndStatement drops it.
  std::shared_ptr<CancellationToken> BeginStatement(
      uint64_t deadline_millis);
  void EndStatement();

  /// Cancels the in-flight statement, if any; true when one was hit.
  bool CancelActiveStatement();

  /// Prepared-statement table.
  uint32_t AddPrepared(PreparedStatement stmt);
  Result<PreparedStatement> GetPrepared(uint32_t stmt_id) const;
  Status ClosePrepared(uint32_t stmt_id);

  /// Lifecycle / accounting, all thread-safe.
  void set_state(const std::string& state);
  std::string state() const;
  void AddQuery() { ++queries_run_; }
  void AddBytesStreamed(uint64_t n);
  uint64_t bytes_streamed() const;

  /// Lease bookkeeping: the handler touches the session on every frame
  /// read, HTTP request, and heartbeat; the reaper compares against the
  /// registry clock.
  void Touch(int64_t now_millis);
  int64_t last_activity_millis() const;

  /// Stable client identity from HELLO (idempotent-retry dedup key).
  void set_client_id(uint64_t id);
  uint64_t client_id() const;

  /// Lets the drain path and the lease reaper half-close this
  /// connection from another thread. The handler must ClearConnection()
  /// before the Connection dies.
  void RegisterConnection(Connection* conn);
  void ClearConnection();
  void ForceClose();

  SessionStats Stats() const;

 private:
  const uint64_t id_;
  const uint64_t cancel_key_;
  const std::string peer_;
  const std::string protocol_;
  const int64_t open_unix_millis_;
  CancellationToken connection_token_;
  governor::MemoryBudget budget_;

  mutable Mutex mu_;
  std::string state_ TELEIOS_GUARDED_BY(mu_) = "handshake";
  std::shared_ptr<CancellationToken> active_statement_
      TELEIOS_GUARDED_BY(mu_);
  std::map<uint32_t, PreparedStatement> prepared_ TELEIOS_GUARDED_BY(mu_);
  uint32_t next_stmt_id_ TELEIOS_GUARDED_BY(mu_) = 1;
  Connection* conn_ TELEIOS_GUARDED_BY(mu_) = nullptr;
  uint64_t queries_run_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t bytes_streamed_ TELEIOS_GUARDED_BY(mu_) = 0;
  int64_t last_activity_millis_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t client_id_ TELEIOS_GUARDED_BY(mu_) = 0;
};

/// The server's live-session ledger, doubling as the `sys.sessions`
/// virtual-table provider: the server plugs it into the observatory's
/// SystemTables so `SELECT * FROM sys.sessions` works from any
/// connection (including the one asking).
///
/// Open/Close post session.open / session.close events and keep the
/// teleios_server_sessions gauge and session counters current — the
/// acceptance invariant "killing a socket leaks nothing" is checked
/// against live() == 0 and the process budget returning to zero.
class SessionRegistry : public relational::VirtualTableProvider {
 public:
  /// Injectable wall clock (unix millis) so lease-expiry tests advance
  /// time instead of sleeping — the CircuitBreaker clock idiom.
  using Clock = std::function<int64_t()>;

  SessionRegistry();

  SessionRegistry(const SessionRegistry&) = delete;
  SessionRegistry& operator=(const SessionRegistry&) = delete;

  std::shared_ptr<Session> Open(const std::string& peer,
                                const std::string& protocol,
                                size_t budget_bytes);
  void Close(const std::shared_ptr<Session>& session);

  void SetClockForTest(Clock clock);
  /// Now, per the (possibly test-injected) registry clock.
  int64_t NowMillis() const;

  /// Lease enforcement: force-closes every session idle (or stuck in
  /// handshake) longer than `lease_millis`, posting a
  /// server.lease_expired event and counting
  /// teleios_server_lease_expired_total per reaped session. Sessions
  /// executing or streaming are spared — a slow statement is the
  /// write-timeout's problem, not the lease's. Returns the number
  /// reaped (their handlers unwind and Close() as usual).
  size_t ReapExpired(int64_t lease_millis);

  /// CANCEL frame entry point: cancels `session_id`'s active statement
  /// when `cancel_key` matches. NotFound for a dead session,
  /// InvalidArgument (and a counted metric) for a bad key.
  Status CancelStatement(uint64_t session_id, uint64_t cancel_key);

  /// Drain support: cancel every connection token (statements unwind at
  /// their next poll) and/or half-close every registered socket.
  void CancelAll();
  void ForceCloseAll();

  size_t live() const;
  uint64_t opened_total() const;
  std::vector<SessionStats> Snapshot() const;

  // --- VirtualTableProvider ("sys.sessions") -------------------------------
  bool Serves(const std::string& name) const override;
  std::vector<std::string> TableNames() const override;
  Result<storage::TablePtr> Materialize(const std::string& name) override;

 private:
  mutable Mutex mu_;
  uint64_t next_id_ TELEIOS_GUARDED_BY(mu_) = 1;
  uint64_t opened_ TELEIOS_GUARDED_BY(mu_) = 0;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_
      TELEIOS_GUARDED_BY(mu_);
  Clock clock_ TELEIOS_GUARDED_BY(mu_);
};

}  // namespace teleios::server

#endif  // TELEIOS_SERVER_SESSION_H_
