#include "server/protocol.h"

#include <algorithm>
#include <cctype>

#include "common/crc32c.h"
#include "common/strings.h"

namespace teleios::server {

namespace {

using storage::ColumnType;

/// Value wire tags; fixed forever (wire compatibility).
enum ValueTag : uint8_t {
  kTagNull = 0,
  kTagBool = 1,
  kTagInt64 = 2,
  kTagFloat64 = 3,
  kTagString = 4,
};

bool ReadU8(io::ByteReader* reader, uint8_t* v) {
  return reader->ReadBytes(v, 1);
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

Result<ColumnType> ColumnTypeFromWire(uint8_t v) {
  switch (v) {
    case 0:
      return ColumnType::kBool;
    case 1:
      return ColumnType::kInt64;
    case 2:
      return ColumnType::kFloat64;
    case 3:
      return ColumnType::kString;
    default:
      return Status::DataLoss("unknown wire column type " +
                              std::to_string(v));
  }
}

uint8_t ColumnTypeToWire(ColumnType t) {
  switch (t) {
    case ColumnType::kBool:
      return 0;
    case ColumnType::kInt64:
      return 1;
    case ColumnType::kFloat64:
      return 2;
    case ColumnType::kString:
      return 3;
  }
  return 255;  // unreachable
}

/// Renders `v` as a SQL literal for parameter binding.
std::string SqlLiteral(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return v.AsBool() ? "TRUE" : "FALSE";
    case ValueType::kInt64:
      return std::to_string(v.AsInt64());
    case ValueType::kFloat64:
      return StrFormat("%.17g", v.AsFloat64());
    case ValueType::kString: {
      std::string out = "'";
      for (char c : v.AsString()) {
        out += c;
        if (c == '\'') out += '\'';  // SQL doubles embedded quotes
      }
      out += '\'';
      return out;
    }
  }
  return "NULL";  // unreachable
}

}  // namespace

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kHello:
      return "HELLO";
    case Opcode::kQuery:
      return "QUERY";
    case Opcode::kPrepare:
      return "PREPARE";
    case Opcode::kExecute:
      return "EXECUTE";
    case Opcode::kCancel:
      return "CANCEL";
    case Opcode::kCloseStmt:
      return "CLOSE_STMT";
    case Opcode::kGoodbye:
      return "GOODBYE";
    case Opcode::kPing:
      return "PING";
    case Opcode::kWelcome:
      return "WELCOME";
    case Opcode::kError:
      return "ERROR";
    case Opcode::kSchema:
      return "SCHEMA";
    case Opcode::kRows:
      return "ROWS";
    case Opcode::kDone:
      return "DONE";
    case Opcode::kStmtReady:
      return "STMT_READY";
    case Opcode::kPong:
      return "PONG";
  }
  return "UNKNOWN";
}

const char* LangName(Lang lang) {
  switch (lang) {
    case Lang::kSql:
      return "sql";
    case Lang::kSciQl:
      return "sciql";
    case Lang::kStSparql:
      return "stsparql";
  }
  return "unknown";
}

Result<Lang> ParseLang(std::string_view name) {
  std::string lower = StrLower(name);
  if (lower == "sql") return Lang::kSql;
  if (lower == "sciql") return Lang::kSciQl;
  if (lower == "stsparql" || lower == "sparql") return Lang::kStSparql;
  return Status::InvalidArgument("unknown query language '" +
                                 std::string(name) +
                                 "' (sql, sciql, stsparql)");
}

void AppendFrame(std::string* out, Opcode opcode, std::string_view payload) {
  std::string body;
  body.reserve(1 + payload.size());
  PutU8(&body, static_cast<uint8_t>(opcode));
  body.append(payload.data(), payload.size());
  io::PutU32(out, static_cast<uint32_t>(body.size()));
  io::PutU32(out, Crc32c(body.data(), body.size()));
  out->append(body);
}

Result<uint32_t> DecodeFrameLength(std::string_view header, uint32_t* crc) {
  io::ByteReader reader(header);
  uint32_t length = 0;
  if (!reader.ReadU32(&length) || !reader.ReadU32(crc)) {
    return Status::DataLoss("truncated frame header");
  }
  if (length == 0) {
    return Status::DataLoss("frame with zero-length body");
  }
  if (length > kMaxFrameBytes) {
    return Status::DataLoss("frame length " + std::to_string(length) +
                            " exceeds the " +
                            std::to_string(kMaxFrameBytes) + "-byte bound");
  }
  return length;
}

Result<Frame> DecodeFrameBody(std::string_view body, uint32_t crc) {
  if (body.empty()) return Status::DataLoss("empty frame body");
  uint32_t actual = Crc32c(body.data(), body.size());
  if (actual != crc) {
    return Status::DataLoss("frame CRC mismatch (corrupt or torn frame)");
  }
  Frame frame;
  frame.opcode = static_cast<Opcode>(static_cast<uint8_t>(body[0]));
  frame.payload.assign(body.data() + 1, body.size() - 1);
  return frame;
}

void AppendValue(std::string* out, const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      PutU8(out, kTagNull);
      return;
    case ValueType::kBool:
      PutU8(out, kTagBool);
      PutU8(out, value.AsBool() ? 1 : 0);
      return;
    case ValueType::kInt64:
      PutU8(out, kTagInt64);
      io::PutI64(out, value.AsInt64());
      return;
    case ValueType::kFloat64:
      PutU8(out, kTagFloat64);
      io::PutF64(out, value.AsFloat64());
      return;
    case ValueType::kString:
      PutU8(out, kTagString);
      io::PutStr(out, value.AsString());
      return;
  }
}

Result<Value> ReadValue(io::ByteReader* reader) {
  uint8_t tag = 0;
  if (!ReadU8(reader, &tag)) return Status::DataLoss("truncated value tag");
  switch (tag) {
    case kTagNull:
      return Value();
    case kTagBool: {
      uint8_t b = 0;
      if (!ReadU8(reader, &b)) return Status::DataLoss("truncated bool");
      return Value(b != 0);
    }
    case kTagInt64: {
      int64_t v = 0;
      if (!reader->ReadI64(&v)) return Status::DataLoss("truncated int64");
      return Value(v);
    }
    case kTagFloat64: {
      double v = 0;
      if (!reader->ReadF64(&v)) return Status::DataLoss("truncated float64");
      return Value(v);
    }
    case kTagString: {
      std::string s;
      if (!reader->ReadStr(&s)) return Status::DataLoss("truncated string");
      return Value(std::move(s));
    }
    default:
      return Status::DataLoss("unknown value tag " + std::to_string(tag));
  }
}

std::string EncodeSchema(const storage::Table& table) {
  std::string out;
  io::PutU32(&out, static_cast<uint32_t>(table.schema().num_fields()));
  for (const storage::Field& field : table.schema().fields()) {
    io::PutStr(&out, field.name);
    PutU8(&out, ColumnTypeToWire(field.type));
  }
  return out;
}

Result<storage::Table> DecodeSchema(std::string_view payload) {
  io::ByteReader reader(payload);
  uint32_t ncols = 0;
  if (!reader.ReadU32(&ncols)) return Status::DataLoss("truncated schema");
  // One name length prefix + one type byte is the minimum per column;
  // reject counts the payload cannot possibly hold.
  if (ncols > payload.size()) {
    return Status::DataLoss("schema column count exceeds payload");
  }
  std::vector<storage::Field> fields;
  fields.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    storage::Field field;
    uint8_t wire_type = 0;
    if (!reader.ReadStr(&field.name) || !ReadU8(&reader, &wire_type)) {
      return Status::DataLoss("truncated schema column " + std::to_string(i));
    }
    TELEIOS_ASSIGN_OR_RETURN(field.type, ColumnTypeFromWire(wire_type));
    fields.push_back(std::move(field));
  }
  return storage::Table(storage::Schema(std::move(fields)));
}

std::string EncodeRowChunk(const storage::Table& table, size_t begin,
                           size_t end) {
  end = std::min(end, table.num_rows());
  begin = std::min(begin, end);
  std::string out;
  io::PutU32(&out, static_cast<uint32_t>(end - begin));
  for (size_t r = begin; r < end; ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      AppendValue(&out, table.Get(r, c));
    }
  }
  return out;
}

Status DecodeRowChunk(std::string_view payload, storage::Table* table) {
  io::ByteReader reader(payload);
  uint32_t nrows = 0;
  if (!reader.ReadU32(&nrows)) return Status::DataLoss("truncated row chunk");
  size_t ncols = table->num_columns();
  // A row is at least one tag byte per column; bound the declared count
  // by what the payload could hold before appending anything.
  if (ncols > 0 && nrows > payload.size()) {
    return Status::DataLoss("row count exceeds chunk payload");
  }
  std::vector<Value> row(ncols);
  for (uint32_t r = 0; r < nrows; ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      TELEIOS_ASSIGN_OR_RETURN(row[c], ReadValue(&reader));
    }
    Status appended = table->AppendRow(row);
    if (!appended.ok()) {
      return Status::DataLoss("row chunk type mismatch: " +
                              appended.message());
    }
  }
  if (!reader.exhausted()) {
    return Status::DataLoss("trailing bytes after row chunk");
  }
  return Status::OK();
}

std::string EncodeTable(const storage::Table& table, size_t chunk_rows) {
  if (chunk_rows == 0) chunk_rows = 1;
  std::string out = EncodeSchema(table);
  for (size_t begin = 0; begin < table.num_rows(); begin += chunk_rows) {
    out += EncodeRowChunk(table, begin, begin + chunk_rows);
  }
  return out;
}

std::string EncodeHello(uint32_t version, std::string_view auth_token,
                        uint64_t deadline_millis, uint64_t client_id) {
  std::string out;
  io::PutU32(&out, version);
  io::PutStr(&out, auth_token);
  io::PutU64(&out, deadline_millis);
  if (client_id != 0) io::PutU64(&out, client_id);
  return out;
}

std::string EncodeQuery(Lang lang, std::string_view statement,
                        uint64_t deadline_millis, uint64_t request_id) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(lang));
  io::PutStr(&out, statement);
  io::PutU64(&out, deadline_millis);
  if (request_id != 0) io::PutU64(&out, request_id);
  return out;
}

std::string EncodePrepare(Lang lang, std::string_view statement) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(lang));
  io::PutStr(&out, statement);
  return out;
}

std::string EncodeExecute(uint32_t stmt_id, const std::vector<Value>& params,
                          uint64_t deadline_millis, uint64_t request_id) {
  std::string out;
  io::PutU32(&out, stmt_id);
  io::PutU32(&out, static_cast<uint32_t>(params.size()));
  for (const Value& p : params) AppendValue(&out, p);
  io::PutU64(&out, deadline_millis);
  if (request_id != 0) io::PutU64(&out, request_id);
  return out;
}

std::string EncodeCancel(uint64_t session_id, uint64_t cancel_key) {
  std::string out;
  io::PutU64(&out, session_id);
  io::PutU64(&out, cancel_key);
  return out;
}

std::string EncodeCloseStmt(uint32_t stmt_id) {
  std::string out;
  io::PutU32(&out, stmt_id);
  return out;
}

std::string EncodeWelcome(uint32_t version, uint64_t session_id,
                          uint64_t cancel_key) {
  std::string out;
  io::PutU32(&out, version);
  io::PutU64(&out, session_id);
  io::PutU64(&out, cancel_key);
  return out;
}

std::string EncodeError(const Status& status) {
  std::string out;
  io::PutU32(&out, static_cast<uint32_t>(status.code()));
  io::PutStr(&out, status.message());
  return out;
}

std::string EncodeDone(uint64_t total_rows, uint64_t chunks) {
  std::string out;
  io::PutU64(&out, total_rows);
  io::PutU64(&out, chunks);
  return out;
}

std::string EncodeStmtReady(uint32_t stmt_id) {
  std::string out;
  io::PutU32(&out, stmt_id);
  return out;
}

Status DecodeError(std::string_view payload) {
  io::ByteReader reader(payload);
  uint32_t code = 0;
  std::string message;
  if (!reader.ReadU32(&code) || !reader.ReadStr(&message)) {
    return Status::DataLoss("truncated ERROR frame");
  }
  if (code == 0 || code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return Status::Internal("server error with unknown code " +
                            std::to_string(code) + ": " + message);
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

bool IsMutatingStatement(Lang lang, std::string_view statement) {
  std::string_view head = StrTrim(statement);
  size_t end = 0;
  while (end < head.size() &&
         std::isalpha(static_cast<unsigned char>(head[end]))) {
    ++end;
  }
  std::string word = StrLower(head.substr(0, end));
  switch (lang) {
    case Lang::kSql:
    case Lang::kSciQl:
      return word == "insert" || word == "update" || word == "delete" ||
             word == "create" || word == "drop" || word == "alter" ||
             word == "truncate";
    case Lang::kStSparql:
      return word == "insert" || word == "delete";
  }
  return false;
}

Result<std::string> BindParameters(const std::string& text,
                                   const std::vector<Value>& params) {
  std::string out;
  out.reserve(text.size() + params.size() * 8);
  size_t next = 0;
  char quote = '\0';
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (quote != '\0') {
      out += c;
      if (c == quote) quote = '\0';
      continue;
    }
    if (c == '\'' || c == '"') {
      quote = c;
      out += c;
      continue;
    }
    if (c == '?') {
      if (next >= params.size()) {
        return Status::InvalidArgument(
            "statement has more '?' placeholders than the " +
            std::to_string(params.size()) + " bound parameters");
      }
      out += SqlLiteral(params[next++]);
      continue;
    }
    out += c;
  }
  if (next != params.size()) {
    return Status::InvalidArgument(
        std::to_string(params.size()) + " parameters bound but only " +
        std::to_string(next) + " '?' placeholders in the statement");
  }
  return out;
}

}  // namespace teleios::server
