#include "server/fault_transport.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.h"

namespace teleios::server {

namespace {

Status InjectedIoError(const char* what) {
  return Status::IoError(std::string("injected transport fault: ") + what);
}

}  // namespace

const char* TransportFaultKindName(TransportFaultKind kind) {
  switch (kind) {
    case TransportFaultKind::kIoError:
      return "io_error";
    case TransportFaultKind::kShortWrite:
      return "short_write";
    case TransportFaultKind::kShortRead:
      return "short_read";
    case TransportFaultKind::kDisconnect:
      return "disconnect";
    case TransportFaultKind::kConnectRefused:
      return "connect_refused";
    case TransportFaultKind::kStall:
      return "stall";
  }
  return "unknown";
}

/// One faulty byte stream: consults the owning transport's fault
/// program before every counted op, and tracks its own byte total for
/// drop_after_bytes. Not thread-safe beyond what Connection promises
/// (ShutdownBoth/Close may race a parked read; the byte counter is only
/// touched by the I/O thread).
class FaultyConnection : public Connection {
 public:
  FaultyConnection(FaultInjectingTransport* owner,
                   std::unique_ptr<Connection> base)
      : owner_(owner), base_(std::move(base)) {}

  Status ReadExact(void* dst, size_t n, int poll_millis,
                   bool (*keep_going)(void*), void* arg) override {
    if (DropNow()) {
      return Status::Unavailable(
          "injected transport fault: connection closed by peer");
    }
    using Action = FaultInjectingTransport::FaultAction;
    switch (owner_->NextOp(FaultInjectingTransport::OpClass::kRead)) {
      case Action::kNone:
        break;
      case Action::kStall:
        Stall();
        break;
      case Action::kShortRead: {
        // Deliver the first half of the message, then the wire dies —
        // the caller sees a torn frame (kDataLoss), or a clean close
        // when nothing at all had arrived.
        size_t half = n / 2;
        if (half > 0) {
          Status st = base_->ReadExact(dst, half, poll_millis, keep_going,
                                       arg);
          if (!st.ok()) {
            base_->ShutdownBoth();
            return st;
          }
        }
        base_->ShutdownBoth();
        if (half == 0) {
          return Status::Unavailable(
              "injected transport fault: connection closed by peer");
        }
        return Status::DataLoss(
            "injected transport fault: connection closed mid-message (" +
            std::to_string(half) + "/" + std::to_string(n) + " bytes)");
      }
      case Action::kDisconnect:
        base_->ShutdownBoth();
        return Status::Unavailable(
            "injected transport fault: connection closed by peer");
      default:
        base_->ShutdownBoth();
        return InjectedIoError("read failed, connection reset");
    }
    Status st = base_->ReadExact(dst, n, poll_millis, keep_going, arg);
    if (st.ok()) bytes_ += n;
    return st;
  }

  Result<size_t> ReadSome(void* dst, size_t n, int timeout_millis) override {
    if (DropNow()) return {static_cast<size_t>(0)};  // clean EOF shape
    using Action = FaultInjectingTransport::FaultAction;
    switch (owner_->NextOp(FaultInjectingTransport::OpClass::kRead)) {
      case Action::kNone:
        break;
      case Action::kStall:
        Stall();
        break;
      case Action::kShortRead:
      case Action::kDisconnect:
        base_->ShutdownBoth();
        return {static_cast<size_t>(0)};
      default:
        base_->ShutdownBoth();
        return InjectedIoError("read failed, connection reset");
    }
    Result<size_t> r = base_->ReadSome(dst, n, timeout_millis);
    if (r.ok()) bytes_ += r.value();
    return r;
  }

  Status WriteAll(std::string_view data, int timeout_millis) override {
    if (DropNow()) {
      return Status::IoError(
          "injected transport fault: peer closed the connection mid-write");
    }
    using Action = FaultInjectingTransport::FaultAction;
    switch (owner_->NextOp(FaultInjectingTransport::OpClass::kWrite)) {
      case Action::kNone:
        break;
      case Action::kStall:
        Stall();
        break;
      case Action::kShortWrite: {
        // Half the bytes reach the peer, then the wire dies — the peer
        // sees a mid-frame disconnect, we see the write fail.
        Status st =
            base_->WriteAll(data.substr(0, data.size() / 2), timeout_millis);
        (void)st;
        base_->ShutdownBoth();
        return InjectedIoError("write torn mid-frame, connection reset");
      }
      case Action::kDisconnect:
        base_->ShutdownBoth();
        return Status::IoError(
            "injected transport fault: peer closed the connection mid-write");
      default:
        base_->ShutdownBoth();
        return InjectedIoError("write failed, connection reset");
    }
    Status st = base_->WriteAll(data, timeout_millis);
    if (st.ok()) bytes_ += data.size();
    return st;
  }

  void ShutdownBoth() override { base_->ShutdownBoth(); }
  void Close() override { base_->Close(); }
  bool valid() const override { return base_->valid(); }
  const std::string& peer() const override { return base_->peer(); }

 private:
  /// drop_after_bytes: the first op after the byte bound is crossed
  /// finds the connection dead.
  bool DropNow() {
    if (!owner_->ShouldDropAfterBytes(bytes_)) return false;
    if (!dropped_) {
      dropped_ = true;
      owner_->CountFault("drop_after_bytes");
      base_->ShutdownBoth();
    }
    return true;
  }

  void Stall() {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(owner_->stall_millis()));
  }

  FaultInjectingTransport* owner_;
  std::unique_ptr<Connection> base_;
  uint64_t bytes_ = 0;
  bool dropped_ = false;
};

class FaultyListener : public Listener {
 public:
  FaultyListener(FaultInjectingTransport* owner,
                 std::unique_ptr<Listener> base)
      : owner_(owner), base_(std::move(base)) {}

  Result<std::unique_ptr<Connection>> AcceptWithTimeout(
      int timeout_millis) override {
    // Only successful accepts count: poll timeouts happen a
    // scheduling-dependent number of times and must not perturb the op
    // index.
    Result<std::unique_ptr<Connection>> accepted =
        base_->AcceptWithTimeout(timeout_millis);
    if (!accepted.ok()) return accepted;
    using Action = FaultInjectingTransport::FaultAction;
    switch (owner_->NextOp(FaultInjectingTransport::OpClass::kAccept)) {
      case Action::kNone:
        break;
      case Action::kStall:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(owner_->stall_millis()));
        break;
      default:
        // Every failing kind degrades to a refusal here: the accept
        // loop treats kUnavailable as "try again", so an injected fault
        // never looks like the listener itself dying.
        accepted.value()->ShutdownBoth();
        return Status::Unavailable(
            "injected transport fault: connection refused at accept");
    }
    return {std::make_unique<FaultyConnection>(
        owner_, std::move(accepted).value())};
  }

  int bound_port() const override { return base_->bound_port(); }
  void ShutdownBoth() override { base_->ShutdownBoth(); }
  void Close() override { base_->Close(); }

 private:
  FaultInjectingTransport* owner_;
  std::unique_ptr<Listener> base_;
};

FaultInjectingTransport::FaultInjectingTransport(Transport* base)
    : base_(base) {
  if (base_ == nullptr) {
    // Always the *real* TCP transport, never GetTransport(): this
    // wrapper is usually installed AS the process default, and
    // resolving the base through the seam would recurse into itself.
    static TcpTransport* tcp = new TcpTransport();
    base_ = tcp;
  }
}

void FaultInjectingTransport::Arm(const TransportFaultSpec& spec) {
  MutexLock lock(mu_);
  spec_ = spec;
  armed_ = true;
  crashed_ = false;
  ops_ = 0;
  faults_ = 0;
}

void FaultInjectingTransport::Disarm() {
  MutexLock lock(mu_);
  armed_ = false;
  crashed_ = false;
}

Result<std::unique_ptr<Listener>> FaultInjectingTransport::Listen(
    int port, int backlog) {
  TELEIOS_ASSIGN_OR_RETURN(std::unique_ptr<Listener> listener,
                           base_->Listen(port, backlog));
  return {std::make_unique<FaultyListener>(this, std::move(listener))};
}

Result<std::unique_ptr<Connection>> FaultInjectingTransport::Connect(
    const std::string& host, int port) {
  switch (NextOp(OpClass::kConnect)) {
    case FaultAction::kNone:
      break;
    case FaultAction::kStall:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(stall_millis()));
      break;
    case FaultAction::kRefuse:
      return Status::Unavailable(
          "injected transport fault: connection refused");
    default:
      return InjectedIoError("connect failed");
  }
  TELEIOS_ASSIGN_OR_RETURN(std::unique_ptr<Connection> conn,
                           base_->Connect(host, port));
  return {std::make_unique<FaultyConnection>(this, std::move(conn))};
}

FaultInjectingTransport::FaultAction FaultInjectingTransport::NextOp(
    OpClass op) {
  FaultAction action = FaultAction::kNone;
  const char* fired_kind = nullptr;
  {
    MutexLock lock(mu_);
    ++ops_;
    if (armed_) {
      if (crashed_) {
        // Everything after the crash point fails; accepts and connects
        // stay merely "unavailable" so loops keep polling.
        action = (op == OpClass::kAccept || op == OpClass::kConnect)
                     ? FaultAction::kRefuse
                     : FaultAction::kFail;
      } else if (spec_.inject_at > 0 && ops_ >= spec_.inject_at &&
                 (ops_ == spec_.inject_at ||
                  (spec_.every_n > 0 &&
                   (ops_ - spec_.inject_at) % spec_.every_n == 0))) {
        ++faults_;
        fired_kind = TransportFaultKindName(spec_.kind);
        if (spec_.crash) crashed_ = true;
        switch (spec_.kind) {
          case TransportFaultKind::kIoError:
            action = FaultAction::kFail;
            break;
          case TransportFaultKind::kShortWrite:
            action = op == OpClass::kWrite ? FaultAction::kShortWrite
                                           : FaultAction::kFail;
            break;
          case TransportFaultKind::kShortRead:
            action = op == OpClass::kRead ? FaultAction::kShortRead
                                          : FaultAction::kFail;
            break;
          case TransportFaultKind::kDisconnect:
            action = FaultAction::kDisconnect;
            break;
          case TransportFaultKind::kConnectRefused:
            action = op == OpClass::kConnect ? FaultAction::kRefuse
                                             : FaultAction::kFail;
            break;
          case TransportFaultKind::kStall:
            action = FaultAction::kStall;
            break;
        }
        // A connect/accept can only refuse or stall, whatever the kind:
        // there is no established stream to tear.
        if (op == OpClass::kConnect || op == OpClass::kAccept) {
          if (action != FaultAction::kStall) action = FaultAction::kRefuse;
        }
      }
    }
  }
  if (fired_kind != nullptr) {
    obs::Count(obs::WithLabel("teleios_transport_faults_injected_total",
                              "kind", fired_kind));
  }
  return action;
}

bool FaultInjectingTransport::ShouldDropAfterBytes(uint64_t total) {
  MutexLock lock(mu_);
  return armed_ && spec_.drop_after_bytes > 0 &&
         total >= spec_.drop_after_bytes;
}

void FaultInjectingTransport::CountFault(const char* kind) {
  {
    MutexLock lock(mu_);
    ++faults_;
  }
  obs::Count(
      obs::WithLabel("teleios_transport_faults_injected_total", "kind", kind));
}

}  // namespace teleios::server
