#ifndef TELEIOS_SERVER_PROTOCOL_H_
#define TELEIOS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "io/codec.h"
#include "storage/table.h"

namespace teleios::server {

/// The TELEIOS wire protocol: a length-prefixed, CRC-framed binary
/// protocol spoken between teleios_server and its clients (the C++
/// client library, teleios_cli, bench_server).
///
/// A connection opens with a 4-byte magic preamble (kMagic) so the
/// server can share one port with the HTTP/JSON facade — anything that
/// does not start with the magic is treated as an HTTP request. After
/// the preamble, every message in either direction is one frame:
///
///   u32 length   | body length in bytes (opcode byte included)
///   u32 crc      | CRC32C over the `length` body bytes that follow
///   u8  opcode   | Opcode below
///   ...payload   | length - 1 bytes, opcode-specific
///
/// All integers are little-endian (the codec in io/codec.h). `length`
/// is bounded by kMaxFrameBytes: an oversized prefix is a protocol
/// error, never an allocation — a hostile 4-GiB length cannot make the
/// server reserve 4 GiB.
///
/// Session lifecycle: the client's first frame must be HELLO (protocol
/// version + optional auth token + optional default deadline). The
/// server replies WELCOME carrying the session id and a cancel key, or
/// ERROR and closes. Then QUERY / PREPARE / EXECUTE / CANCEL /
/// CLOSE_STMT frames flow until GOODBYE or disconnect. Results stream
/// back as SCHEMA, zero or more ROWS chunks (bounded by the server's
/// chunk size and charged to the session budget while in flight), and a
/// final DONE — so a million-row result never materializes twice on the
/// server side and a slow reader backpressures the stream through the
/// socket send buffer instead of growing the heap.
/// Several client payloads end in optional version-2 trailing fields
/// (marked [v2] below): a v1 encoder simply stops earlier, and the
/// decoder reads the extra field only when bytes remain — both
/// directions interoperate across the version bump.
enum class Opcode : uint8_t {
  // client -> server
  kHello = 1,      // u32 version | str auth_token | u64 deadline_millis
                   //   | [v2] u64 client_id
  kQuery = 2,      // u8 lang | str statement | u64 deadline_millis
                   //   | [v2] u64 request_id
  kPrepare = 3,    // u8 lang | str statement
  kExecute = 4,    // u32 stmt_id | u32 nparams | params | u64 deadline_millis
                   //   | [v2] u64 request_id
  kCancel = 5,     // u64 session_id | u64 cancel_key
  kCloseStmt = 6,  // u32 stmt_id
  kGoodbye = 7,    // empty
  kPing = 8,       // opaque payload, echoed back — the lease heartbeat

  // server -> client
  kWelcome = 64,   // u32 version | u64 session_id | u64 cancel_key
  kError = 65,     // u32 status_code | str message
  kSchema = 66,    // u32 ncols | (str name, u8 column_type)*
  kRows = 67,      // u32 nrows | nrows * ncols tagged values
  kDone = 68,      // u64 total_rows | u64 chunks
  kStmtReady = 69, // u32 stmt_id
  kPong = 70,      // the PING payload, echoed
};

const char* OpcodeName(Opcode op);

/// Query languages multiplexed over one connection — the observatory's
/// three database-tier entry points.
enum class Lang : uint8_t {
  kSql = 1,
  kSciQl = 2,
  kStSparql = 3,
};

const char* LangName(Lang lang);
Result<Lang> ParseLang(std::string_view name);

/// Protocol version spoken by this build. A HELLO with a newer major
/// version is refused (kInvalidArgument), mirroring the forward-compat
/// guards on the on-disk formats. Version 2 added PING/PONG heartbeats
/// and the optional client_id / request_id trailing fields (idempotent
/// retry); v1 clients are still accepted.
inline constexpr uint32_t kProtocolVersion = 2;

/// Connection preamble distinguishing binary clients from HTTP ones.
inline constexpr char kMagic[4] = {'T', 'E', 'O', '1'};

/// Hard bound on one frame body; an incoming length above this is a
/// protocol error before any allocation happens. Row chunks are sized
/// by the server to stay far below it.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// One decoded frame: the opcode plus its raw payload bytes.
struct Frame {
  Opcode opcode = Opcode::kError;
  std::string payload;
};

/// Appends one encoded frame (header + CRC + body) to `out`.
void AppendFrame(std::string* out, Opcode opcode, std::string_view payload);

/// Parses the 8-byte frame header. Returns the body length (opcode +
/// payload) to read next and the CRC it must match; kDataLoss when the
/// length field is zero or exceeds kMaxFrameBytes.
Result<uint32_t> DecodeFrameLength(std::string_view header, uint32_t* crc);

/// Validates `body` (opcode byte + payload) against `crc` and splits it
/// into a Frame. kDataLoss on CRC mismatch or empty body.
Result<Frame> DecodeFrameBody(std::string_view body, uint32_t crc);

// --- tagged scalar values --------------------------------------------------

/// Appends one tagged Value (u8 type tag + payload).
void AppendValue(std::string* out, const Value& value);

/// Reads one tagged Value; kDataLoss on a bad tag or truncation.
Result<Value> ReadValue(io::ByteReader* reader);

// --- result tables ---------------------------------------------------------

/// SCHEMA payload for `table` (column names + types).
std::string EncodeSchema(const storage::Table& table);

/// Decodes a SCHEMA payload into an empty table with that schema.
Result<storage::Table> DecodeSchema(std::string_view payload);

/// ROWS payload holding rows [begin, end) of `table`, row-major tagged
/// values.
std::string EncodeRowChunk(const storage::Table& table, size_t begin,
                           size_t end);

/// Appends a ROWS payload onto `table` (whose schema came from
/// DecodeSchema). kDataLoss on truncation/type mismatch.
Status DecodeRowChunk(std::string_view payload, storage::Table* table);

/// Whole table as one SCHEMA payload + row payloads of `chunk_rows` —
/// the canonical byte image used by tests to prove streamed results are
/// byte-identical to in-process execution.
std::string EncodeTable(const storage::Table& table, size_t chunk_rows);

// --- message payload builders (client side) --------------------------------

/// `client_id` (v2) is the client's stable identity for the server's
/// idempotent-retry dedup window — it survives reconnects, unlike the
/// session id; 0 omits the field (v1 shape).
std::string EncodeHello(uint32_t version, std::string_view auth_token,
                        uint64_t deadline_millis, uint64_t client_id = 0);
/// `request_id` (v2) tags a mutating statement for exactly-once retry;
/// 0 omits the field (v1 shape / read-only statements).
std::string EncodeQuery(Lang lang, std::string_view statement,
                        uint64_t deadline_millis, uint64_t request_id = 0);
std::string EncodePrepare(Lang lang, std::string_view statement);
std::string EncodeExecute(uint32_t stmt_id, const std::vector<Value>& params,
                          uint64_t deadline_millis, uint64_t request_id = 0);
std::string EncodeCancel(uint64_t session_id, uint64_t cancel_key);
std::string EncodeCloseStmt(uint32_t stmt_id);
std::string EncodeWelcome(uint32_t version, uint64_t session_id,
                          uint64_t cancel_key);
std::string EncodeError(const Status& status);
std::string EncodeDone(uint64_t total_rows, uint64_t chunks);
std::string EncodeStmtReady(uint32_t stmt_id);

/// Decodes an ERROR payload back into the Status it carried (unknown
/// codes map to kInternal so a newer server cannot crash an old client).
Status DecodeError(std::string_view payload);

/// True when `statement` looks like it changes state — the client-side
/// classifier deciding which statements get a retry request id. First
/// keyword based: SQL/SciQL INSERT/UPDATE/DELETE/CREATE/DROP/ALTER,
/// stSPARQL INSERT/DELETE. Conservative in the safe direction:
/// misclassifying a read as mutating costs one dedup-window slot;
/// statements the parser rejects mutate nothing either way.
bool IsMutatingStatement(Lang lang, std::string_view statement);

/// Substitutes `?` placeholders (outside string literals) in a prepared
/// statement's text with SQL-literal renderings of `params`; errors when
/// the count does not match the placeholders.
Result<std::string> BindParameters(const std::string& text,
                                   const std::vector<Value>& params);

}  // namespace teleios::server

#endif  // TELEIOS_SERVER_PROTOCOL_H_
