#ifndef TELEIOS_SERVER_TRANSPORT_H_
#define TELEIOS_SERVER_TRANSPORT_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace teleios::server {

/// The swappable socket seam, mirroring the FileSystem seam in io/: all
/// server and client byte traffic flows through a process-default
/// Transport, so tests can interpose a FaultInjectingTransport and
/// subject the wire to the same deterministic kill-at-every-op sweeps
/// the storage layer gets from FaultInjectingFileSystem. The production
/// implementation (TcpTransport) delegates straight to the Socket RAII
/// wrapper — socket.cc remains the only raw-syscall file (TL006).
///
/// One established byte stream. Semantics match Socket exactly (the
/// contract every caller was written against):
///  - ReadExact: kUnavailable on clean EOF before any byte, kDataLoss on
///    EOF mid-read, kCancelled when keep_going says stop.
///  - ReadSome: 0 on clean EOF, kUnavailable on timeout.
///  - WriteAll: kIoError when the peer is gone; with timeout_millis > 0
///    a stalled peer (send buffer full for that long) fails
///    kDeadlineExceeded instead of blocking forever — the server's
///    defense against readers that stop reading.
class Connection {
 public:
  virtual ~Connection() = default;

  virtual Status ReadExact(void* dst, size_t n, int poll_millis = 250,
                           bool (*keep_going)(void*) = nullptr,
                           void* arg = nullptr) = 0;
  virtual Result<size_t> ReadSome(void* dst, size_t n,
                                  int timeout_millis) = 0;
  virtual Status WriteAll(std::string_view data, int timeout_millis = 0) = 0;

  /// Half-closes both directions; blocked peers see EOF. Idempotent and
  /// callable from another thread while a read is parked (the drain and
  /// reaper paths).
  virtual void ShutdownBoth() = 0;
  virtual void Close() = 0;

  virtual bool valid() const = 0;
  /// "ip:port" of the remote end.
  virtual const std::string& peer() const = 0;
};

/// One bound listen socket.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Waits up to `timeout_millis` for a connection; kUnavailable on
  /// timeout (the caller's cue to re-check its stop flag), kCancelled
  /// once the listener was shut down.
  virtual Result<std::unique_ptr<Connection>> AcceptWithTimeout(
      int timeout_millis) = 0;

  virtual int bound_port() const = 0;
  virtual void ShutdownBoth() = 0;
  virtual void Close() = 0;
};

/// Factory for the two endpoint roles.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual Result<std::unique_ptr<Listener>> Listen(int port,
                                                   int backlog) = 0;
  virtual Result<std::unique_ptr<Connection>> Connect(
      const std::string& host, int port) = 0;
};

/// Real TCP via the Socket wrapper in socket.h.
class TcpTransport : public Transport {
 public:
  Result<std::unique_ptr<Listener>> Listen(int port, int backlog) override;
  Result<std::unique_ptr<Connection>> Connect(const std::string& host,
                                              int port) override;
};

/// The process-default transport: TcpTransport unless overridden with
/// SetTransport. Never nullptr.
Transport* GetTransport();

/// Installs `transport` as the process-default (nullptr restores the
/// TCP singleton); returns the previous default. Not thread-safe —
/// intended for test harnesses, installed before any traffic starts.
Transport* SetTransport(Transport* transport);

/// RAII override of the process-default Transport.
class ScopedTransport {
 public:
  explicit ScopedTransport(Transport* transport)
      : prev_(SetTransport(transport)) {}
  ~ScopedTransport() { SetTransport(prev_); }
  ScopedTransport(const ScopedTransport&) = delete;
  ScopedTransport& operator=(const ScopedTransport&) = delete;

 private:
  Transport* prev_;
};

}  // namespace teleios::server

#endif  // TELEIOS_SERVER_TRANSPORT_H_
