#include "server/resilient_client.h"

#include <atomic>
#include <chrono>

#include "obs/metrics.h"

namespace teleios::server {

namespace {

/// splitmix64 — the session cancel-key mixer; here it spreads derived
/// client ids so two processes started the same nanosecond still get
/// distinct dedup windows.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t DeriveClientId() {
  static std::atomic<uint64_t> counter{0};
  uint64_t seed = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  uint64_t id = Mix(seed ^ Mix(++counter));
  return id != 0 ? id : 1;  // 0 means "no identity" on the wire
}

}  // namespace

ResilientClient::ResilientClient(std::string host, int port,
                                 ResilientClientOptions options)
    : host_(std::move(host)), port_(port), options_(std::move(options)) {
  client_id_ = options_.client.client_id != 0 ? options_.client.client_id
                                              : DeriveClientId();
}

Status ResilientClient::EnsureConnected() {
  if (client_.has_value()) return Status::OK();
  ClientOptions opts = options_.client;
  opts.client_id = client_id_;
  Result<Client> client = Client::Connect(host_, port_, opts);
  if (!client.ok()) return client.status();
  client_.emplace(std::move(client).value());
  ++epoch_;
  if (epoch_ > 1) {
    ++reconnects_;
    obs::Count("teleios_client_reconnects_total");
  }
  return Status::OK();
}

void ResilientClient::Disconnect() { client_.reset(); }

Result<storage::Table> ResilientClient::Query(Lang lang,
                                              const std::string& statement,
                                              uint64_t deadline_millis) {
  // One request id for all attempts of one logical statement: that is
  // the whole idempotency contract.
  const uint64_t request_id =
      IsMutatingStatement(lang, statement) ? ++next_request_id_ : 0;
  return RunWithRetry("server query", [&]() {
    return client_->Query(lang, statement, deadline_millis, request_id);
  });
}

Result<uint32_t> ResilientClient::RemoteStmtId(uint32_t local_id) {
  auto it = statements_.find(local_id);
  if (it == statements_.end()) {
    return Status::NotFound("no prepared statement with local id " +
                            std::to_string(local_id));
  }
  if (it->second.epoch == epoch_) return it->second.remote_id;
  TELEIOS_ASSIGN_OR_RETURN(uint32_t remote_id,
                           client_->Prepare(it->second.lang,
                                            it->second.text));
  it->second.remote_id = remote_id;
  it->second.epoch = epoch_;
  return remote_id;
}

Result<uint32_t> ResilientClient::Prepare(Lang lang,
                                          const std::string& statement) {
  uint32_t local_id = next_local_stmt_++;
  statements_[local_id] = LocalStatement{lang, statement, 0, 0};
  Status st = RunWithRetry("server prepare", [&]() -> Status {
    return RemoteStmtId(local_id).status();
  });
  if (!st.ok()) {
    statements_.erase(local_id);
    return st;
  }
  return local_id;
}

Result<storage::Table> ResilientClient::Execute(
    uint32_t stmt_id, const std::vector<Value>& params,
    uint64_t deadline_millis) {
  auto it = statements_.find(stmt_id);
  if (it == statements_.end()) {
    return Status::NotFound("no prepared statement with local id " +
                            std::to_string(stmt_id));
  }
  const uint64_t request_id =
      IsMutatingStatement(it->second.lang, it->second.text)
          ? ++next_request_id_
          : 0;
  return RunWithRetry("server execute", [&]() -> Result<storage::Table> {
    TELEIOS_ASSIGN_OR_RETURN(uint32_t remote_id, RemoteStmtId(stmt_id));
    return client_->Execute(remote_id, params, deadline_millis, request_id);
  });
}

Status ResilientClient::CloseStmt(uint32_t stmt_id) {
  auto it = statements_.find(stmt_id);
  if (it == statements_.end()) {
    return Status::NotFound("no prepared statement with local id " +
                            std::to_string(stmt_id));
  }
  // Best-effort remote close — only when the handle is live on the
  // current connection; a reconnected server never saw it.
  Status st = Status::OK();
  if (client_.has_value() && it->second.epoch == epoch_) {
    st = client_->CloseStmt(it->second.remote_id);
  }
  statements_.erase(it);
  return st;
}

Status ResilientClient::Ping() {
  return RunWithRetry("server ping", [&]() { return client_->Ping(); });
}

Status ResilientClient::Goodbye() {
  if (!client_.has_value()) return Status::OK();
  Status st = client_->Goodbye();
  client_.reset();
  return st;
}

}  // namespace teleios::server
