#ifndef TELEIOS_SERVER_HTTP_H_
#define TELEIOS_SERVER_HTTP_H_

#include <map>
#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/table.h"

namespace teleios::server {

/// A parsed HTTP/1.1 request — just enough surface for the JSON facade
/// (curl-ability, health checks, metrics scrapes), deliberately not a
/// web server: one request per connection, no chunked encoding, no
/// keep-alive.
struct HttpRequest {
  std::string method;  // GET / POST / ...
  std::string path;    // decoded path without query string
  std::map<std::string, std::string> query;    // ?lang=sql&...
  std::map<std::string, std::string> headers;  // lowercased names
  std::string body;
};

/// Parses `head` (request line + headers, terminated by CRLFCRLF;
/// body NOT included). kInvalidArgument on malformed input.
Result<HttpRequest> ParseHttpHead(std::string_view head);

/// Content-Length declared by the request (0 when absent); caps at
/// `max` with kInvalidArgument beyond it.
Result<size_t> DeclaredContentLength(const HttpRequest& request, size_t max);

/// Serializes one response with Connection: close and Content-Length.
std::string BuildHttpResponse(int status, std::string_view content_type,
                              std::string_view body);

const char* HttpStatusText(int status);

/// Maps a Status to the HTTP status code of the JSON error reply.
int HttpStatusForError(const Status& status);

/// {"columns": [...], "types": [...], "rows": [[...], ...]} — the JSON
/// rendering of a result table used by POST /query.
std::string TableToJson(const storage::Table& table);

/// {"error": {"code": "...", "message": "..."}}
std::string ErrorToJson(const Status& status);

}  // namespace teleios::server

#endif  // TELEIOS_SERVER_HTTP_H_
