#ifndef TELEIOS_SERVER_SOCKET_H_
#define TELEIOS_SERVER_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace teleios::server {

/// RAII wrapper over one POSIX TCP socket. This file (with socket.cc)
/// is the only place in TELEIOS allowed to touch the raw socket API —
/// teleios_lint rule TL006 fences socket(2)/accept(2)/htons and friends
/// into src/server/, the same boundary contract TL001 enforces for file
/// I/O and src/io/.
///
/// All operations are blocking with explicit timeouts where waiting
/// must be interruptible (AcceptWithTimeout, ReadExact's poll_millis):
/// the server's drain logic depends on handlers noticing a shutdown
/// flag between polls rather than parking forever in recv(2).
class Socket {
 public:
  Socket() = default;
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept
      : fd_(other.fd_),
        bound_port_(other.bound_port_),
        peer_(std::move(other.peer_)) {
    other.fd_ = -1;
  }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port,
  /// readable afterwards via bound_port()).
  static Result<Socket> Listen(int port, int backlog = 128);

  /// Connects to `host`:`port` (numeric IPv4, typically loopback).
  static Result<Socket> Connect(const std::string& host, int port);

  /// Waits up to `timeout_millis` for a connection; kUnavailable on
  /// timeout (the caller's cue to re-check its stop flag), kCancelled
  /// once the socket was shut down.
  Result<Socket> AcceptWithTimeout(int timeout_millis);

  /// Reads exactly `n` bytes. Polls in `poll_millis` slices and calls
  /// `keep_going` (may be nullptr) between slices — returning false
  /// aborts with kCancelled. kUnavailable on clean EOF before any byte,
  /// kDataLoss on EOF mid-read (a torn frame), kIoError otherwise.
  Status ReadExact(void* dst, size_t n, int poll_millis = 250,
                   bool (*keep_going)(void*) = nullptr,
                   void* arg = nullptr);

  /// Reads up to `n` bytes, waiting at most `timeout_millis` for the
  /// first byte. Returns 0 on clean EOF, kUnavailable on timeout
  /// (HTTP's slowloris bound), kIoError otherwise.
  Result<size_t> ReadSome(void* dst, size_t n, int timeout_millis);

  /// Writes all of `data`; kIoError when the peer is gone (EPIPE /
  /// ECONNRESET) — the server treats that as the client abandoning the
  /// stream. With `timeout_millis` > 0 a peer whose receive window stays
  /// full that long (a reader that stopped reading) fails the write with
  /// kDeadlineExceeded instead of parking this thread forever — the
  /// server's per-write timeout that frees a pool worker from a stalled
  /// client.
  Status WriteAll(std::string_view data, int timeout_millis = 0);

  /// Half-closes both directions; blocked peers see EOF. Idempotent.
  void ShutdownBoth();

  void Close();

  bool valid() const { return fd_ >= 0; }
  /// The locally bound port (listen sockets; 0 otherwise).
  int bound_port() const { return bound_port_; }
  /// "ip:port" of the remote end (accepted/connected sockets).
  const std::string& peer() const { return peer_; }

  /// Disables Nagle's algorithm — small request/response frames should
  /// not wait out the delayed-ACK timer.
  void SetNoDelay();

 private:
  int fd_ = -1;
  int bound_port_ = 0;
  std::string peer_;
};

}  // namespace teleios::server

#endif  // TELEIOS_SERVER_SOCKET_H_
