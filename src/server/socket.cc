#include "server/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

namespace teleios::server {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + ::strerror(errno));
}

std::string PeerString(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    bound_port_ = other.bound_port_;
    peer_ = std::move(other.peer_);
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::Listen(int port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock;
  sock.fd_ = fd;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind to 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) return Errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  sock.bound_port_ = ntohs(addr.sin_port);
  return sock;
}

Result<Socket> Socket::Connect(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock;
  sock.fd_ = fd;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    // Nobody listening is "server unavailable", not a broken stream —
    // the same code a shed connection or an armed fault refusal gets.
    if (errno == ECONNREFUSED) {
      return Status::Unavailable("connect to " + host + ":" +
                                 std::to_string(port) +
                                 ": connection refused");
    }
    return Errno("connect to " + host + ":" + std::to_string(port));
  }
  sock.peer_ = host + ":" + std::to_string(port);
  sock.SetNoDelay();
  return sock;
}

Result<Socket> Socket::AcceptWithTimeout(int timeout_millis) {
  pollfd pfd = {fd_, POLLIN, 0};
  int ready = ::poll(&pfd, 1, timeout_millis);
  if (ready == 0) return Status::Unavailable("accept timed out");
  if (ready < 0) {
    if (errno == EINTR) return Status::Unavailable("accept interrupted");
    return Errno("poll on listen socket");
  }
  sockaddr_in addr = {};
  socklen_t len = sizeof(addr);
  int fd = ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  if (fd < 0) {
    // The listen socket was shut down under us (server stopping).
    if (errno == EINVAL || errno == EBADF) {
      return Status::Cancelled("listen socket closed");
    }
    return Errno("accept");
  }
  Socket sock;
  sock.fd_ = fd;
  sock.peer_ = PeerString(addr);
  sock.SetNoDelay();
  return sock;
}

Status Socket::ReadExact(void* dst, size_t n, int poll_millis,
                         bool (*keep_going)(void*), void* arg) {
  char* out = static_cast<char*>(dst);
  size_t got = 0;
  while (got < n) {
    pollfd pfd = {fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, poll_millis);
    if (ready < 0 && errno != EINTR) return Errno("poll");
    if (ready <= 0) {
      if (keep_going != nullptr && !keep_going(arg)) {
        return Status::Cancelled("read abandoned (connection draining)");
      }
      continue;
    }
    ssize_t r = ::recv(fd_, out + got, n - got, 0);
    if (r == 0) {
      if (got == 0) return Status::Unavailable("connection closed by peer");
      return Status::DataLoss("connection closed mid-message (" +
                              std::to_string(got) + "/" +
                              std::to_string(n) + " bytes)");
    }
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return Errno("recv");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Result<size_t> Socket::ReadSome(void* dst, size_t n, int timeout_millis) {
  for (;;) {
    pollfd pfd = {fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, timeout_millis);
    if (ready == 0) return Status::Unavailable("read timed out");
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    ssize_t r = ::recv(fd_, dst, n, 0);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return Errno("recv");
    }
    return static_cast<size_t>(r);
  }
}

Status Socket::WriteAll(std::string_view data, int timeout_millis) {
  size_t sent = 0;
  while (sent < data.size()) {
    if (timeout_millis > 0) {
      // Bound how long a full send buffer may park us: poll for POLLOUT
      // and give up when the peer's window stays closed.
      pollfd pfd = {fd_, POLLOUT, 0};
      int ready = ::poll(&pfd, 1, timeout_millis);
      if (ready == 0) {
        return Status::DeadlineExceeded(
            "write stalled for " + std::to_string(timeout_millis) +
            "ms (" + std::to_string(sent) + "/" +
            std::to_string(data.size()) + " bytes sent)");
      }
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Errno("poll for write");
      }
    }
    ssize_t r = ::send(fd_, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL | (timeout_millis > 0 ? MSG_DONTWAIT : 0));
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::IoError("peer closed the connection mid-write");
      }
      return Errno("send");
    }
    sent += static_cast<size_t>(r);
  }
  return Status::OK();
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::SetNoDelay() {
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace teleios::server
