#include "server/transport.h"

#include <utility>

#include "server/socket.h"

namespace teleios::server {

namespace {

class TcpConnection : public Connection {
 public:
  explicit TcpConnection(Socket sock) : sock_(std::move(sock)) {}

  Status ReadExact(void* dst, size_t n, int poll_millis,
                   bool (*keep_going)(void*), void* arg) override {
    return sock_.ReadExact(dst, n, poll_millis, keep_going, arg);
  }
  Result<size_t> ReadSome(void* dst, size_t n, int timeout_millis) override {
    return sock_.ReadSome(dst, n, timeout_millis);
  }
  Status WriteAll(std::string_view data, int timeout_millis) override {
    return sock_.WriteAll(data, timeout_millis);
  }
  void ShutdownBoth() override { sock_.ShutdownBoth(); }
  void Close() override { sock_.Close(); }
  bool valid() const override { return sock_.valid(); }
  const std::string& peer() const override { return sock_.peer(); }

 private:
  Socket sock_;
};

class TcpListener : public Listener {
 public:
  explicit TcpListener(Socket sock) : sock_(std::move(sock)) {}

  Result<std::unique_ptr<Connection>> AcceptWithTimeout(
      int timeout_millis) override {
    TELEIOS_ASSIGN_OR_RETURN(Socket accepted,
                             sock_.AcceptWithTimeout(timeout_millis));
    return {std::make_unique<TcpConnection>(std::move(accepted))};
  }
  int bound_port() const override { return sock_.bound_port(); }
  void ShutdownBoth() override { sock_.ShutdownBoth(); }
  void Close() override { sock_.Close(); }

 private:
  Socket sock_;
};

}  // namespace

Result<std::unique_ptr<Listener>> TcpTransport::Listen(int port,
                                                       int backlog) {
  TELEIOS_ASSIGN_OR_RETURN(Socket sock, Socket::Listen(port, backlog));
  return {std::make_unique<TcpListener>(std::move(sock))};
}

Result<std::unique_ptr<Connection>> TcpTransport::Connect(
    const std::string& host, int port) {
  TELEIOS_ASSIGN_OR_RETURN(Socket sock, Socket::Connect(host, port));
  return {std::make_unique<TcpConnection>(std::move(sock))};
}

namespace {
TcpTransport* DefaultTransport() {
  static TcpTransport* tcp = new TcpTransport();
  return tcp;
}
Transport* g_transport = nullptr;
}  // namespace

Transport* GetTransport() {
  return g_transport != nullptr ? g_transport : DefaultTransport();
}

Transport* SetTransport(Transport* transport) {
  Transport* prev = g_transport;
  g_transport = transport;
  return prev == nullptr ? DefaultTransport() : prev;
}

}  // namespace teleios::server
