#ifndef TELEIOS_SERVER_FAULT_TRANSPORT_H_
#define TELEIOS_SERVER_FAULT_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/thread_annotations.h"
#include "server/transport.h"

namespace teleios::server {

/// What goes wrong when the armed fault fires — the wire-level
/// counterpart of io::FaultKind.
enum class TransportFaultKind {
  /// The op fails with a generic IoError and the connection dies (a
  /// reset under the caller's feet).
  kIoError,
  /// A write delivers only the first half of its bytes, then the
  /// connection is torn down — the peer sees a mid-frame disconnect.
  /// Non-write ops fail with IoError.
  kShortWrite,
  /// A read delivers what is available, then the connection is torn
  /// down — the caller sees kDataLoss mid-message (or kUnavailable when
  /// nothing had arrived yet). Non-read ops fail with IoError.
  kShortRead,
  /// The connection is shut down cleanly: the op's peer sees EOF, the
  /// op itself fails (reads kUnavailable, writes kIoError).
  kDisconnect,
  /// A Connect fails kUnavailable ("connection refused"); other ops
  /// degrade to kIoError.
  kConnectRefused,
  /// The op sleeps `stall_millis`, then proceeds normally — a network
  /// hiccup for exercising timeouts without failing anything.
  kStall,
};

const char* TransportFaultKindName(TransportFaultKind kind);

/// A deterministic fault program over counted transport operations,
/// mirroring io::FaultSpec: the `inject_at`-th counted op after Arm()
/// misbehaves per `kind`; with `every_n` > 0 the fault repeats every
/// `every_n` ops after that (fault-rate benchmarks); with `crash` every
/// op after the first fault fails too (except accepts, which stay
/// merely unavailable so a server's accept loop survives its own
/// network dying).
struct TransportFaultSpec {
  TransportFaultKind kind = TransportFaultKind::kDisconnect;
  uint64_t inject_at = 1;  // 1-based op index; 0 disables
  uint64_t every_n = 0;
  bool crash = false;
  /// kStall sleep length.
  int stall_millis = 50;
  /// Independent of the op program: when > 0, each connection dies at
  /// its first I/O op after its cumulative read+write byte count passes
  /// this — mid-stream disconnects placed by byte position instead of
  /// op index.
  uint64_t drop_after_bytes = 0;
  uint64_t seed = 1;  // reserved for randomized placements
};

/// Wraps any Transport and injects deterministic faults per an armed
/// TransportFaultSpec; disarmed it is a transparent pass-through that
/// still counts operations (the probe run of a kill-at-every-op sweep).
/// Every injected fault counts `teleios_transport_faults_injected_total`
/// (labeled by kind).
///
/// Counted operations: Connect, successful Accept, ReadExact, ReadSome,
/// WriteAll — on every connection made through this transport, client
/// and server side alike. Accept/read timeouts are NOT counted: they
/// happen a nondeterministic number of times (poll slices), and
/// counting them would make "fail the k-th op" irreproducible.
///
/// The transport must outlive every Listener and Connection it handed
/// out (test scope does this naturally).
class FaultInjectingTransport : public Transport {
 public:
  /// `base` must outlive this wrapper. Defaults to the real TCP
  /// transport.
  explicit FaultInjectingTransport(Transport* base = nullptr);

  /// Installs `spec` and resets the operation counter.
  void Arm(const TransportFaultSpec& spec);
  /// Back to pass-through (op counter keeps its value).
  void Disarm();

  /// Operations counted since the last Arm() (or construction).
  uint64_t ops() const {
    MutexLock lock(mu_);
    return ops_;
  }
  /// Faults injected since the last Arm().
  uint64_t faults_injected() const {
    MutexLock lock(mu_);
    return faults_;
  }

  Result<std::unique_ptr<Listener>> Listen(int port, int backlog) override;
  Result<std::unique_ptr<Connection>> Connect(const std::string& host,
                                              int port) override;

 private:
  friend class FaultyConnection;
  friend class FaultyListener;

  enum class OpClass { kConnect, kAccept, kRead, kWrite };

  /// What a particular counted operation actually does.
  enum class FaultAction {
    kNone,
    kFail,       // IoError (kUnavailable for connects), connection dies
    kShortWrite,
    kShortRead,
    kDisconnect,
    kRefuse,
    kStall,      // sleep, then behave normally
  };

  /// Counts one operation and decides its fate. Thread-safe: the op
  /// counter advances under mu_, so "fail the k-th op" stays exact even
  /// when several connections (client and server ends of a sweep) share
  /// the transport — which op lands on k then depends on scheduling,
  /// but exactly one does.
  FaultAction NextOp(OpClass op) TELEIOS_EXCLUDES(mu_);
  /// drop_after_bytes bookkeeping: true once `total` crossed the bound.
  bool ShouldDropAfterBytes(uint64_t total) TELEIOS_EXCLUDES(mu_);
  void CountFault(const char* kind) TELEIOS_EXCLUDES(mu_);
  int stall_millis() const {
    MutexLock lock(mu_);
    return spec_.stall_millis;
  }

  Transport* base_;
  mutable Mutex mu_;
  TransportFaultSpec spec_ TELEIOS_GUARDED_BY(mu_);
  bool armed_ TELEIOS_GUARDED_BY(mu_) = false;
  bool crashed_ TELEIOS_GUARDED_BY(mu_) = false;
  uint64_t ops_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t faults_ TELEIOS_GUARDED_BY(mu_) = 0;
};

}  // namespace teleios::server

#endif  // TELEIOS_SERVER_FAULT_TRANSPORT_H_
