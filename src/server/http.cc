#include "server/http.h"

#include <cctype>

#include "common/strings.h"
#include "obs/event_log.h"

namespace teleios::server {

namespace {

/// %xx-decodes a URL component (+ stays +; the facade never emits forms).
std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size() &&
        std::isxdigit(static_cast<unsigned char>(s[i + 1])) &&
        std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
      auto hex = [](char c) {
        return c <= '9' ? c - '0' : (std::tolower(c) - 'a' + 10);
      };
      out += static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

void AppendJsonValue(std::string* out, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      *out += "null";
      return;
    case ValueType::kBool:
      *out += v.AsBool() ? "true" : "false";
      return;
    case ValueType::kInt64:
      *out += std::to_string(v.AsInt64());
      return;
    case ValueType::kFloat64:
      *out += StrFormat("%.17g", v.AsFloat64());
      return;
    case ValueType::kString:
      *out += '"';
      *out += obs::JsonEscapeString(v.AsString());
      *out += '"';
      return;
  }
}

}  // namespace

Result<HttpRequest> ParseHttpHead(std::string_view head) {
  HttpRequest request;
  size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) {
    return Status::InvalidArgument("malformed HTTP request line");
  }
  std::string_view request_line = head.substr(0, line_end);
  std::vector<std::string> parts = StrSplit(request_line, ' ');
  if (parts.size() != 3 || !StrStartsWith(parts[2], "HTTP/1.")) {
    return Status::InvalidArgument("malformed HTTP request line");
  }
  request.method = parts[0];
  std::string target = parts[1];
  size_t qmark = target.find('?');
  request.path = UrlDecode(qmark == std::string::npos
                               ? target
                               : target.substr(0, qmark));
  if (qmark != std::string::npos) {
    for (const std::string& pair :
         StrSplit(target.substr(qmark + 1), '&')) {
      size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        request.query[UrlDecode(pair)] = "";
      } else {
        request.query[UrlDecode(pair.substr(0, eq))] =
            UrlDecode(pair.substr(eq + 1));
      }
    }
  }
  size_t pos = line_end + 2;
  while (pos < head.size()) {
    size_t end = head.find("\r\n", pos);
    if (end == std::string_view::npos) end = head.size();
    std::string_view line = head.substr(pos, end - pos);
    pos = end + 2;
    if (line.empty()) break;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("malformed HTTP header line");
    }
    request.headers[StrLower(StrTrim(line.substr(0, colon)))] =
        std::string(StrTrim(line.substr(colon + 1)));
  }
  return request;
}

Result<size_t> DeclaredContentLength(const HttpRequest& request, size_t max) {
  auto it = request.headers.find("content-length");
  if (it == request.headers.end()) return size_t{0};
  TELEIOS_ASSIGN_OR_RETURN(int64_t n, ParseInt64(it->second));
  if (n < 0 || static_cast<size_t>(n) > max) {
    return Status::InvalidArgument("unreasonable Content-Length " +
                                   it->second);
  }
  return static_cast<size_t>(n);
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 401:
      return "Unauthorized";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

std::string BuildHttpResponse(int status, std::string_view content_type,
                              std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    HttpStatusText(status) + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

int HttpStatusForError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kTypeError:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
      return 408;
    case StatusCode::kResourceExhausted:
      return 413;
    case StatusCode::kUnavailable:
      return 503;
    default:
      return 500;
  }
}

std::string TableToJson(const storage::Table& table) {
  std::string out = "{\"columns\":[";
  for (size_t c = 0; c < table.schema().num_fields(); ++c) {
    if (c > 0) out += ',';
    out += '"';
    out += obs::JsonEscapeString(table.schema().field(c).name);
    out += '"';
  }
  out += "],\"types\":[";
  for (size_t c = 0; c < table.schema().num_fields(); ++c) {
    if (c > 0) out += ',';
    out += '"';
    out += storage::ColumnTypeName(table.schema().field(c).type);
    out += '"';
  }
  out += "],\"rows\":[";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (r > 0) out += ',';
    out += '[';
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += ',';
      AppendJsonValue(&out, table.Get(r, c));
    }
    out += ']';
  }
  out += "]}";
  return out;
}

std::string ErrorToJson(const Status& status) {
  return std::string("{\"error\":{\"code\":\"") +
         StatusCodeName(status.code()) + "\",\"message\":\"" +
         obs::JsonEscapeString(status.message()) + "\"}}";
}

}  // namespace teleios::server
