#ifndef TELEIOS_SERVER_DEDUP_H_
#define TELEIOS_SERVER_DEDUP_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/table.h"

namespace teleios::server {

/// Point-in-time counters for the dedup window.
struct DedupStats {
  uint64_t hits = 0;        // duplicates answered from the window
  uint64_t in_flight = 0;   // duplicates refused because still running
  uint64_t evicted = 0;     // entries aged out of a client's window
  uint64_t oversize = 0;    // results too big to retain (re-execute)
  uint64_t clients = 0;     // client windows currently held
  uint64_t entries = 0;     // request entries currently held
};

/// The server half of idempotent retry: a bounded window of completed
/// mutating statements keyed by (client_id, request_id).
///
/// The client tags every mutating statement with a request id that
/// stays FIXED across retries, and sends its stable client id in HELLO
/// — the window is keyed by client, not session, because the retry
/// that matters most arrives on a *new* connection after the old one
/// died mid-reply. When a retry finds its id already completed, the
/// server replays the recorded outcome instead of re-executing — the
/// WAL keeps exactly one application of the statement, which is what
/// the chaos sweep proves by replaying recovered rows against the
/// acked set.
///
/// Bounded three ways: at most `max_clients` client windows (LRU), at
/// most `window` completed entries per client (FIFO eviction — a retry
/// of an evicted id re-executes, so clients must not reuse ids more
/// than a window apart, which the resilient client's monotonic counter
/// guarantees), and results larger than `max_result_bytes` are not
/// retained (the entry is dropped and a duplicate re-executes — the
/// safety valve for a misclassified giant SELECT; real mutations return
/// one-row count tables).
class DedupRegistry {
 public:
  struct Claim {
    enum Kind {
      kFresh,     // first sighting: run it, then Complete()
      kDone,      // already ran: replay `status` / `result`
      kInFlight,  // running right now on another connection: back off
    };
    Kind kind = kFresh;
    Status status = Status::OK();
    /// The recorded result table when kDone and status is OK.
    std::shared_ptr<const storage::Table> result;
  };

  explicit DedupRegistry(size_t max_clients = 256, size_t window = 128,
                         size_t max_result_bytes = 64u << 10);

  /// Claims (client_id, request_id). kFresh marks it in-flight; the
  /// caller MUST follow up with Complete() (or Abandon() when the
  /// statement never ran).
  Claim Begin(uint64_t client_id, uint64_t request_id);

  /// Records the outcome of a kFresh claim. `result` may be nullptr
  /// (error outcomes, or results past the byte cap).
  void Complete(uint64_t client_id, uint64_t request_id,
                const Status& status,
                std::shared_ptr<const storage::Table> result);

  /// Drops an in-flight marker without recording an outcome (the
  /// statement was never executed — e.g. its payload failed to parse
  /// after the claim). A retry becomes kFresh again.
  void Abandon(uint64_t client_id, uint64_t request_id);

  DedupStats stats() const;
  size_t max_result_bytes() const { return max_result_bytes_; }

 private:
  struct Entry {
    bool done = false;
    Status status = Status::OK();
    std::shared_ptr<const storage::Table> result;
  };
  struct ClientWindow {
    std::map<uint64_t, Entry> entries;
    /// Completion order, for FIFO eviction of done entries.
    std::deque<uint64_t> completed;
    uint64_t last_used_seq = 0;
  };

  void EvictIfNeeded(ClientWindow* window) TELEIOS_REQUIRES(mu_);
  void EvictColdestClient() TELEIOS_REQUIRES(mu_);

  const size_t max_clients_;
  const size_t window_;
  const size_t max_result_bytes_;

  mutable Mutex mu_;
  std::map<uint64_t, ClientWindow> clients_ TELEIOS_GUARDED_BY(mu_);
  uint64_t use_seq_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t hits_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t in_flight_hits_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t evicted_ TELEIOS_GUARDED_BY(mu_) = 0;
  uint64_t oversize_ TELEIOS_GUARDED_BY(mu_) = 0;
};

}  // namespace teleios::server

#endif  // TELEIOS_SERVER_DEDUP_H_
