#ifndef TELEIOS_SERVER_RESILIENT_CLIENT_H_
#define TELEIOS_SERVER_RESILIENT_CLIENT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "io/retry.h"
#include "server/client.h"
#include "server/protocol.h"
#include "storage/table.h"

namespace teleios::server {

struct ResilientClientOptions {
  /// Per-connection options; client_id 0 is replaced with a derived
  /// stable identity so the server's dedup window recognizes this
  /// client across reconnects.
  ClientOptions client;
  /// Backoff schedule between attempts. Retried codes are kIoError,
  /// kDataLoss and kUnavailable (dead socket, torn frame, shed or
  /// draining server, dedup in-flight) — everything else is the
  /// statement's own fault and replays identically. Set retry.cancel to
  /// bound the whole retried call by a deadline.
  io::RetryPolicy retry = DefaultRetryPolicy();

  static io::RetryPolicy DefaultRetryPolicy() {
    io::RetryPolicy policy;
    policy.max_attempts = 5;
    policy.base_backoff_ms = 10;
    policy.decorrelated_jitter = true;
    policy.max_backoff_ms = 2000;
    return policy;
  }
};

/// A Client that survives the network: reconnects on failure with
/// decorrelated-jitter backoff, replays prepared statements onto the
/// new connection, and tags every mutating statement with a request id
/// fixed across its attempts — so the server's dedup window applies it
/// exactly once no matter how many times the wire died mid-reply.
///
/// Reads are retried because they are safe to repeat; mutations are
/// retried because the request id makes them safe to repeat. Statement
/// handles returned by Prepare() are *local* — they stay valid across
/// reconnects (the remote statement is re-prepared lazily).
///
/// Not thread-safe, same as Client: one ResilientClient per thread.
class ResilientClient {
 public:
  ResilientClient(std::string host, int port,
                  ResilientClientOptions options = {});

  ResilientClient(ResilientClient&&) = default;
  ResilientClient& operator=(ResilientClient&&) = default;
  ResilientClient(const ResilientClient&) = delete;
  ResilientClient& operator=(const ResilientClient&) = delete;

  Result<storage::Table> Query(Lang lang, const std::string& statement,
                               uint64_t deadline_millis = 0);

  /// Local statement handle (see class comment). The remote PREPARE
  /// happens eagerly so syntax-level refusals surface here, and again
  /// transparently after every reconnect.
  Result<uint32_t> Prepare(Lang lang, const std::string& statement);
  Result<storage::Table> Execute(uint32_t stmt_id,
                                 const std::vector<Value>& params,
                                 uint64_t deadline_millis = 0);
  Status CloseStmt(uint32_t stmt_id);

  /// Heartbeat: keeps the server-side lease alive and verifies the
  /// connection end to end (reconnecting if it cannot).
  Status Ping();

  /// Polite close; never retried — a failed goodbye is still goodbye.
  Status Goodbye();

  /// Forces the next call onto a fresh connection (test hook; also
  /// useful after a long idle gap when the lease has surely expired).
  void Disconnect();

  bool connected() const { return client_.has_value(); }
  uint64_t client_id() const { return client_id_; }
  /// Session identity of the *current* connection (0 when disconnected;
  /// changes across reconnects).
  uint64_t session_id() const {
    return client_.has_value() ? client_->session_id() : 0;
  }
  uint64_t cancel_key() const {
    return client_.has_value() ? client_->cancel_key() : 0;
  }

  /// Resilience telemetry: completed reconnects after a failure, and
  /// re-attempted operations.
  uint64_t reconnects() const { return reconnects_; }
  uint64_t retries() const { return retries_; }

 private:
  struct LocalStatement {
    Lang lang = Lang::kSql;
    std::string text;
    uint32_t remote_id = 0;
    /// Connection epoch remote_id was prepared on; stale after a
    /// reconnect, triggering a transparent re-prepare.
    uint64_t epoch = 0;
  };

  static bool Retryable(const Status& status) {
    return status.code() == StatusCode::kIoError ||
           status.code() == StatusCode::kDataLoss ||
           status.code() == StatusCode::kUnavailable;
  }

  Status EnsureConnected();
  /// remote_id for `stmt`, re-preparing on the current connection when
  /// the handle predates it.
  Result<uint32_t> RemoteStmtId(uint32_t local_id);

  /// The retry loop WithRetry can't express: reconnect between
  /// attempts, retry kUnavailable too, keep the backoff/deadline
  /// machinery. `fn` runs against a connected client.
  template <typename Fn>
  auto RunWithRetry(const std::string& what, Fn&& fn) -> decltype(fn()) {
    const io::RetryPolicy& policy = options_.retry;
    uint64_t rng_state = policy.jitter_seed;
    double prev_backoff_ms = 0;
    decltype(fn()) outcome = Status::Unavailable("never attempted");
    for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
      if (attempt > 1) {
        ++retries_;
        double backoff_ms =
            policy.NextBackoffMillis(attempt, prev_backoff_ms, &rng_state);
        prev_backoff_ms = backoff_ms;
        Status proceed = io::internal::BeforeRetry(policy, what, backoff_ms);
        if (!proceed.ok()) {
          return Status(proceed.code(),
                        proceed.message() + " (last error: " +
                            io::internal::AsStatus(outcome).message() + ")");
        }
      }
      Status connected = EnsureConnected();
      if (!connected.ok()) {
        outcome = connected;
        if (!Retryable(connected)) return outcome;
        continue;
      }
      outcome = fn();
      if (outcome.ok() || !Retryable(io::internal::AsStatus(outcome))) {
        return outcome;
      }
      // Any retryable failure makes the connection suspect — a torn
      // frame leaves the stream unframed, a timeout leaves a reply in
      // flight. Reconnect rather than guess.
      Disconnect();
    }
    return outcome;
  }

  std::string host_;
  int port_ = 0;
  ResilientClientOptions options_;
  uint64_t client_id_ = 0;
  std::optional<Client> client_;
  /// Bumped on every successful connect; prepared-statement handles
  /// remember the epoch they were prepared on.
  uint64_t epoch_ = 0;
  uint64_t next_request_id_ = 0;
  uint32_t next_local_stmt_ = 1;
  std::map<uint32_t, LocalStatement> statements_;
  uint64_t reconnects_ = 0;
  uint64_t retries_ = 0;
};

}  // namespace teleios::server

#endif  // TELEIOS_SERVER_RESILIENT_CLIENT_H_
