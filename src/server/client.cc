#include "server/client.h"

#include <utility>

#include "io/codec.h"

namespace teleios::server {

Result<Client> Client::Connect(const std::string& host, int port,
                               const ClientOptions& options) {
  Client client;
  TELEIOS_ASSIGN_OR_RETURN(client.conn_,
                           GetTransport()->Connect(host, port));
  std::string hello(kMagic, sizeof(kMagic));
  AppendFrame(&hello, Opcode::kHello,
              EncodeHello(kProtocolVersion, options.auth_token,
                          options.default_deadline_millis,
                          options.client_id));
  TELEIOS_RETURN_IF_ERROR(client.conn_->WriteAll(hello));
  TELEIOS_ASSIGN_OR_RETURN(Frame frame, client.ReadFrame());
  if (frame.opcode == Opcode::kError) return DecodeError(frame.payload);
  if (frame.opcode != Opcode::kWelcome) {
    return Status::DataLoss("expected WELCOME, got " +
                            std::string(OpcodeName(frame.opcode)));
  }
  io::ByteReader reader(frame.payload);
  uint32_t version = 0;
  if (!reader.ReadU32(&version) || !reader.ReadU64(&client.session_id_) ||
      !reader.ReadU64(&client.cancel_key_) || !reader.exhausted()) {
    return Status::DataLoss("malformed WELCOME payload");
  }
  client.default_deadline_millis_ = options.default_deadline_millis;
  return client;
}

Result<Frame> Client::ReadFrame() {
  char header[8];
  TELEIOS_RETURN_IF_ERROR(conn_->ReadExact(header, sizeof(header)));
  uint32_t crc = 0;
  TELEIOS_ASSIGN_OR_RETURN(
      uint32_t length,
      DecodeFrameLength(std::string_view(header, sizeof(header)), &crc));
  std::string body(length, '\0');
  TELEIOS_RETURN_IF_ERROR(conn_->ReadExact(body.data(), body.size()));
  return DecodeFrameBody(body, crc);
}

Status Client::SendFrame(Opcode opcode, std::string_view payload) {
  std::string out;
  AppendFrame(&out, opcode, payload);
  return conn_->WriteAll(out);
}

Status Client::SendQuery(Lang lang, const std::string& statement,
                         uint64_t deadline_millis, uint64_t request_id) {
  return SendFrame(Opcode::kQuery,
                   EncodeQuery(lang, statement, deadline_millis, request_id));
}

Result<storage::Table> Client::ReadResult() {
  TELEIOS_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.opcode == Opcode::kError) return DecodeError(frame.payload);
  if (frame.opcode != Opcode::kSchema) {
    return Status::DataLoss("expected SCHEMA, got " +
                            std::string(OpcodeName(frame.opcode)));
  }
  TELEIOS_ASSIGN_OR_RETURN(storage::Table table,
                           DecodeSchema(frame.payload));
  for (;;) {
    TELEIOS_ASSIGN_OR_RETURN(frame, ReadFrame());
    switch (frame.opcode) {
      case Opcode::kRows:
        TELEIOS_RETURN_IF_ERROR(DecodeRowChunk(frame.payload, &table));
        break;
      case Opcode::kDone: {
        io::ByteReader reader(frame.payload);
        if (!reader.ReadU64(&last_total_rows_) ||
            !reader.ReadU64(&last_chunks_) || !reader.exhausted()) {
          return Status::DataLoss("malformed DONE payload");
        }
        if (last_total_rows_ != table.num_rows()) {
          return Status::DataLoss(
              "stream delivered " + std::to_string(table.num_rows()) +
              " rows but DONE declared " +
              std::to_string(last_total_rows_));
        }
        return table;
      }
      case Opcode::kError:
        // Mid-stream abort (budget refusal, draining server): the
        // partial table is discarded, the connection stays framed.
        return DecodeError(frame.payload);
      default:
        return Status::DataLoss("unexpected " +
                                std::string(OpcodeName(frame.opcode)) +
                                " inside a result stream");
    }
  }
}

Result<storage::Table> Client::Query(Lang lang, const std::string& statement,
                                     uint64_t deadline_millis,
                                     uint64_t request_id) {
  TELEIOS_RETURN_IF_ERROR(
      SendQuery(lang, statement, deadline_millis, request_id));
  return ReadResult();
}

Result<uint32_t> Client::Prepare(Lang lang, const std::string& statement) {
  TELEIOS_RETURN_IF_ERROR(
      SendFrame(Opcode::kPrepare, EncodePrepare(lang, statement)));
  TELEIOS_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.opcode == Opcode::kError) return DecodeError(frame.payload);
  if (frame.opcode != Opcode::kStmtReady) {
    return Status::DataLoss("expected STMT_READY, got " +
                            std::string(OpcodeName(frame.opcode)));
  }
  io::ByteReader reader(frame.payload);
  uint32_t stmt_id = 0;
  if (!reader.ReadU32(&stmt_id) || !reader.exhausted()) {
    return Status::DataLoss("malformed STMT_READY payload");
  }
  return stmt_id;
}

Result<storage::Table> Client::Execute(uint32_t stmt_id,
                                       const std::vector<Value>& params,
                                       uint64_t deadline_millis,
                                       uint64_t request_id) {
  TELEIOS_RETURN_IF_ERROR(
      SendFrame(Opcode::kExecute, EncodeExecute(stmt_id, params,
                                                deadline_millis, request_id)));
  return ReadResult();
}

Status Client::ReadAck() {
  TELEIOS_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.opcode == Opcode::kError) return DecodeError(frame.payload);
  if (frame.opcode != Opcode::kDone) {
    return Status::DataLoss("expected DONE, got " +
                            std::string(OpcodeName(frame.opcode)));
  }
  return Status::OK();
}

Status Client::CloseStmt(uint32_t stmt_id) {
  TELEIOS_RETURN_IF_ERROR(
      SendFrame(Opcode::kCloseStmt, EncodeCloseStmt(stmt_id)));
  return ReadAck();
}

Status Client::Cancel(uint64_t session_id, uint64_t cancel_key) {
  TELEIOS_RETURN_IF_ERROR(
      SendFrame(Opcode::kCancel, EncodeCancel(session_id, cancel_key)));
  return ReadAck();
}

Status Client::Ping() {
  std::string payload;
  io::PutU64(&payload, ++ping_seq_);
  TELEIOS_RETURN_IF_ERROR(SendFrame(Opcode::kPing, payload));
  TELEIOS_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.opcode == Opcode::kError) return DecodeError(frame.payload);
  if (frame.opcode != Opcode::kPong) {
    return Status::DataLoss("expected PONG, got " +
                            std::string(OpcodeName(frame.opcode)));
  }
  if (frame.payload != payload) {
    return Status::DataLoss("PONG echoed the wrong payload");
  }
  return Status::OK();
}

Status Client::Goodbye() {
  TELEIOS_RETURN_IF_ERROR(SendFrame(Opcode::kGoodbye, {}));
  conn_->Close();
  return Status::OK();
}

}  // namespace teleios::server
