#ifndef TELEIOS_SCIQL_SCIQL_PARSER_H_
#define TELEIOS_SCIQL_SCIQL_PARSER_H_

#include <string>
#include <variant>
#include <vector>

#include "array/array.h"
#include "common/status.h"
#include "relational/sql_parser.h"

namespace teleios::sciql {

/// CREATE ARRAY img (y INT DIMENSION [0:512], x INT DIMENSION [0:512],
///                   v DOUBLE DEFAULT 0.0)
struct CreateArrayStatement {
  std::string name;
  std::vector<array::Dimension> dims;
  std::vector<storage::Field> attributes;
  std::vector<Value> defaults;
};

/// UPDATE img[0:100, 0:100] SET v = v * 2.0 WHERE v > 10 — cell-wise
/// in-place update over an optional slab.
struct UpdateArrayStatement {
  std::string name;
  std::vector<std::pair<int64_t, int64_t>> slab;  // empty = whole array
  std::vector<std::pair<std::string, relational::ExprPtr>> assignments;
  relational::ExprPtr where;  // may be null
};

struct DropArrayStatement {
  std::string name;
};

/// SELECT over an array reuses the relational SELECT AST; the FROM ref may
/// carry a slab.
using SciQlStatement =
    std::variant<CreateArrayStatement, UpdateArrayStatement,
                 DropArrayStatement, relational::SelectStatement>;

/// Parses one SciQL statement.
Result<SciQlStatement> ParseSciQl(const std::string& text);

}  // namespace teleios::sciql

#endif  // TELEIOS_SCIQL_SCIQL_PARSER_H_
