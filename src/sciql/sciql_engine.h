#ifndef TELEIOS_SCIQL_SCIQL_ENGINE_H_
#define TELEIOS_SCIQL_SCIQL_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "array/array.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "relational/virtual_tables.h"
#include "sciql/sciql_parser.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace teleios::sciql {

/// The SciQL execution engine: maintains the array catalog and evaluates
/// SciQL statements. SELECT statements are lowered onto the relational
/// planner by materializing (a slab of) the array as a dims+attrs table,
/// so arrays and tables can be mixed in one query (join an array against
/// a metadata table, SciQL's headline symbiosis claim).
class SciQlEngine {
 public:
  /// `tables` is the relational catalog joined against in SELECTs; may be
  /// nullptr for an arrays-only engine. Must outlive the engine.
  explicit SciQlEngine(storage::Catalog* tables = nullptr)
      : tables_(tables) {}

  /// Registers an externally built array (e.g. from the data vault).
  Status RegisterArray(array::ArrayPtr array);

  Result<array::ArrayPtr> GetArray(const std::string& name) const;
  bool HasArray(const std::string& name) const;
  std::vector<std::string> ArrayNames() const;
  Status DropArray(const std::string& name);

  /// Parses and executes one SciQL statement. SELECT returns the result
  /// table; DDL/updates return a one-cell "affected" table.
  Result<storage::Table> Execute(const std::string& statement);

  /// Renders the plan of a SciQL SELECT: the array-slab materialization
  /// steps followed by the lowered relational plan (the SciQL analogue of
  /// SqlEngine::Explain).
  Result<std::string> Explain(const std::string& statement);

  /// Installs a `sys.*` provider (nullptr to detach; must outlive the
  /// engine). Served names resolve in SELECTs after arrays, before
  /// relational pass-through.
  void set_virtual_tables(relational::VirtualTableProvider* provider) {
    virtual_tables_ = provider;
  }

 private:
  Result<storage::Table> ParseAndExecute(const std::string& statement);
  Result<storage::Table> ExecuteSelect(
      const relational::SelectStatement& stmt);
  Result<storage::Table> ExecuteUpdate(const UpdateArrayStatement& stmt);
  /// Builds the scratch catalog for a SELECT (arrays materialized as
  /// dims+attrs tables with slabs applied; plain tables passed through),
  /// appending one human-readable line per source to `notes` if given.
  Status MaterializeSources(const relational::SelectStatement& stmt,
                            storage::Catalog* scratch,
                            std::vector<std::string>* notes);

  storage::Catalog* tables_;
  relational::VirtualTableProvider* virtual_tables_ = nullptr;
  /// Guards the array catalog so concurrent batch products can run
  /// SELECTs while others register/drop their scene arrays. Statement
  /// execution itself holds no lock — concurrent UPDATEs of the *same*
  /// array are the caller's problem.
  mutable SharedMutex arrays_mu_;
  std::map<std::string, array::ArrayPtr> arrays_ TELEIOS_GUARDED_BY(arrays_mu_);
};

}  // namespace teleios::sciql

#endif  // TELEIOS_SCIQL_SCIQL_ENGINE_H_
