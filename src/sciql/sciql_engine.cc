#include "sciql/sciql_engine.h"

#include <sstream>

#include "array/array_ops.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/evaluator.h"
#include "relational/sql_planner.h"

namespace teleios::sciql {

using array::Array;
using array::ArrayPtr;
using array::Range;
using relational::BoundExpr;
using relational::SelectStatement;
using storage::Table;

namespace {

Table AffectedRows(int64_t n) {
  Table t{storage::Schema({{"affected", storage::ColumnType::kInt64}})};
  t.column(0).AppendInt64(n);
  return t;
}

}  // namespace

Status SciQlEngine::RegisterArray(ArrayPtr array) {
  WriterMutexLock lock(arrays_mu_);
  if (arrays_.count(array->name())) {
    return Status::AlreadyExists("array '" + array->name() +
                                 "' already exists");
  }
  arrays_[array->name()] = std::move(array);
  return Status::OK();
}

Result<ArrayPtr> SciQlEngine::GetArray(const std::string& name) const {
  ReaderMutexLock lock(arrays_mu_);
  auto it = arrays_.find(name);
  if (it == arrays_.end()) {
    return Status::NotFound("array '" + name + "' does not exist");
  }
  return it->second;
}

bool SciQlEngine::HasArray(const std::string& name) const {
  ReaderMutexLock lock(arrays_mu_);
  return arrays_.count(name) > 0;
}

std::vector<std::string> SciQlEngine::ArrayNames() const {
  ReaderMutexLock lock(arrays_mu_);
  std::vector<std::string> names;
  for (const auto& [name, _] : arrays_) names.push_back(name);
  return names;
}

Status SciQlEngine::DropArray(const std::string& name) {
  WriterMutexLock lock(arrays_mu_);
  if (!arrays_.erase(name)) {
    return Status::NotFound("array '" + name + "' does not exist");
  }
  return Status::OK();
}

Result<Table> SciQlEngine::Execute(const std::string& statement) {
  obs::Count("teleios_sciql_statements_total");
  obs::TraceSpan statement_span("sciql.statement",
                                obs::MetricsRegistry::Global().GetHistogram(
                                    "teleios_sciql_execute_millis"));
  Result<Table> result = ParseAndExecute(statement);
  if (result.ok()) {
    obs::Count("teleios_sciql_result_rows_total", result->num_rows());
  } else {
    obs::Count(obs::WithLabel("teleios_sciql_errors_total", "code",
                              StatusCodeName(result.status().code())));
  }
  return result;
}

Result<Table> SciQlEngine::ParseAndExecute(const std::string& statement) {
  SciQlStatement stmt;
  {
    obs::TraceSpan parse_span("parse");
    TELEIOS_ASSIGN_OR_RETURN(stmt, ParseSciQl(statement));
  }
  if (const auto* create = std::get_if<CreateArrayStatement>(&stmt)) {
    TELEIOS_ASSIGN_OR_RETURN(
        ArrayPtr arr, Array::Create(create->name, create->dims,
                                    create->attributes, create->defaults));
    TELEIOS_RETURN_IF_ERROR(RegisterArray(std::move(arr)));
    return AffectedRows(0);
  }
  if (const auto* drop = std::get_if<DropArrayStatement>(&stmt)) {
    TELEIOS_RETURN_IF_ERROR(DropArray(drop->name));
    return AffectedRows(0);
  }
  if (const auto* update = std::get_if<UpdateArrayStatement>(&stmt)) {
    return ExecuteUpdate(*update);
  }
  return ExecuteSelect(std::get<SelectStatement>(stmt));
}

Status SciQlEngine::MaterializeSources(const SelectStatement& stmt,
                                       storage::Catalog* scratch,
                                       std::vector<std::string>* notes) {
  // Referenced arrays become dims+attrs tables (with slabs applied
  // first); plain tables pass through from the relational catalog.
  auto add_source = [&](const relational::TableRef& ref) -> Status {
    if (scratch->HasTable(ref.name)) return Status::OK();
    ArrayPtr arr;
    {
      ReaderMutexLock lock(arrays_mu_);
      auto it = arrays_.find(ref.name);
      if (it != arrays_.end()) arr = it->second;
    }
    if (arr != nullptr) {
      obs::TraceSpan span("materialize");
      span.SetAttr("array", ref.name);
      std::string slab_text;
      if (!ref.slab.empty()) {
        std::vector<Range> slab;
        for (const auto& [start, end] : ref.slab) {
          slab.push_back({start, end});
          slab_text += (slab_text.empty() ? "" : ", ") +
                       std::to_string(start) + ":" + std::to_string(end);
        }
        TELEIOS_ASSIGN_OR_RETURN(arr, array::Slice(*arr, slab));
      }
      Table cells = arr->ToTable();
      obs::Count("teleios_sciql_cells_materialized_total", cells.num_rows());
      span.SetAttr("cells", std::to_string(cells.num_rows()));
      if (notes != nullptr) {
        notes->push_back(
            "materialize array '" + ref.name + "'" +
            (slab_text.empty() ? std::string(" (full extent)")
                               : " slab [" + slab_text + "]") +
            " -> " + std::to_string(cells.num_rows()) + " cell rows");
      }
      return scratch->CreateTable(ref.name,
                                  std::make_shared<Table>(std::move(cells)));
    }
    if (!ref.slab.empty()) {
      return Status::InvalidArgument("slab on non-array '" + ref.name + "'");
    }
    if (virtual_tables_ != nullptr && virtual_tables_->Serves(ref.name)) {
      TELEIOS_ASSIGN_OR_RETURN(storage::TablePtr snapshot,
                               virtual_tables_->Materialize(ref.name));
      if (notes != nullptr) {
        notes->push_back("materialize virtual table '" + ref.name + "'");
      }
      return scratch->CreateTable(ref.name, std::move(snapshot));
    }
    if (tables_ != nullptr) {
      auto table = tables_->GetTable(ref.name);
      if (table.ok()) {
        if (notes != nullptr) {
          notes->push_back("pass through table '" + ref.name +
                           "' from the relational catalog");
        }
        return scratch->CreateTable(ref.name, *table);
      }
    }
    return Status::NotFound("no array or table named '" + ref.name + "'");
  };
  TELEIOS_RETURN_IF_ERROR(add_source(stmt.from));
  for (const auto& join : stmt.joins) {
    TELEIOS_RETURN_IF_ERROR(add_source(join.table));
  }
  return Status::OK();
}

Result<Table> SciQlEngine::ExecuteSelect(const SelectStatement& stmt) {
  storage::Catalog scratch;
  TELEIOS_RETURN_IF_ERROR(MaterializeSources(stmt, &scratch, nullptr));
  return relational::ExecuteSelect(stmt, scratch);
}

Result<std::string> SciQlEngine::Explain(const std::string& statement) {
  TELEIOS_ASSIGN_OR_RETURN(SciQlStatement stmt, ParseSciQl(statement));
  const auto* select = std::get_if<SelectStatement>(&stmt);
  if (select == nullptr) {
    return Status::InvalidArgument("EXPLAIN supports SELECT only");
  }
  storage::Catalog scratch;
  std::vector<std::string> notes;
  TELEIOS_RETURN_IF_ERROR(MaterializeSources(*select, &scratch, &notes));
  std::ostringstream os;
  for (const std::string& note : notes) os << note << "\n";
  os << "lowered relational plan:\n";
  TELEIOS_ASSIGN_OR_RETURN(std::string plan,
                           relational::ExplainSelect(*select, scratch));
  os << plan;
  return os.str();
}

Result<Table> SciQlEngine::ExecuteUpdate(const UpdateArrayStatement& stmt) {
  obs::TraceSpan exec_span("execute");
  exec_span.SetAttr("array", stmt.name);
  TELEIOS_ASSIGN_OR_RETURN(ArrayPtr arr, GetArray(stmt.name));
  if (!stmt.slab.empty() && stmt.slab.size() != arr->num_dims()) {
    return Status::InvalidArgument("slab arity mismatch");
  }
  // Resolve assignment targets.
  std::vector<int> targets;
  for (const auto& [col, _] : stmt.assignments) {
    int a = arr->AttributeIndex(col);
    if (a < 0) {
      return Status::NotFound("array '" + stmt.name +
                              "' has no attribute '" + col + "'");
    }
    targets.push_back(a);
  }
  // Cell resolver: dims + attributes by name.
  std::vector<int64_t> coords(arr->num_dims());
  auto resolver = [&](const std::string& name) -> Result<Value> {
    int d = arr->DimensionIndex(name);
    if (d >= 0) return Value(coords[d]);
    int a = arr->AttributeIndex(name);
    if (a >= 0) {
      auto idx = arr->LinearIndex(coords);
      if (!idx.ok()) return idx.status();
      return arr->GetLinear(*idx, static_cast<size_t>(a));
    }
    return Status::NotFound("unknown cell reference '" + name + "'");
  };
  int64_t changed = 0;
  for (size_t i = 0; i < arr->num_cells(); ++i) {
    coords = arr->CoordsOf(i);
    bool in_slab = true;
    for (size_t d = 0; d < stmt.slab.size(); ++d) {
      if (coords[d] < stmt.slab[d].first || coords[d] >= stmt.slab[d].second) {
        in_slab = false;
        break;
      }
    }
    if (!in_slab) continue;
    if (stmt.where) {
      TELEIOS_ASSIGN_OR_RETURN(Value cond,
                               relational::Evaluate(stmt.where, resolver));
      if (!cond.Truthy()) continue;
    }
    // Evaluate all right-hand sides before writing (simultaneous update).
    std::vector<Value> results;
    for (const auto& [_, expr] : stmt.assignments) {
      TELEIOS_ASSIGN_OR_RETURN(Value v, relational::Evaluate(expr, resolver));
      results.push_back(std::move(v));
    }
    for (size_t t = 0; t < targets.size(); ++t) {
      TELEIOS_RETURN_IF_ERROR(
          arr->SetLinear(i, static_cast<size_t>(targets[t]), results[t]));
    }
    ++changed;
  }
  return AffectedRows(changed);
}

}  // namespace teleios::sciql
