#include "sciql/sciql_parser.h"

#include "common/strings.h"
#include "relational/evaluator.h"
#include "relational/sql_lexer.h"

namespace teleios::sciql {

using relational::ParseExpression;
using relational::ParseSelectStatement;
using relational::ParseTypeName;
using relational::Token;
using relational::TokenCursor;
using relational::TokenType;

namespace {

Result<int64_t> ParseSignedInt(TokenCursor* cur) {
  bool neg = cur->AcceptSymbol("-");
  if (cur->Peek().type != TokenType::kInteger) {
    return cur->MakeError("expected integer");
  }
  int64_t v = cur->Next().int_value;
  return neg ? -v : v;
}

Result<CreateArrayStatement> ParseCreateArray(TokenCursor* cur) {
  CreateArrayStatement stmt;
  TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("create"));
  TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("array"));
  TELEIOS_ASSIGN_OR_RETURN(stmt.name, cur->ExpectIdentifier());
  TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol("("));
  do {
    std::string col_name;
    TELEIOS_ASSIGN_OR_RETURN(col_name, cur->ExpectIdentifier());
    TELEIOS_ASSIGN_OR_RETURN(storage::ColumnType type, ParseTypeName(cur));
    if (cur->AcceptKeyword("dimension")) {
      if (type != storage::ColumnType::kInt64) {
        return Status::TypeError("dimension '" + col_name +
                                 "' must be an integer type");
      }
      TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol("["));
      TELEIOS_ASSIGN_OR_RETURN(int64_t start, ParseSignedInt(cur));
      TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol(":"));
      TELEIOS_ASSIGN_OR_RETURN(int64_t end, ParseSignedInt(cur));
      TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol("]"));
      if (end <= start) {
        return Status::InvalidArgument("empty dimension range for '" +
                                       col_name + "'");
      }
      stmt.dims.push_back({col_name, start, end - start});
    } else {
      Value def;  // NULL default unless specified
      if (cur->AcceptKeyword("default")) {
        TELEIOS_ASSIGN_OR_RETURN(relational::ExprPtr e, ParseExpression(cur));
        TELEIOS_ASSIGN_OR_RETURN(
            def, relational::Evaluate(
                     e, [](const std::string& n) -> Result<Value> {
                       return Status::InvalidArgument(
                           "column ref '" + n + "' in DEFAULT");
                     }));
      }
      stmt.attributes.push_back({col_name, type});
      stmt.defaults.push_back(std::move(def));
    }
  } while (cur->AcceptSymbol(","));
  TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol(")"));
  if (stmt.dims.empty()) {
    return Status::InvalidArgument("CREATE ARRAY requires a DIMENSION");
  }
  if (stmt.attributes.empty()) {
    return Status::InvalidArgument("CREATE ARRAY requires an attribute");
  }
  return stmt;
}

Result<UpdateArrayStatement> ParseUpdateArray(TokenCursor* cur) {
  UpdateArrayStatement stmt;
  TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("update"));
  TELEIOS_ASSIGN_OR_RETURN(stmt.name, cur->ExpectIdentifier());
  if (cur->AcceptSymbol("[")) {
    do {
      TELEIOS_ASSIGN_OR_RETURN(int64_t start, ParseSignedInt(cur));
      TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol(":"));
      TELEIOS_ASSIGN_OR_RETURN(int64_t end, ParseSignedInt(cur));
      stmt.slab.emplace_back(start, end);
    } while (cur->AcceptSymbol(","));
    TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol("]"));
  }
  TELEIOS_RETURN_IF_ERROR(cur->ExpectKeyword("set"));
  do {
    std::string col;
    TELEIOS_ASSIGN_OR_RETURN(col, cur->ExpectIdentifier());
    TELEIOS_RETURN_IF_ERROR(cur->ExpectSymbol("="));
    TELEIOS_ASSIGN_OR_RETURN(relational::ExprPtr e, ParseExpression(cur));
    stmt.assignments.emplace_back(std::move(col), std::move(e));
  } while (cur->AcceptSymbol(","));
  if (cur->AcceptKeyword("where")) {
    TELEIOS_ASSIGN_OR_RETURN(stmt.where, ParseExpression(cur));
  }
  return stmt;
}

}  // namespace

Result<SciQlStatement> ParseSciQl(const std::string& text) {
  TELEIOS_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                           relational::LexSql(text));
  TokenCursor cur(std::move(tokens));
  SciQlStatement result;
  if (cur.PeekKeyword("create")) {
    TELEIOS_ASSIGN_OR_RETURN(CreateArrayStatement s, ParseCreateArray(&cur));
    result = std::move(s);
  } else if (cur.PeekKeyword("update")) {
    TELEIOS_ASSIGN_OR_RETURN(UpdateArrayStatement s, ParseUpdateArray(&cur));
    result = std::move(s);
  } else if (cur.PeekKeyword("drop")) {
    cur.Next();
    TELEIOS_RETURN_IF_ERROR(cur.ExpectKeyword("array"));
    DropArrayStatement s;
    TELEIOS_ASSIGN_OR_RETURN(s.name, cur.ExpectIdentifier());
    result = std::move(s);
  } else if (cur.PeekKeyword("select")) {
    TELEIOS_ASSIGN_OR_RETURN(relational::SelectStatement s,
                             ParseSelectStatement(&cur));
    result = std::move(s);
  } else {
    return cur.MakeError("expected a SciQL statement");
  }
  cur.AcceptSymbol(";");
  if (!cur.AtEnd()) return cur.MakeError("unexpected trailing input");
  return result;
}

}  // namespace teleios::sciql
