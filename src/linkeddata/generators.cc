#include "linkeddata/generators.h"

#include <sstream>
#include <vector>

#include "common/strings.h"
#include "geo/clip.h"
#include "geo/wkt.h"

namespace teleios::linkeddata {

namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 1) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
  }
  double Uniform() {
    return static_cast<double>(Next() >> 11) / 9007199254740992.0;
  }

 private:
  uint64_t state_;
};

/// Deterministic Greek-ish place names.
std::string PlaceName(Rng* rng) {
  static const char* kStems[] = {"Kala",  "Mega",  "Paleo", "Neo",
                                 "Argo",  "Trip",  "Spar",  "Koro",
                                 "Pylo",  "Olym",  "Mess",  "Arka"};
  static const char* kSuffixes[] = {"mata", "polis", "chora", "kastro",
                                    "nisi", "li",    "tani",  "thia"};
  return std::string(kStems[rng->Next() % 12]) + kSuffixes[rng->Next() % 8];
}

/// Picks `count` distinct land pixels, keeping a margin from the border.
std::vector<geo::Point> LandPoints(const eo::Scene& scene, int count,
                                   Rng* rng) {
  std::vector<geo::Point> pts;
  int attempts = 0;
  while (static_cast<int>(pts.size()) < count && attempts < 20000) {
    ++attempts;
    int c = 2 + static_cast<int>(rng->Uniform() * (scene.spec.width - 4));
    int r = 2 + static_cast<int>(rng->Uniform() * (scene.spec.height - 4));
    if (!scene.landmask[static_cast<size_t>(r) * scene.spec.width + c]) {
      continue;
    }
    pts.push_back(scene.PixelCenter(c, r));
  }
  return pts;
}

std::string Prologue() {
  return "@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .\n"
         "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
         "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
         "@prefix strdf: <http://strdf.di.uoa.gr/ontology#> .\n"
         "@prefix geonames: <http://www.geonames.org/ontology#> .\n"
         "@prefix dbo: <http://dbpedia.org/ontology/> .\n"
         "@prefix dbr: <http://dbpedia.org/resource/> .\n"
         "@prefix lgd: <http://linkedgeodata.org/ontology/> .\n"
         "@prefix noa: "
         "<http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> .\n\n";
}

std::string WktLiteral(const geo::Geometry& g) {
  return "\"" + geo::WriteWkt(g) + "\"^^strdf:WKT";
}

}  // namespace

Result<std::string> GenerateTowns(const eo::Scene& scene, int count,
                                  uint64_t seed) {
  Rng rng(seed);
  std::ostringstream os;
  os << Prologue();
  std::vector<geo::Point> pts = LandPoints(scene, count, &rng);
  for (size_t i = 0; i < pts.size(); ++i) {
    std::string name = PlaceName(&rng);
    os << "<http://sws.geonames.org/t" << i << "/> a geonames:Feature ;\n"
       << "    geonames:name \"" << name << "\" ;\n"
       << "    geonames:featureCode \"P.PPL\" ;\n"
       << "    geonames:population "
       << 500 + static_cast<int64_t>(rng.Uniform() * 120000) << " ;\n"
       << "    strdf:hasGeometry "
       << WktLiteral(geo::Geometry::MakePoint(pts[i].x, pts[i].y)) << " .\n";
  }
  return os.str();
}

Result<std::string> GenerateArchaeologicalSites(const eo::Scene& scene,
                                                int count, uint64_t seed) {
  Rng rng(seed * 1337 + 5);
  std::ostringstream os;
  os << Prologue();
  static const char* kSites[] = {"Temple", "Theatre", "Agora",  "Acropolis",
                                 "Stadium", "Tholos",  "Palace", "Sanctuary"};
  std::vector<geo::Point> pts = LandPoints(scene, count, &rng);
  for (size_t i = 0; i < pts.size(); ++i) {
    std::string name = std::string(kSites[rng.Next() % 8]) + "_of_" +
                       PlaceName(&rng);
    os << "dbr:" << name << "_" << i << " a dbo:ArchaeologicalSite ;\n"
       << "    rdfs:label \"" << name << "\" ;\n"
       << "    strdf:hasGeometry "
       << WktLiteral(geo::Geometry::MakePoint(pts[i].x, pts[i].y)) << " .\n";
  }
  return os.str();
}

Result<std::string> GenerateRoads(const eo::Scene& scene, int count,
                                  uint64_t seed) {
  Rng rng(seed * 77 + 13);
  std::ostringstream os;
  os << Prologue();
  std::vector<geo::Point> nodes = LandPoints(scene, count + 1, &rng);
  static const char* kTypes[] = {"motorway", "primary", "secondary",
                                 "tertiary"};
  for (size_t i = 0; i + 1 < nodes.size(); ++i) {
    // Slightly bent two-segment polyline between consecutive points.
    geo::Point a = nodes[i];
    geo::Point b = nodes[i + 1];
    geo::Point mid{(a.x + b.x) / 2 + (rng.Uniform() - 0.5) * 0.05,
                   (a.y + b.y) / 2 + (rng.Uniform() - 0.5) * 0.05};
    geo::Geometry road = geo::Geometry::MakeLineString({a, mid, b});
    os << "<http://linkedgeodata.org/triplify/way" << i
       << "> a lgd:HighwayThing ;\n"
       << "    lgd:highway \"" << kTypes[rng.Next() % 4] << "\" ;\n"
       << "    strdf:hasGeometry " << WktLiteral(road) << " .\n";
  }
  return os.str();
}

Result<std::string> GenerateCoastline(const eo::Scene& scene) {
  std::ostringstream os;
  os << Prologue();
  geo::Geometry land = eo::LandPolygons(scene, 4);
  if (land.IsEmpty()) {
    return Status::Internal("scene has no land to polygonize");
  }
  // Sea = scene bounding box minus land.
  geo::Point tl = scene.transform.PixelToWorld(0, 0);
  geo::Point br =
      scene.transform.PixelToWorld(scene.spec.width, scene.spec.height);
  geo::Geometry box = geo::Geometry::MakeBox(
      std::min(tl.x, br.x), std::min(tl.y, br.y), std::max(tl.x, br.x),
      std::max(tl.y, br.y));
  TELEIOS_ASSIGN_OR_RETURN(geo::Geometry sea, geo::Difference(box, land));
  os << "noa:landmass a noa:LandArea ;\n"
     << "    rdfs:label \"Peloponnese landmass (synthetic)\" ;\n"
     << "    noa:hasGeometry " << WktLiteral(land) << " .\n";
  os << "noa:sea a noa:Sea ;\n"
     << "    rdfs:label \"Sea (synthetic)\" ;\n"
     << "    noa:hasGeometry " << WktLiteral(sea) << " .\n";
  return os.str();
}

Result<std::string> GenerateLandCover(const eo::Scene& scene,
                                      int grid_step) {
  if (grid_step <= 0) return Status::InvalidArgument("bad grid step");
  std::ostringstream os;
  os << Prologue();
  int w = scene.spec.width;
  int h = scene.spec.height;
  int id = 0;
  for (int r = 0; r + grid_step <= h; r += grid_step) {
    for (int c = 0; c + grid_step <= w; c += grid_step) {
      double land = 0, ndvi = 0;
      int n = 0;
      for (int rr = r; rr < r + grid_step; ++rr) {
        for (int cc = c; cc < c + grid_step; ++cc) {
          size_t i = static_cast<size_t>(rr) * w + cc;
          land += scene.landmask[i];
          double denom = scene.nir016[i] + scene.vis006[i];
          ndvi += denom > 1e-9
                      ? (scene.nir016[i] - scene.vis006[i]) / denom
                      : 0.0;
          ++n;
        }
      }
      land /= n;
      ndvi /= n;
      std::string cls;
      if (land < 0.5) {
        cls = "WaterBody";
      } else if (ndvi > 0.35) {
        cls = "Forest";
      } else if (ndvi > 0.15) {
        cls = "Agricultural";
      } else {
        cls = "BareSoil";
      }
      geo::Point a = scene.transform.PixelToWorld(c, r);
      geo::Point b = scene.transform.PixelToWorld(c + grid_step,
                                                  r + grid_step);
      geo::Geometry cell = geo::Geometry::MakeBox(
          std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
          std::max(a.y, b.y));
      os << "noa:lc" << id++ << " a noa:" << cls << " ;\n"
         << "    noa:hasGeometry " << WktLiteral(cell) << " .\n";
    }
  }
  return os.str();
}

}  // namespace teleios::linkeddata
