#ifndef TELEIOS_LINKEDDATA_GENERATORS_H_
#define TELEIOS_LINKEDDATA_GENERATORS_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "eo/scene.h"

namespace teleios::linkeddata {

/// Synthetic stand-ins for the auxiliary linked open data sources the
/// paper enriches products with (GeoNames, LinkedGeoData, DBpedia,
/// OpenStreetMap). All generators are deterministic for a given scene and
/// emit Turtle in the same world coordinates as the scene, so spatial
/// joins against product annotations work out of the box.

/// GeoNames-like populated places on land: `geonames:name`,
/// `geonames:population`, point geometry. `count` towns.
Result<std::string> GenerateTowns(const eo::Scene& scene, int count,
                                  uint64_t seed);

/// DBpedia-like archaeological sites on land (the §1 headline query needs
/// sites near fires): rdf:type dbpedia-owl ArchaeologicalSite, label,
/// point geometry.
Result<std::string> GenerateArchaeologicalSites(const eo::Scene& scene,
                                                int count, uint64_t seed);

/// LinkedGeoData/OSM-like road network: polylines between towns (`count`
/// roads), lgd:highway types.
Result<std::string> GenerateRoads(const eo::Scene& scene, int count,
                                  uint64_t seed);

/// Coastline / landmass polygons extracted from the scene landmask,
/// published as noa:Coast + noa:Sea regions with strdf:WKT geometry. The
/// sea geometry is the scene bounding box minus land.
Result<std::string> GenerateCoastline(const eo::Scene& scene);

/// CORINE-style landcover polygons: coarse NDVI/landmask classes
/// (Forest / Agricultural / BareSoil / WaterBody) with geometry.
Result<std::string> GenerateLandCover(const eo::Scene& scene, int grid_step);

}  // namespace teleios::linkeddata

#endif  // TELEIOS_LINKEDDATA_GENERATORS_H_
