#ifndef TELEIOS_COMMON_DEADLOCK_H_
#define TELEIOS_COMMON_DEADLOCK_H_

#include <cstddef>
#include <string>

/// Runtime lock-order validator (the dynamic half of the deadlock story;
/// tools/teleios_analyze is the static half).
///
/// Compiled into the teleios::Mutex / SharedMutex wrappers when the
/// build sets -DTELEIOS_DEADLOCK_CHECK=ON (a CMake option). Every
/// acquisition through the wrappers then:
///
///   1. checks the thread's held-set for the same mutex (recursive
///      acquisition of a non-recursive mutex: certain deadlock),
///   2. adds held -> acquiring edges to a process-wide lock-order graph
///      keyed by mutex address, and
///   3. walks the graph before committing the new edges; if the
///      acquiring mutex can already reach a held one, the acquisition
///      order has inverted somewhere in the process's history and the
///      full cycle is reported.
///
/// This is the same design as absl's deadlock graph: edges accumulate
/// over the process lifetime, so the two halves of an ABBA inversion are
/// caught even when they never overlap in time — one clean test run
/// under TELEIOS_DEADLOCK_CHECK=ON proves the *order*, not just the
/// absence of a lucky interleaving. Being address-keyed it also covers
/// what the static class-level analysis cannot: instance hierarchies
/// (parent/child MemoryBudget chains, per-worker deques) where the type
/// graph has a legal self-loop but the instances must still be ordered
/// consistently.
///
/// TryLock acquisitions record the mutex as held but add no edges (a
/// try-lock cannot block, so it cannot complete a deadlock by itself).
/// Condition-variable waits through MutexLock::native() keep the mutex
/// in the held-set across the wait — the wait re-acquires before
/// returning, so the conservative bookkeeping stays truthful at every
/// point the caller can observe.
///
/// The default report handler prints the cycle to stderr and aborts;
/// tests install a capturing handler instead (the inversion is a fact
/// about ordering, not an actual hang, so execution can continue).
namespace teleios::deadlock {

/// Pre-acquisition hook: self-lock + cycle detection, then edge commit.
/// Called by the wrappers *before* blocking on the underlying primitive,
/// so a detected inversion is reported instead of hanging.
void OnAcquire(const void* mu);
/// Post-acquisition hook: pushes `mu` onto the thread's held-set.
void OnAcquired(const void* mu);
/// try_lock success: record held without adding order edges.
void OnTryAcquired(const void* mu);
/// Removes (the innermost occurrence of) `mu` from the held-set.
void OnRelease(const void* mu);
/// Forgets a destroyed mutex: its node and incident edges are dropped so
/// a recycled address cannot inherit stale ordering history.
void OnDestroy(const void* mu);

/// Handler invoked with a human-readable report when an inversion or a
/// self-deadlock is detected. The default prints to stderr and aborts.
using Handler = void (*)(const std::string& report);

/// Installs `handler` (nullptr restores the default); returns the
/// previous one. Tests use this to capture reports without dying.
Handler SetHandler(Handler handler);

/// Total inversions + self-deadlocks detected since process start.
size_t InversionCount();

/// Drops every node, edge and counter (not the held-sets of live
/// threads). Tests call this between cases so one scenario's history
/// does not condemn the next.
void ResetGraphForTest();

}  // namespace teleios::deadlock

#endif  // TELEIOS_COMMON_DEADLOCK_H_
