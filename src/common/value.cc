#include "common/value.h"

#include <cmath>

#include "common/strings.h"

namespace teleios {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt64:
      return "BIGINT";
    case ValueType::kFloat64:
      return "DOUBLE";
    case ValueType::kString:
      return "VARCHAR";
  }
  return "?";
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt64());
    case ValueType::kFloat64:
      return AsFloat64();
    case ValueType::kBool:
      return AsBool() ? 1.0 : 0.0;
    default:
      return Status::TypeError(std::string("cannot convert ") +
                               ValueTypeName(type()) + " to DOUBLE");
  }
}

Result<int64_t> Value::ToInt64() const {
  switch (type()) {
    case ValueType::kInt64:
      return AsInt64();
    case ValueType::kFloat64:
      return static_cast<int64_t>(AsFloat64());
    case ValueType::kBool:
      return static_cast<int64_t>(AsBool());
    default:
      return Status::TypeError(std::string("cannot convert ") +
                               ValueTypeName(type()) + " to BIGINT");
  }
}

bool Value::Truthy() const {
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kBool:
      return AsBool();
    case ValueType::kInt64:
      return AsInt64() != 0;
    case ValueType::kFloat64:
      return AsFloat64() != 0.0;
    case ValueType::kString:
      return !AsString().empty();
  }
  return false;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kFloat64: {
      std::string s = StrFormat("%.10g", AsFloat64());
      return s;
    }
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

namespace {
bool IsNumeric(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kFloat64 ||
         t == ValueType::kBool;
}
}  // namespace

int Value::Compare(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  if (a == ValueType::kNull || b == ValueType::kNull) {
    if (a == b) return 0;
    return a == ValueType::kNull ? -1 : 1;
  }
  if (IsNumeric(a) && IsNumeric(b)) {
    if (a == ValueType::kInt64 && b == ValueType::kInt64) {
      int64_t x = AsInt64();
      int64_t y = other.AsInt64();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = ToDouble().value_or(0.0);
    double y = other.ToDouble().value_or(0.0);
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a == ValueType::kString && b == ValueType::kString) {
    return AsString().compare(other.AsString()) < 0
               ? -1
               : (AsString() == other.AsString() ? 0 : 1);
  }
  // Heterogeneous non-numeric: order by type tag for a stable total order.
  int ta = static_cast<int>(a);
  int tb = static_cast<int>(b);
  return ta < tb ? -1 : (ta > tb ? 1 : 0);
}

}  // namespace teleios
