#ifndef TELEIOS_COMMON_THREAD_ANNOTATIONS_H_
#define TELEIOS_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>
#include <shared_mutex>

/// Clang thread-safety annotations (-Wthread-safety) for TELEIOS.
///
/// Every mutex in the tree is declared through the `Mutex` /
/// `SharedMutex` wrappers below and every member it protects carries
/// `TELEIOS_GUARDED_BY(mu_)`, so the locking discipline that PR 3
/// introduced is checked at *compile time* under clang instead of only
/// dynamically (and slowly) under TSan. Under GCC — or any compiler
/// without the attributes — every macro expands to nothing and the
/// wrappers are zero-cost veneers over the std primitives, so TSan and
/// the runtime behaviour are unchanged.
///
/// Build with -DTELEIOS_THREAD_SAFETY_ANALYSIS=ON (default ON for
/// clang) to promote violations to errors (-Werror=thread-safety).
///
/// The macro set mirrors the capability-based vocabulary used by
/// abseil/LLVM:
///   TELEIOS_GUARDED_BY(mu)     data member readable/writable only with
///                              `mu` held
///   TELEIOS_PT_GUARDED_BY(mu)  pointed-to data guarded by `mu`
///   TELEIOS_REQUIRES(mu)       function must be called with `mu` held
///   TELEIOS_REQUIRES_SHARED(mu) ... with at least shared ownership
///   TELEIOS_ACQUIRE(mu) / TELEIOS_RELEASE(mu)
///                              function acquires / releases `mu`
///   TELEIOS_EXCLUDES(mu)       function must NOT be called with `mu`
///                              held (deadlock prevention)
///   TELEIOS_NO_THREAD_SAFETY_ANALYSIS
///                              opt a function out (last resort; say why)

#if defined(__clang__) && defined(__has_attribute)
#define TELEIOS_THREAD_ANNOTATION_(x) __has_attribute(x)
#else
#define TELEIOS_THREAD_ANNOTATION_(x) 0
#endif

#if TELEIOS_THREAD_ANNOTATION_(guarded_by)
#define TELEIOS_GUARDED_BY(x) __attribute__((guarded_by(x)))
#else
#define TELEIOS_GUARDED_BY(x)
#endif

#if TELEIOS_THREAD_ANNOTATION_(pt_guarded_by)
#define TELEIOS_PT_GUARDED_BY(x) __attribute__((pt_guarded_by(x)))
#else
#define TELEIOS_PT_GUARDED_BY(x)
#endif

#if TELEIOS_THREAD_ANNOTATION_(capability)
#define TELEIOS_CAPABILITY(x) __attribute__((capability(x)))
#else
#define TELEIOS_CAPABILITY(x)
#endif

#if TELEIOS_THREAD_ANNOTATION_(scoped_lockable)
#define TELEIOS_SCOPED_CAPABILITY __attribute__((scoped_lockable))
#else
#define TELEIOS_SCOPED_CAPABILITY
#endif

#if TELEIOS_THREAD_ANNOTATION_(requires_capability)
#define TELEIOS_REQUIRES(...) \
  __attribute__((requires_capability(__VA_ARGS__)))
#else
#define TELEIOS_REQUIRES(...)
#endif

#if TELEIOS_THREAD_ANNOTATION_(requires_shared_capability)
#define TELEIOS_REQUIRES_SHARED(...) \
  __attribute__((requires_shared_capability(__VA_ARGS__)))
#else
#define TELEIOS_REQUIRES_SHARED(...)
#endif

#if TELEIOS_THREAD_ANNOTATION_(acquire_capability)
#define TELEIOS_ACQUIRE(...) __attribute__((acquire_capability(__VA_ARGS__)))
#else
#define TELEIOS_ACQUIRE(...)
#endif

#if TELEIOS_THREAD_ANNOTATION_(acquire_shared_capability)
#define TELEIOS_ACQUIRE_SHARED(...) \
  __attribute__((acquire_shared_capability(__VA_ARGS__)))
#else
#define TELEIOS_ACQUIRE_SHARED(...)
#endif

#if TELEIOS_THREAD_ANNOTATION_(release_capability)
#define TELEIOS_RELEASE(...) __attribute__((release_capability(__VA_ARGS__)))
#else
#define TELEIOS_RELEASE(...)
#endif

#if TELEIOS_THREAD_ANNOTATION_(release_shared_capability)
#define TELEIOS_RELEASE_SHARED(...) \
  __attribute__((release_shared_capability(__VA_ARGS__)))
#else
#define TELEIOS_RELEASE_SHARED(...)
#endif

#if TELEIOS_THREAD_ANNOTATION_(try_acquire_capability)
#define TELEIOS_TRY_ACQUIRE(...) \
  __attribute__((try_acquire_capability(__VA_ARGS__)))
#else
#define TELEIOS_TRY_ACQUIRE(...)
#endif

#if TELEIOS_THREAD_ANNOTATION_(locks_excluded)
#define TELEIOS_EXCLUDES(...) __attribute__((locks_excluded(__VA_ARGS__)))
#else
#define TELEIOS_EXCLUDES(...)
#endif

#if TELEIOS_THREAD_ANNOTATION_(assert_capability)
#define TELEIOS_ASSERT_HELD(...) \
  __attribute__((assert_capability(__VA_ARGS__)))
#else
#define TELEIOS_ASSERT_HELD(...)
#endif

#if TELEIOS_THREAD_ANNOTATION_(lock_returned)
#define TELEIOS_LOCK_RETURNED(x) __attribute__((lock_returned(x)))
#else
#define TELEIOS_LOCK_RETURNED(x)
#endif

#if TELEIOS_THREAD_ANNOTATION_(no_thread_safety_analysis)
#define TELEIOS_NO_THREAD_SAFETY_ANALYSIS \
  __attribute__((no_thread_safety_analysis))
#else
#define TELEIOS_NO_THREAD_SAFETY_ANALYSIS
#endif

// Runtime lock-order validation (cmake -DTELEIOS_DEADLOCK_CHECK=ON):
// every acquisition through the wrappers below reports to the process-
// wide deadlock graph in common/deadlock.h, which aborts with the cycle
// when an acquisition order inverts. Off (the default) these hooks
// compile to nothing and the wrappers stay zero-cost veneers.
#if defined(TELEIOS_DEADLOCK_CHECK)
#include "common/deadlock.h"
#define TELEIOS_DL_ACQUIRE_(mu) ::teleios::deadlock::OnAcquire(mu)
#define TELEIOS_DL_ACQUIRED_(mu) ::teleios::deadlock::OnAcquired(mu)
#define TELEIOS_DL_TRY_ACQUIRED_(mu) ::teleios::deadlock::OnTryAcquired(mu)
#define TELEIOS_DL_RELEASE_(mu) ::teleios::deadlock::OnRelease(mu)
#define TELEIOS_DL_DESTROY_(mu) ::teleios::deadlock::OnDestroy(mu)
#else
#define TELEIOS_DL_ACQUIRE_(mu) ((void)0)
#define TELEIOS_DL_ACQUIRED_(mu) ((void)0)
#define TELEIOS_DL_TRY_ACQUIRED_(mu) ((void)0)
#define TELEIOS_DL_RELEASE_(mu) ((void)0)
#define TELEIOS_DL_DESTROY_(mu) ((void)0)
#endif

namespace teleios {

/// An annotated std::mutex: a capability the analysis can track. Same
/// size and cost as the raw primitive; `native()` exposes the underlying
/// std::mutex for std::condition_variable waits (the analysis cannot see
/// through a condition variable anyway — the RAII wrappers below keep
/// the acquire/release bookkeeping correct around it).
class TELEIOS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() { TELEIOS_DL_DESTROY_(this); }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TELEIOS_ACQUIRE() {
    TELEIOS_DL_ACQUIRE_(this);
    mu_.lock();
    TELEIOS_DL_ACQUIRED_(this);
  }
  void Unlock() TELEIOS_RELEASE() {
    TELEIOS_DL_RELEASE_(this);
    mu_.unlock();
  }
  bool TryLock() TELEIOS_TRY_ACQUIRE(true) {
    bool ok = mu_.try_lock();
    if (ok) TELEIOS_DL_TRY_ACQUIRED_(this);
    return ok;
  }

  std::mutex& native() { return mu_; }

 private:
  // teleios-lint: allow(TL002) -- the wrapper IS the capability.
  std::mutex mu_;
};

/// An annotated std::shared_mutex: exclusive writers, shared readers.
class TELEIOS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  ~SharedMutex() { TELEIOS_DL_DESTROY_(this); }
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() TELEIOS_ACQUIRE() {
    TELEIOS_DL_ACQUIRE_(this);
    mu_.lock();
    TELEIOS_DL_ACQUIRED_(this);
  }
  void Unlock() TELEIOS_RELEASE() {
    TELEIOS_DL_RELEASE_(this);
    mu_.unlock();
  }
  void LockShared() TELEIOS_ACQUIRE_SHARED() {
    // Shared holders share the same graph node as writers: reader/writer
    // order cycles deadlock just the same.
    TELEIOS_DL_ACQUIRE_(this);
    mu_.lock_shared();
    TELEIOS_DL_ACQUIRED_(this);
  }
  void UnlockShared() TELEIOS_RELEASE_SHARED() {
    TELEIOS_DL_RELEASE_(this);
    mu_.unlock_shared();
  }

 private:
  // teleios-lint: allow(TL002) -- the wrapper IS the capability.
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex, std::lock_guard-shaped but visible
/// to the analysis. Built on std::unique_lock so condition variables can
/// wait through `native()`; it is always re-locked when the scope ends.
class TELEIOS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TELEIOS_ACQUIRE(mu)
      : lock_((TELEIOS_DL_ACQUIRE_(&mu), mu.native())) {
    TELEIOS_DL_ACQUIRED_(&mu);
#if defined(TELEIOS_DEADLOCK_CHECK)
    dl_mu_ = &mu;
#endif
  }
  ~MutexLock() TELEIOS_RELEASE() {
#if defined(TELEIOS_DEADLOCK_CHECK)
    TELEIOS_DL_RELEASE_(dl_mu_);
#endif
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// For std::condition_variable::wait(...); the wait releases and
  /// re-acquires the mutex internally, invisibly to the analysis, and
  /// holds it again when it returns — the capability state stays
  /// truthful.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
#if defined(TELEIOS_DEADLOCK_CHECK)
  const void* dl_mu_ = nullptr;
#endif
};

/// RAII exclusive (writer) lock over a SharedMutex.
class TELEIOS_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) TELEIOS_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() TELEIOS_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class TELEIOS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) TELEIOS_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() TELEIOS_RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace teleios

#endif  // TELEIOS_COMMON_THREAD_ANNOTATIONS_H_
