#ifndef TELEIOS_COMMON_STRINGS_H_
#define TELEIOS_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace teleios {

/// Splits `input` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view input, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

/// ASCII lowercase copy.
std::string StrLower(std::string_view s);

bool StrStartsWith(std::string_view s, std::string_view prefix);
bool StrEndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool StrEqualsIgnoreCase(std::string_view a, std::string_view b);

/// Parses a signed 64-bit integer from the whole of `s`.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a double from the whole of `s`.
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace teleios

#endif  // TELEIOS_COMMON_STRINGS_H_
