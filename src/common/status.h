#ifndef TELEIOS_COMMON_STATUS_H_
#define TELEIOS_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace teleios {

/// Canonical error space for all fallible TELEIOS operations.
///
/// TELEIOS never throws on library paths (Google style); every fallible
/// public API returns a `Status` or a `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kTypeError,
  kIoError,
  kDataLoss,
  kUnimplemented,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
  kUnavailable,
};

/// Returns a short human-readable name ("Ok", "ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error outcome, cheap to copy on the success path.
///
/// `[[nodiscard]]` on the class makes every function returning a Status
/// warn when the caller drops the return: an ignored error is either a
/// latent bug or must be an explicit, commented `(void)` cast.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  /// Unrecoverable corruption: a checksum mismatch or torn on-disk state
  /// (the file was read successfully but its bytes are not what was
  /// written).
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// The caller asked for the work to stop (cooperative cancellation).
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// A deadline attached to the work expired before it completed.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// A resource budget (memory, quota) was exhausted; retrying with a
  /// smaller request or a larger budget can succeed.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// The service is temporarily refusing work (overload shed, open
  /// circuit breaker); the request itself was fine — try again later.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ParseError: unexpected token ')'" or "OK".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error outcome; holds T on success, Status otherwise.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: `return 42;`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status: `return Status::NotFound(...)`.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  /// Requires ok().
  T& value() & { return std::get<T>(repr_); }
  const T& value() const& { return std::get<T>(repr_); }
  T&& value() && { return std::move(std::get<T>(repr_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace teleios

/// Propagates a non-OK Status to the caller.
#define TELEIOS_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::teleios::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

#define TELEIOS_CONCAT_IMPL_(a, b) a##b
#define TELEIOS_CONCAT_(a, b) TELEIOS_CONCAT_IMPL_(a, b)

/// Evaluates a Result<T> expression; on error returns the Status, else
/// binds the value to `lhs`.
#define TELEIOS_ASSIGN_OR_RETURN(lhs, expr)                        \
  TELEIOS_ASSIGN_OR_RETURN_IMPL_(                                  \
      TELEIOS_CONCAT_(_teleios_result_, __LINE__), lhs, expr)

#define TELEIOS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value();

#endif  // TELEIOS_COMMON_STATUS_H_
