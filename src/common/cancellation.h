#ifndef TELEIOS_COMMON_CANCELLATION_H_
#define TELEIOS_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "common/status.h"

namespace teleios {

/// Cooperative cancellation for long-running parallel work. Lives in
/// common/ (the bottom layer) rather than exec/ because the io retry
/// policy, the obs query registry, and the governor admission queue all
/// consume tokens from *below* exec in the layer DAG enforced by
/// tools/teleios_analyze.
///
/// A token is
/// shared between the party that may abort the work (a user hitting ^C,
/// an observatory query timeout) and the morsels executing it: the
/// scheduler checks the token between morsels, and long morsel bodies are
/// expected to poll Check() themselves at a reasonable cadence.
///
/// Cancellation and deadline expiry are sticky: once a token reports a
/// non-OK Check() it never goes back to OK. Thread-safe; cheap enough to
/// poll from inner loops (two relaxed atomic loads plus, when a deadline
/// is set, one steady_clock read).
///
/// Tokens can be chained: LinkParent() attaches a second token whose
/// cancellation/deadline this one also honors. The query registry uses
/// this to combine the caller's token (their ^C / deadline) with its own
/// per-query token (KillQuery) into one handle the engines poll.
class CancellationToken {
 public:
  CancellationToken() = default;

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation; running morsels finish, queued ones do not
  /// start.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Chains `parent` (may be nullptr): this token reports cancelled /
  /// expired whenever the parent does, and deadline() returns the
  /// earlier of the two. Must be called before the token is shared with
  /// other threads (the link is a plain pointer write), and `parent`
  /// must outlive this token.
  void LinkParent(const CancellationToken* parent) { parent_ = parent; }
  const CancellationToken* parent() const { return parent_; }

  /// Arms an absolute deadline; Check() fails once it has passed.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Convenience: deadline `timeout` from now.
  void CancelAfter(std::chrono::nanoseconds timeout) {
    SetDeadline(std::chrono::steady_clock::now() + timeout);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed) ||
           (parent_ != nullptr && parent_->cancelled());
  }

  /// True once SetDeadline/CancelAfter armed a deadline (here or on a
  /// linked parent).
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline ||
           (parent_ != nullptr && parent_->has_deadline());
  }

  /// The earliest armed deadline in the chain; meaningless unless
  /// has_deadline(). Exposed so cooperating layers (retry backoff,
  /// admission queues) can bound their own waits by the caller's
  /// deadline instead of overshooting it.
  std::chrono::steady_clock::time_point deadline() const {
    // deadline_ns_ holds a raw time_since_epoch().count(), i.e. native
    // steady_clock duration units.
    int64_t own = deadline_ns_.load(std::memory_order_relaxed);
    if (parent_ != nullptr && parent_->has_deadline()) {
      int64_t theirs = parent_->deadline().time_since_epoch().count();
      if (own == kNoDeadline || theirs < own) own = theirs;
    }
    return std::chrono::steady_clock::time_point(
        std::chrono::steady_clock::duration(own));
  }

  /// True when the token (or a linked parent) was cancelled or its
  /// deadline has passed.
  bool Expired() const {
    if (cancelled()) return true;
    int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != kNoDeadline &&
        std::chrono::steady_clock::now().time_since_epoch().count() >=
            deadline) {
      return true;
    }
    return parent_ != nullptr && parent_->Expired();
  }

  /// OK while the work may continue; Cancelled / DeadlineExceeded once it
  /// must stop.
  Status Check() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("work was cancelled");
    }
    int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != kNoDeadline &&
        std::chrono::steady_clock::now().time_since_epoch().count() >=
            deadline) {
      return Status::DeadlineExceeded("deadline expired");
    }
    if (parent_ != nullptr) return parent_->Check();
    return Status::OK();
  }

 private:
  static constexpr int64_t kNoDeadline =
      std::numeric_limits<int64_t>::max();

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
  /// Set once before sharing (LinkParent); never mutated afterwards.
  const CancellationToken* parent_ = nullptr;
};

/// The token the *current thread's* work should poll; nullptr when no
/// governed statement is active. The observatory facade installs the
/// per-query registry token here for a statement's execution, and
/// ParallelFor both defaults its between-morsel checks to it and
/// re-installs it on pool workers for the duration of a parallel region
/// — so a KillQuery reaches morsel-driven scans that were written
/// without any token plumbing.
const CancellationToken* CurrentCancel();

/// Installs `token` as the current thread's cancel (nullptr clears);
/// returns the previous value.
const CancellationToken* SetCurrentCancel(const CancellationToken* token);

/// RAII thread-local cancel override.
class ScopedCancel {
 public:
  explicit ScopedCancel(const CancellationToken* token)
      : prev_(SetCurrentCancel(token)) {}
  ~ScopedCancel() { SetCurrentCancel(prev_); }
  ScopedCancel(const ScopedCancel&) = delete;
  ScopedCancel& operator=(const ScopedCancel&) = delete;

 private:
  const CancellationToken* prev_;
};

}  // namespace teleios

#endif  // TELEIOS_COMMON_CANCELLATION_H_
