#ifndef TELEIOS_COMMON_VALUE_H_
#define TELEIOS_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace teleios {

/// Scalar type tags shared by the relational engine, SciQL and SPARQL
/// expression evaluation.
enum class ValueType {
  kNull = 0,
  kBool,
  kInt64,
  kFloat64,
  kString,
};

const char* ValueTypeName(ValueType t);

/// A dynamically-typed scalar. SQL NULL is `Value()` (kNull).
class Value {
 public:
  Value() : repr_(std::monostate{}) {}
  explicit Value(bool v) : repr_(v) {}
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(int v) : repr_(static_cast<int64_t>(v)) {}
  explicit Value(double v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}
  explicit Value(const char* v) : repr_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (repr_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kBool;
      case 2:
        return ValueType::kInt64;
      case 3:
        return ValueType::kFloat64;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; require the matching type.
  bool AsBool() const { return std::get<bool>(repr_); }
  int64_t AsInt64() const { return std::get<int64_t>(repr_); }
  double AsFloat64() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// Numeric widening: int64 or float64 as double.
  Result<double> ToDouble() const;
  /// Coercion to int64 (from bool/int64; float64 truncates).
  Result<int64_t> ToInt64() const;
  /// Effective boolean value (SPARQL-style: false for 0, "", null).
  bool Truthy() const;

  /// Display form, "NULL" for null.
  std::string ToString() const;

  /// SQL-style three-way comparison; null sorts first. Numeric types
  /// compare numerically across int/float.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> repr_;
};

}  // namespace teleios

#endif  // TELEIOS_COMMON_VALUE_H_
