#include "common/cancellation.h"

namespace teleios {

namespace {

thread_local const CancellationToken* t_current_cancel = nullptr;

}  // namespace

const CancellationToken* CurrentCancel() { return t_current_cancel; }

const CancellationToken* SetCurrentCancel(const CancellationToken* token) {
  const CancellationToken* prev = t_current_cancel;
  t_current_cancel = token;
  return prev;
}

}  // namespace teleios
