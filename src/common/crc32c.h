#ifndef TELEIOS_COMMON_CRC32C_H_
#define TELEIOS_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace teleios {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum used by RocksDB, LevelDB and iSCSI. Dependency-free
/// table-driven software implementation; detects all single-bit and
/// single-byte corruptions and all burst errors up to 32 bits, which is
/// what the storage layer needs to turn silent corruption into
/// StatusCode::kDataLoss.
///
/// `Crc32c(data, n)` computes the checksum of a buffer;
/// `Crc32cExtend(crc, data, n)` continues a running checksum so large
/// payloads can be checksummed in chunks without concatenation.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

inline uint32_t Crc32c(std::string_view s) {
  return Crc32c(s.data(), s.size());
}

}  // namespace teleios

#endif  // TELEIOS_COMMON_CRC32C_H_
