#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cctype>

namespace teleios {

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string StrLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StrStartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool StrEndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool StrEqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Result<int64_t> ParseInt64(std::string_view s) {
  if (s.empty()) return Status::ParseError("empty integer");
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  if (s.empty()) return Status::ParseError("empty double");
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid double: '" + buf + "'");
  }
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace teleios
