#include "common/deadlock.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <vector>

namespace teleios::deadlock {

namespace {

// The validator's own state is guarded by a raw std::mutex on purpose:
// it must never recurse into the instrumented wrappers.
std::mutex& GraphMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

struct Graph {
  // held -> {acquired while held}; nodes exist only while their mutex
  // is alive (OnDestroy erases them).
  std::map<const void*, std::set<const void*>> edges;
  // Stable small ids for readable reports ("M3 -> M7" beats pointers).
  std::map<const void*, size_t> ids;
  size_t next_id = 0;
};

Graph& TheGraph() {
  static Graph* graph = new Graph();
  return *graph;
}

std::atomic<size_t> g_inversions{0};
std::atomic<Handler> g_handler{nullptr};

// Per-thread stack of wrapper addresses, innermost acquisition last.
thread_local std::vector<const void*> t_held;

void DefaultHandler(const std::string& report) {
  std::fprintf(stderr, "%s", report.c_str());
  std::fflush(stderr);
  std::abort();
}

void Report(const std::string& report) {
  g_inversions.fetch_add(1, std::memory_order_relaxed);
  Handler handler = g_handler.load(std::memory_order_acquire);
  (handler != nullptr ? handler : &DefaultHandler)(report);
}

size_t IdOf(Graph& graph, const void* mu) {
  auto [it, inserted] = graph.ids.emplace(mu, graph.next_id);
  if (inserted) ++graph.next_id;
  return it->second;
}

std::string Name(Graph& graph, const void* mu) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "M%zu [%p]", IdOf(graph, mu), mu);
  return buf;
}

/// DFS from `from` looking for `target`; fills `path` (from ... target)
/// when found. Must hold GraphMutex().
bool FindPath(const Graph& graph, const void* from, const void* target,
              std::set<const void*>* visited,
              std::vector<const void*>* path) {
  if (!visited->insert(from).second) return false;
  path->push_back(from);
  if (from == target) return true;
  auto it = graph.edges.find(from);
  if (it != graph.edges.end()) {
    for (const void* next : it->second) {
      if (FindPath(graph, next, target, visited, path)) return true;
    }
  }
  path->pop_back();
  return false;
}

std::string CycleReport(Graph& graph, const void* held, const void* mu,
                        const std::vector<const void*>& chain) {
  std::string out =
      "teleios deadlock check: lock-order inversion (potential "
      "deadlock)\n  this thread holds " +
      Name(graph, held) + " and is acquiring " + Name(graph, mu) +
      ",\n  but the process has already acquired them in the opposite "
      "order:\n";
  for (size_t i = 0; i + 1 < chain.size(); ++i) {
    out += "    " + Name(graph, chain[i]) + " was held while acquiring " +
           Name(graph, chain[i + 1]) + "\n";
  }
  out +=
      "  run tools/teleios_analyze for the static witness chain "
      "(file:line) of each edge\n";
  return out;
}

}  // namespace

void OnAcquire(const void* mu) {
  for (const void* held : t_held) {
    if (held == mu) {
      std::lock_guard<std::mutex> lock(GraphMutex());
      Report("teleios deadlock check: recursive acquisition of " +
             Name(TheGraph(), mu) +
             " (non-recursive mutex already held by this thread)\n");
      return;
    }
  }
  if (t_held.empty()) return;
  std::lock_guard<std::mutex> lock(GraphMutex());
  Graph& graph = TheGraph();
  // Would any new held -> mu edge close a cycle? That is exactly when
  // mu already reaches a held mutex.
  for (const void* held : t_held) {
    std::set<const void*> visited;
    std::vector<const void*> chain;
    if (FindPath(graph, mu, held, &visited, &chain)) {
      Report(CycleReport(graph, held, mu, chain));
      break;
    }
  }
  for (const void* held : t_held) {
    graph.edges[held].insert(mu);
    IdOf(graph, held);
  }
  IdOf(graph, mu);
}

void OnAcquired(const void* mu) { t_held.push_back(mu); }

void OnTryAcquired(const void* mu) { t_held.push_back(mu); }

void OnRelease(const void* mu) {
  auto it = std::find(t_held.rbegin(), t_held.rend(), mu);
  if (it != t_held.rend()) t_held.erase(std::next(it).base());
}

void OnDestroy(const void* mu) {
  std::lock_guard<std::mutex> lock(GraphMutex());
  Graph& graph = TheGraph();
  graph.edges.erase(mu);
  for (auto& [from, to] : graph.edges) to.erase(mu);
  graph.ids.erase(mu);
}

Handler SetHandler(Handler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

size_t InversionCount() {
  return g_inversions.load(std::memory_order_relaxed);
}

void ResetGraphForTest() {
  std::lock_guard<std::mutex> lock(GraphMutex());
  Graph& graph = TheGraph();
  graph.edges.clear();
  graph.ids.clear();
  graph.next_id = 0;
  g_inversions.store(0, std::memory_order_relaxed);
}

}  // namespace teleios::deadlock
