#include "common/crc32c.h"

#include <array>

namespace teleios {

namespace {

/// Slice-by-4 lookup tables, built once at first use. Table 0 is the
/// classic byte-at-a-time table for the reflected Castagnoli polynomial;
/// tables 1..3 shift it by one extra byte each so the hot loop consumes
/// four input bytes per iteration.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto& t = Tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
    crc = t[3][crc & 0xFF] ^ t[2][(crc >> 8) & 0xFF] ^
          t[1][(crc >> 16) & 0xFF] ^ t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n--) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace teleios
