#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace teleios {

namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("TELEIOS_LOG_LEVEL");
  LogLevel level = LogLevel::kInfo;
  // Intentional drop: an unparseable TELEIOS_LOG_LEVEL falls back to
  // kInfo — logging setup must never fail, and there is nowhere to
  // report to this early in startup.
  if (env != nullptr) (void)ParseLogLevel(env, &level);
  return level;
}

std::atomic<LogLevel> g_level{InitialLevel()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

bool ParseLogLevel(const std::string& name, LogLevel* level) {
  std::string lower = StrLower(StrTrim(name));
  if (lower == "debug" || lower == "0") {
    *level = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "2") {
    *level = LogLevel::kWarning;
  } else if (lower == "error" || lower == "3") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= static_cast<int>(GetLogLevel())) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace teleios
