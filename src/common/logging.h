#ifndef TELEIOS_COMMON_LOGGING_H_
#define TELEIOS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace teleios {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimum level that is emitted. Defaults to kInfo, overridable at
/// startup with the TELEIOS_LOG_LEVEL environment variable (a name
/// accepted by ParseLogLevel). Both accessors are thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warning" (or "warn") / "error" (any case)
/// or a numeric level 0-3; false on anything else.
[[nodiscard]] bool ParseLogLevel(const std::string& name, LogLevel* level);

namespace internal {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace teleios

#define TELEIOS_LOG(level)                                      \
  ::teleios::internal::LogMessage(::teleios::LogLevel::k##level, \
                                  __FILE__, __LINE__)

#endif  // TELEIOS_COMMON_LOGGING_H_
