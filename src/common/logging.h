#ifndef TELEIOS_COMMON_LOGGING_H_
#define TELEIOS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace teleios {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimum level that is emitted; defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace teleios

#define TELEIOS_LOG(level)                                      \
  ::teleios::internal::LogMessage(::teleios::LogLevel::k##level, \
                                  __FILE__, __LINE__)

#endif  // TELEIOS_COMMON_LOGGING_H_
