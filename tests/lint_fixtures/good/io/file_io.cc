// GOOD fixture: raw I/O is allowed inside an io/ directory (this is the
// seam itself).
#include <filesystem>
#include <fstream>

bool Probe(const char* path) {
  std::ifstream in(path);
  return in.good() && std::filesystem::exists(path);
}
