// TL006 fixture: the server directory IS the socket boundary — the raw
// API is allowed here (this mirrors src/server/socket.cc).
#include <arpa/inet.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

int Listen(int port) {
  int fd = ::socket(2, 1, 0);
  unsigned short net_port = htons(static_cast<unsigned short>(port));
  return fd + net_port;
}
