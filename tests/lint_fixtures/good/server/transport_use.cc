// TL006 fixture: transport implementations live in src/server/, where
// the raw socket API is the point (this mirrors src/server/transport.cc
// and fault_transport.cc sitting directly on the syscall layer).
#include <netinet/in.h>
#include <sys/socket.h>

class TcpLikeTransport {
 public:
  int Connect(int port) {
    int fd = ::socket(2, 1, 0);
    unsigned short net_port = htons(static_cast<unsigned short>(port));
    return fd + net_port;
  }
  int Accept(int fd) { return ::accept(fd, nullptr, nullptr); }
};
