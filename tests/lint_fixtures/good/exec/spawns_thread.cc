// GOOD fixture: std::thread is allowed inside an exec/ directory (the
// thread pool implementation).
#include <thread>

void Spawn(void (*fn)()) {
  std::thread t(fn);
  t.join();
}
