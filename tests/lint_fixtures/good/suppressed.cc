// GOOD fixture: an explicit suppression comment silences a rule on the
// next line.
#include <mutex>

class ExternalGuard {
 private:
  // teleios-lint: allow(TL002) -- guards state owned elsewhere.
  std::mutex mu_;
};
