// GOOD fixture: a mutex member whose class annotates what it guards.
#include <mutex>

#define TELEIOS_GUARDED_BY(x)

class Counter {
 private:
  std::mutex mu_;
  int count_ TELEIOS_GUARDED_BY(mu_) = 0;
};
