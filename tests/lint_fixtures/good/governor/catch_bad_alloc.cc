// GOOD fixture: catching std::bad_alloc is allowed inside a governor/
// directory (this is where WithOomGuard, the sanctioned translation to
// kResourceExhausted, lives).
#include <new>
#include <vector>

bool TryGrow(std::vector<int>* v, int n) {
  try {
    v->resize(n);
    return true;
  } catch (const std::bad_alloc&) {
    return false;
  }
}
