// GOOD fixture: catch (...) that rethrows (and one that captures).
#include <exception>

void Risky();

void Wrapper(std::exception_ptr* out) {
  try {
    Risky();
  } catch (...) {
    *out = std::current_exception();
  }
  try {
    Risky();
  } catch (...) {
    throw;
  }
}
