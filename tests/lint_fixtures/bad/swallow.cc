// BAD fixture: a catch (...) that swallows must fire TL004.
void Risky();

void Safe() {
  try {
    Risky();
  } catch (...) {
  }
}
