// BAD fixture: a mutex member with no TELEIOS_GUARDED_BY member in the
// same class must fire TL002.
#include <mutex>

class Counter {
 public:
  void Inc() {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
  }

 private:
  std::mutex mu_;
  int count_ = 0;  // should be TELEIOS_GUARDED_BY(mu_)
};
