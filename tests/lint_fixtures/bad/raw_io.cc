// BAD fixture: raw stream I/O outside src/io/ must fire TL001.
#include <fstream>

void WriteLog(const char* path) {
  std::ofstream out(path);
  out << "hello\n";
}
