// BAD fixture: std::filesystem outside src/io/ must fire TL001.
#include <filesystem>

bool Exists(const char* path) {
  return std::filesystem::exists(path);
}
