// BAD fixture: std::thread outside src/exec/ must fire TL003.
#include <thread>

void Background(void (*fn)()) {
  std::thread t(fn);
  t.detach();
}
