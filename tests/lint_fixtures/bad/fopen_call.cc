// BAD fixture: C stdio outside src/io/ must fire TL001.
#include <cstdio>

void Touch(const char* path) {
  FILE* f = fopen(path, "w");
  if (f) fclose(f);
}
