// BAD fixture: a local std::bad_alloc handler outside src/governor/
// must fire TL005 — OOM policy belongs to governor::WithOomGuard.
#include <new>
#include <vector>

bool TryGrow(std::vector<int>* v, int n) {
  try {
    v->resize(n);
    return true;
  } catch (const std::bad_alloc&) {
    return false;
  }
}
