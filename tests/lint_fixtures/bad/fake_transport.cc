// TL006 fixture: a hand-rolled "transport" outside src/server/. The
// swappable seam (server::Transport / SetTransport) exists precisely so
// nobody re-implements connection plumbing elsewhere — a private
// transport bypasses fault injection, peer accounting, and shed policy.
#include <netinet/in.h>

class FakeTransport {
 public:
  int Connect(int port) {
    int fd = socket(2, 1, 0);
    unsigned short net_port = htons(static_cast<unsigned short>(port));
    return fd + net_port;
  }
  int Accept(int fd) { return accept(fd, nullptr, nullptr); }
};
