// TL006 fixture: raw socket API outside src/server/.
#include <sys/socket.h>

int OpenRaw(int port) {
  int fd = socket(2, 1, 0);
  unsigned short net_port = htons(static_cast<unsigned short>(port));
  int peer = accept(fd, nullptr, nullptr);
  return peer + net_port;
}
