#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/observatory.h"
#include "eo/scene.h"
#include "vault/formats.h"
#include "vault/vault.h"

namespace teleios::vault {
namespace {

namespace fs = std::filesystem;

class VaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vault_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  TerRaster MakeRaster(const std::string& name, int w = 8, int h = 6) {
    TerRaster r;
    r.name = name;
    r.satellite = "Meteosat-9";
    r.sensor = "SEVIRI";
    r.width = w;
    r.height = h;
    r.acquisition_time = 1187997600;
    r.transform = {21.0, 38.5, 0.01, -0.01, 0, 0};
    r.band_names = {"IR039", "IR108"};
    r.bands.resize(2);
    for (auto& band : r.bands) {
      band.resize(static_cast<size_t>(w) * h);
      for (size_t i = 0; i < band.size(); ++i) {
        band[i] = 290.0 + static_cast<double>(i % 17);
      }
    }
    return r;
  }

  fs::path dir_;
};

TEST_F(VaultTest, TerRoundTrip) {
  TerRaster r = MakeRaster("msg1");
  std::string path = (dir_ / "msg1.ter").string();
  ASSERT_TRUE(WriteTer(r, path).ok());
  auto loaded = ReadTer(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, "msg1");
  EXPECT_EQ(loaded->width, 8);
  EXPECT_EQ(loaded->band_names.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded->bands[0][5], r.bands[0][5]);
  // Full geotransform round trip (a field-order bug here once broke all
  // product footprints).
  EXPECT_DOUBLE_EQ(loaded->transform.origin_x, 21.0);
  EXPECT_DOUBLE_EQ(loaded->transform.origin_y, 38.5);
  EXPECT_DOUBLE_EQ(loaded->transform.pixel_w, 0.01);
  EXPECT_DOUBLE_EQ(loaded->transform.pixel_h, -0.01);
  EXPECT_DOUBLE_EQ(loaded->transform.rot_x, 0.0);
  EXPECT_DOUBLE_EQ(loaded->transform.rot_y, 0.0);
}

TEST_F(VaultTest, TerHeaderOnlyReadsNoPayload) {
  TerRaster r = MakeRaster("msg2", 64, 64);
  std::string path = (dir_ / "msg2.ter").string();
  ASSERT_TRUE(WriteTer(r, path).ok());
  auto header = ReadTerHeader(path);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->name, "msg2");
  EXPECT_EQ(header->width, 64);
  EXPECT_EQ(header->band_names.size(), 2u);
  EXPECT_EQ(header->path, path);
  EXPECT_NE(header->FootprintWkt().find("POLYGON"), std::string::npos);
}

TEST_F(VaultTest, TerRejectsGarbage) {
  std::string path = (dir_ / "junk.ter").string();
  {
    std::ofstream os(path);
    os << "garbage";
  }
  EXPECT_FALSE(ReadTer(path).ok());
  EXPECT_FALSE(ReadTerHeader(path).ok());
}

TEST_F(VaultTest, VecRoundTripWithEscapes) {
  VecFile file;
  file.name = "hotspots";
  VecFeature f;
  f.id = 7;
  f.attributes["label"] = "fire; near |pipe| a=b";
  f.attributes["conf"] = "0.93";
  f.geometry = geo::Geometry::MakeBox(21, 37, 22, 38);
  file.features.push_back(f);
  std::string path = (dir_ / "h.vec").string();
  ASSERT_TRUE(WriteVec(file, path).ok());
  auto loaded = ReadVec(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, "hotspots");
  ASSERT_EQ(loaded->features.size(), 1u);
  EXPECT_EQ(loaded->features[0].id, 7);
  EXPECT_EQ(loaded->features[0].attributes.at("label"),
            "fire; near |pipe| a=b");
  EXPECT_DOUBLE_EQ(loaded->features[0].geometry.Area(), 1.0);
}

TEST_F(VaultTest, AttachHarvestsMetadataWithoutIngest) {
  ASSERT_TRUE(WriteTer(MakeRaster("a"), (dir_ / "a.ter").string()).ok());
  ASSERT_TRUE(WriteTer(MakeRaster("b"), (dir_ / "b.ter").string()).ok());
  storage::Catalog catalog;
  DataVault vault(&catalog);
  auto attached = vault.Attach(dir_.string());
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  EXPECT_EQ(*attached, 2u);
  EXPECT_EQ(vault.stats().rasters_ingested, 0u);  // lazy!
  // Metadata is queryable immediately.
  auto table = catalog.GetTable("vault_rasters");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 2u);
  EXPECT_EQ(vault.RasterNames().size(), 2u);
}

TEST_F(VaultTest, LazyIngestOnFirstTouchThenCached) {
  ASSERT_TRUE(WriteTer(MakeRaster("a"), (dir_ / "a.ter").string()).ok());
  storage::Catalog catalog;
  DataVault vault(&catalog);
  ASSERT_TRUE(vault.Attach(dir_.string()).ok());
  auto arr = vault.GetRasterArray("a");
  ASSERT_TRUE(arr.ok()) << arr.status().ToString();
  EXPECT_EQ(vault.stats().rasters_ingested, 1u);
  EXPECT_EQ(vault.stats().cache_hits, 0u);
  EXPECT_EQ((*arr)->num_cells(), 48u);
  EXPECT_EQ((*arr)->num_attributes(), 2u);
  // Second touch is a cache hit, not a re-ingest.
  auto again = vault.GetRasterArray("a");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(vault.stats().rasters_ingested, 1u);
  EXPECT_EQ(vault.stats().cache_hits, 1u);
  EXPECT_EQ(arr->get(), again->get());
}

TEST_F(VaultTest, BandArrayIngestsSingleBand) {
  ASSERT_TRUE(WriteTer(MakeRaster("a"), (dir_ / "a.ter").string()).ok());
  storage::Catalog catalog;
  DataVault vault(&catalog);
  ASSERT_TRUE(vault.Attach(dir_.string()).ok());
  auto band = vault.GetBandArray("a", "IR108");
  ASSERT_TRUE(band.ok());
  EXPECT_EQ((*band)->num_attributes(), 1u);
  EXPECT_FALSE(vault.GetBandArray("a", "NOPE").ok());
}

TEST_F(VaultTest, EvictionForcesReingest) {
  ASSERT_TRUE(WriteTer(MakeRaster("a"), (dir_ / "a.ter").string()).ok());
  storage::Catalog catalog;
  DataVault vault(&catalog);
  ASSERT_TRUE(vault.Attach(dir_.string()).ok());
  ASSERT_TRUE(vault.GetRasterArray("a").ok());
  vault.EvictCache();
  ASSERT_TRUE(vault.GetRasterArray("a").ok());
  EXPECT_EQ(vault.stats().rasters_ingested, 2u);
}

TEST_F(VaultTest, IngestAllIsEager) {
  ASSERT_TRUE(WriteTer(MakeRaster("a"), (dir_ / "a.ter").string()).ok());
  ASSERT_TRUE(WriteTer(MakeRaster("b"), (dir_ / "b.ter").string()).ok());
  storage::Catalog catalog;
  DataVault vault(&catalog);
  ASSERT_TRUE(vault.Attach(dir_.string()).ok());
  ASSERT_TRUE(vault.IngestAll().ok());
  EXPECT_EQ(vault.stats().rasters_ingested, 2u);
}

TEST_F(VaultTest, AttachVectors) {
  VecFile file;
  file.name = "coast";
  VecFeature f;
  f.id = 1;
  f.geometry = geo::Geometry::MakeBox(0, 0, 1, 1);
  file.features.push_back(f);
  ASSERT_TRUE(WriteVec(file, (dir_ / "coast.vec").string()).ok());
  storage::Catalog catalog;
  DataVault vault(&catalog);
  ASSERT_TRUE(vault.Attach(dir_.string()).ok());
  EXPECT_EQ(vault.VectorNames().size(), 1u);
  auto loaded = vault.GetVector("coast");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->features.size(), 1u);
  auto table = catalog.GetTable("vault_vectors");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 1u);
}

TEST_F(VaultTest, AttachCsvBecomesCatalogTable) {
  {
    std::ofstream os(dir_ / "stations.csv");
    os << "station,lat,lon,elevation\n";
    os << "Kalamata,37.07,22.03,6\n";
    os << "Tripoli,37.53,22.40,652\n";
  }
  storage::Catalog catalog;
  DataVault vault(&catalog);
  auto attached = vault.Attach(dir_.string());
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  EXPECT_EQ(*attached, 1u);
  auto table = catalog.GetTable("stations");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 2u);
  EXPECT_EQ((*table)->schema().field(0).type,
            storage::ColumnType::kString);
  EXPECT_EQ((*table)->schema().field(3).type,
            storage::ColumnType::kInt64);
  // Duplicate attach reports AlreadyExists (skipped by Attach).
  EXPECT_EQ(vault.AttachFile((dir_ / "stations.csv").string()).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(VaultTest, ErrorsSurface) {
  storage::Catalog catalog;
  DataVault vault(&catalog);
  EXPECT_FALSE(vault.Attach((dir_ / "nope").string()).ok());
  EXPECT_FALSE(vault.GetRasterArray("missing").ok());
  EXPECT_FALSE(vault.GetVector("missing").ok());
  EXPECT_FALSE(vault.AttachFile((dir_ / "x.txt").string()).ok());
}

TEST_F(VaultTest, AttachSkipsAndRecordsCorruptFiles) {
  ASSERT_TRUE(WriteTer(MakeRaster("good"), (dir_ / "a_good.ter").string()).ok());
  {
    std::ofstream os(dir_ / "b_junk.ter");
    os << "this is not a raster";
  }
  ASSERT_TRUE(WriteTer(MakeRaster("also"), (dir_ / "c_also.ter").string()).ok());
  storage::Catalog catalog;
  DataVault vault(&catalog);
  auto attached = vault.Attach(dir_.string());
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  EXPECT_EQ(*attached, 2u);  // the corrupt file did not abort the scan
  ASSERT_EQ(vault.attach_failures().size(), 1u);
  EXPECT_NE(vault.attach_failures()[0].path.find("b_junk.ter"),
            std::string::npos);
  EXPECT_FALSE(vault.attach_failures()[0].status.ok());
  EXPECT_EQ(vault.stats().attach_failures, 1u);
  EXPECT_EQ(vault.RasterNames().size(), 2u);
}

TEST_F(VaultTest, CorruptPayloadQuarantinesThenHeals) {
  TerRaster r = MakeRaster("a");
  std::string path = (dir_ / "a.ter").string();
  ASSERT_TRUE(WriteTer(r, path).ok());
  storage::Catalog catalog;
  DataVault vault(&catalog);
  vault.set_ingest_retry({/*max_attempts=*/2});
  ASSERT_TRUE(vault.Attach(dir_.string()).ok());

  // Corrupt one pixel byte behind the vault's back (header stays valid,
  // so attach-time metadata is fine but ingestion must catch it).
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-9, std::ios::end);
    char c;
    f.seekg(-9, std::ios::end);
    f.get(c);
    f.seekp(-9, std::ios::end);
    f.put(static_cast<char>(c ^ 0x20));
  }
  auto arr = vault.GetRasterArray("a");
  ASSERT_FALSE(arr.ok());
  EXPECT_EQ(arr.status().code(), StatusCode::kDataLoss);
  ASSERT_EQ(vault.QuarantinedNames().size(), 1u);
  EXPECT_EQ(vault.stats().ingest_failures, 1u);
  // Quarantined: fails fast with a sticky status mentioning quarantine.
  auto again = vault.GetRasterArray("a");
  ASSERT_FALSE(again.ok());
  EXPECT_NE(again.status().message().find("quarantined"), std::string::npos);

  // Heal with the file still corrupt: header reads fine... but the
  // payload CRC still fails, so it re-quarantines on next touch.
  EXPECT_EQ(vault.Heal(), 1u);
  EXPECT_FALSE(vault.GetRasterArray("a").ok());
  ASSERT_EQ(vault.QuarantinedNames().size(), 1u);

  // Re-export the product, heal, and ingestion recovers.
  ASSERT_TRUE(WriteTer(r, path).ok());
  EXPECT_EQ(vault.Heal(), 1u);
  auto recovered = vault.GetRasterArray("a");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(vault.QuarantinedNames().empty());
}

// Quarantine is durable state: a quarantined raster stays quarantined
// across a restart (via WAL replay), and Heal() clears it durably.
TEST_F(VaultTest, QuarantineSurvivesReopenAndHealClearsDurably) {
  fs::path archive = dir_ / "archive";
  fs::create_directories(archive);
  TerRaster r = MakeRaster("a");
  std::string path = (archive / "a.ter").string();
  ASSERT_TRUE(WriteTer(r, path).ok());
  const std::string db = (dir_ / "db").string();

  {
    core::VirtualEarthObservatory veo;
    ASSERT_TRUE(veo.Open(db).ok());
    veo.vault().set_ingest_retry({/*max_attempts=*/1});
    ASSERT_TRUE(veo.AttachArchive(archive.string()).ok());
    // Corrupt a payload byte behind the vault's back; the next ingest
    // quarantines, and the transition mirrors into the WAL.
    {
      std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
      char c;
      f.seekg(-9, std::ios::end);
      f.get(c);
      f.seekp(-9, std::ios::end);
      f.put(static_cast<char>(c ^ 0x20));
    }
    ASSERT_FALSE(veo.vault().GetRasterArray("a").ok());
    ASSERT_EQ(veo.vault().QuarantinedNames().size(), 1u);
  }
  {
    // Restart: the attachment AND the quarantine come back; the sticky
    // status fails fast without re-reading the bad payload.
    core::VirtualEarthObservatory veo;
    ASSERT_TRUE(veo.Open(db).ok());
    ASSERT_EQ(veo.vault().QuarantinedNames().size(), 1u);
    auto arr = veo.vault().GetRasterArray("a");
    ASSERT_FALSE(arr.ok());
    EXPECT_NE(arr.status().message().find("quarantined"), std::string::npos)
        << arr.status().ToString();
    // Repair the file and heal: the clear is durable too.
    ASSERT_TRUE(WriteTer(r, path).ok());
    EXPECT_EQ(veo.vault().Heal(), 1u);
    EXPECT_TRUE(veo.vault().QuarantinedNames().empty());
  }
  {
    core::VirtualEarthObservatory veo;
    ASSERT_TRUE(veo.Open(db).ok());
    EXPECT_TRUE(veo.vault().QuarantinedNames().empty());
    auto recovered = veo.vault().GetRasterArray("a");
    EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
    // The attachment itself also recovered: metadata is queryable.
    auto names = veo.Sql("SELECT name FROM vault_rasters");
    ASSERT_TRUE(names.ok());
    EXPECT_EQ(names->num_rows(), 1u);
  }
}

TEST_F(VaultTest, SceneRasterIntegration) {
  eo::SceneSpec spec;
  spec.width = 32;
  spec.height = 32;
  auto scene = eo::GenerateScene(spec);
  ASSERT_TRUE(scene.ok());
  ASSERT_TRUE(
      WriteTer(scene->ToTerRaster(), (dir_ / "scene.ter").string()).ok());
  storage::Catalog catalog;
  DataVault vault(&catalog);
  ASSERT_TRUE(vault.Attach(dir_.string()).ok());
  auto arr = vault.GetRasterArray("MSG2-SEVIRI-scene");
  ASSERT_TRUE(arr.ok());
  EXPECT_EQ((*arr)->num_attributes(), 6u);  // 4 bands + 2 masks
}

}  // namespace
}  // namespace teleios::vault
