// Parser robustness: every front end (SQL, SciQL, SPARQL, WKT, Turtle,
// VEC) must reject arbitrary garbage and mutated valid inputs with a
// clean error Status — never crash, hang, or accept nonsense silently.
// Deterministic pseudo-random fuzzing (seeded xorshift), so failures
// reproduce.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "core/observatory.h"
#include "geo/wkt.h"
#include "io/filesystem.h"
#include "rdf/turtle.h"
#include "relational/sql_parser.h"
#include "sciql/sciql_parser.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/socket.h"
#include "storage/persistence.h"
#include "strabon/sparql_parser.h"
#include "vault/formats.h"

namespace teleios {
namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 1) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
  }

 private:
  uint64_t state_;
};

/// Random printable-ish garbage (includes quotes, braces, unicode-ish
/// bytes).
std::string Garbage(Rng* rng, size_t length) {
  static const char kAlphabet[] =
      "abcXYZ0189 \t\n(){}[]<>\"'`?$#@:;,.*/+-=%^&|\\~_";
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out += kAlphabet[rng->Next() % (sizeof(kAlphabet) - 1)];
  }
  return out;
}

/// Mutates a valid input: deletes, duplicates or swaps random bytes.
std::string Mutate(const std::string& input, Rng* rng, int edits) {
  std::string out = input;
  for (int e = 0; e < edits && !out.empty(); ++e) {
    size_t pos = rng->Next() % out.size();
    switch (rng->Next() % 3) {
      case 0:
        out.erase(pos, 1);
        break;
      case 1:
        out.insert(pos, 1, out[pos]);
        break;
      default:
        out[pos] = static_cast<char>('!' + rng->Next() % 90);
    }
  }
  return out;
}

class FuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSweep, SqlParserNeverCrashes) {
  Rng rng(GetParam());
  const std::string valid =
      "SELECT station, avg(temp) AS t FROM obs WHERE temp > 300 AND "
      "station LIKE 'a%' GROUP BY station ORDER BY t DESC LIMIT 5";
  for (int i = 0; i < 200; ++i) {
    (void)relational::ParseSql(Garbage(&rng, 1 + rng.Next() % 80));
    (void)relational::ParseSql(Mutate(valid, &rng, 1 + rng.Next() % 6));
  }
  // A pristine statement still parses (the fuzz loop must not poison
  // global state).
  EXPECT_TRUE(relational::ParseSql(valid).ok());
}

TEST_P(FuzzSweep, SciQlParserNeverCrashes) {
  Rng rng(GetParam() * 31 + 7);
  const std::string valid =
      "UPDATE img[0:10, 20:30] SET v = v * 2 + y WHERE v > 5 and x < 9";
  for (int i = 0; i < 200; ++i) {
    (void)sciql::ParseSciQl(Garbage(&rng, 1 + rng.Next() % 80));
    (void)sciql::ParseSciQl(Mutate(valid, &rng, 1 + rng.Next() % 6));
  }
  EXPECT_TRUE(sciql::ParseSciQl(valid).ok());
}

TEST_P(FuzzSweep, SparqlParserNeverCrashes) {
  Rng rng(GetParam() * 97 + 3);
  const std::string valid =
      "SELECT ?h (count(*) AS ?n) WHERE { ?h a noa:Hotspot ; "
      "noa:hasGeometry ?g . FILTER(strdf:intersects(?g, \"POINT (1 "
      "2)\"^^strdf:WKT)) } GROUP BY ?h ORDER BY DESC(?n) LIMIT 3";
  for (int i = 0; i < 200; ++i) {
    (void)strabon::ParseSparql(Garbage(&rng, 1 + rng.Next() % 100));
    (void)strabon::ParseSparql(Mutate(valid, &rng, 1 + rng.Next() % 6));
  }
  EXPECT_TRUE(strabon::ParseSparql(valid).ok());
}

TEST_P(FuzzSweep, WktParserNeverCrashes) {
  Rng rng(GetParam() * 13 + 11);
  const std::string valid =
      "MULTIPOLYGON (((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 1 2, 2 2, 2 1, 1 "
      "1)), ((9 9, 10 9, 10 10, 9 10, 9 9)))";
  for (int i = 0; i < 300; ++i) {
    (void)geo::ParseWkt(Garbage(&rng, 1 + rng.Next() % 60));
    (void)geo::ParseWkt(Mutate(valid, &rng, 1 + rng.Next() % 5));
  }
  EXPECT_TRUE(geo::ParseWkt(valid).ok());
}

TEST_P(FuzzSweep, TurtleParserNeverCrashes) {
  Rng rng(GetParam() * 131 + 17);
  const std::string valid =
      "@prefix ex: <http://e/> . ex:a a ex:T ; ex:p \"x\\\"y\"@en , 4.5 ; "
      "ex:q <http://z/> .";
  for (int i = 0; i < 200; ++i) {
    rdf::TripleStore store;
    (void)rdf::ParseTurtle(Garbage(&rng, 1 + rng.Next() % 90), &store);
    rdf::TripleStore store2;
    (void)rdf::ParseTurtle(Mutate(valid, &rng, 1 + rng.Next() % 6),
                           &store2);
  }
  rdf::TripleStore store;
  EXPECT_TRUE(rdf::ParseTurtle(valid, &store).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

// ---------------------------------------------------------------------------
// Binary-format corruption corpus: every prefix truncation and every
// single-bit flip of a valid TELT / .ter / .vec file must come back as a
// clean ParseError / DataLoss / IoError — never a crash or a silently
// accepted parse. Exhaustive, not sampled, so the artifacts are tiny.

class CorruptionCorpus : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fuzz_corpus_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  static std::string ReadAllBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  static void WriteAllBytes(const std::string& path, const std::string& data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }

  /// Runs `parse` against every prefix truncation and every single-bit
  /// flip of `image`, requiring a clean rejection each time.
  /// `tail_slack` exempts the last N bytes from the truncation sweep —
  /// text formats tolerate a missing final newline, which loses no data.
  template <typename ParseFn>
  void Sweep(const std::string& image, const std::string& victim,
             ParseFn parse, size_t tail_slack = 0) {
    for (size_t len = 0; len + tail_slack < image.size(); ++len) {
      WriteAllBytes(victim, image.substr(0, len));
      Status st = parse(victim);
      ASSERT_FALSE(st.ok()) << "truncation to " << len
                            << " bytes was accepted";
      EXPECT_TRUE(st.code() == StatusCode::kParseError ||
                  st.code() == StatusCode::kDataLoss ||
                  st.code() == StatusCode::kIoError)
          << "truncation to " << len << ": " << st.ToString();
    }
    for (size_t i = 0; i < image.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mutated = image;
        mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
        WriteAllBytes(victim, mutated);
        Status st = parse(victim);
        ASSERT_FALSE(st.ok())
            << "bit " << bit << " of byte " << i << " flipped unnoticed";
        EXPECT_TRUE(st.code() == StatusCode::kParseError ||
                    st.code() == StatusCode::kDataLoss ||
                    st.code() == StatusCode::kIoError)
            << "flip at byte " << i << " bit " << bit << ": "
            << st.ToString();
      }
    }
    // The pristine image still parses afterwards.
    WriteAllBytes(victim, image);
    EXPECT_TRUE(parse(victim).ok());
  }

  std::filesystem::path dir_;
};

TEST_F(CorruptionCorpus, TeltRejectsEveryTruncationAndBitFlip) {
  storage::Table t{storage::Schema({{"id", storage::ColumnType::kInt64},
                                    {"tag", storage::ColumnType::kString}})};
  for (int64_t i = 0; i < 3; ++i) {
    t.column(0).AppendInt64(i);
    t.column(1).AppendString(i == 1 ? "" : "r" + std::to_string(i));
  }
  ASSERT_TRUE(storage::WriteTable(t, Path("seed.telt")).ok());
  std::string image = ReadAllBytes(Path("seed.telt"));
  ASSERT_GT(image.size(), 16u);
  Sweep(image, Path("victim.telt"), [](const std::string& p) {
    return storage::ReadTable(p).status();
  });
}

TEST_F(CorruptionCorpus, TerRejectsEveryTruncationAndBitFlip) {
  vault::TerRaster r;
  r.name = "tiny";
  r.satellite = "Meteosat-9";
  r.sensor = "SEVIRI";
  r.width = 4;
  r.height = 3;
  r.acquisition_time = 1187997600;
  r.transform = {21.0, 38.5, 0.01, -0.01, 0, 0};
  r.band_names = {"IR039"};
  r.bands = {std::vector<double>(12, 305.5)};
  ASSERT_TRUE(vault::WriteTer(r, Path("seed.ter")).ok());
  std::string image = ReadAllBytes(Path("seed.ter"));
  ASSERT_GT(image.size(), 16u);
  Sweep(image, Path("victim.ter"), [](const std::string& p) {
    return vault::ReadTer(p).status();
  });
}

TEST_F(CorruptionCorpus, VecRejectsEveryTruncationAndBitFlip) {
  vault::VecFile vec;
  vec.name = "hotspots";
  vault::VecFeature a;
  a.id = 1;
  a.attributes = {{"conf", "0.9"}};
  auto ga = geo::ParseWkt("POINT (21.5 38.2)");
  ASSERT_TRUE(ga.ok());
  a.geometry = *ga;
  vault::VecFeature b;
  b.id = 2;
  b.attributes = {{"conf", "0.4"}, {"note", "edge\tcase"}};
  auto gb = geo::ParseWkt("POINT (22.0 38.0)");
  ASSERT_TRUE(gb.ok());
  b.geometry = *gb;
  vec.features = {a, b};
  ASSERT_TRUE(vault::WriteVec(vec, Path("seed.vec")).ok());
  std::string image = ReadAllBytes(Path("seed.vec"));
  ASSERT_GT(image.size(), 16u);
  Sweep(
      image, Path("victim.vec"),
      [](const std::string& p) { return vault::ReadVec(p).status(); },
      /*tail_slack=*/1);
}

// Forward-compat guards: artifacts stamped with a format version newer
// than this binary must be rejected as kDataLoss with an explicit
// "newer" message — not misparsed, not silently truncated.
class ForwardCompat : public CorruptionCorpus {};

TEST_F(ForwardCompat, TeltNewerVersionIsDataLossNotParseError) {
  storage::Table t{storage::Schema({{"id", storage::ColumnType::kInt64}})};
  t.column(0).AppendInt64(7);
  ASSERT_TRUE(storage::WriteTable(t, Path("v.telt")).ok());
  std::string image = ReadAllBytes(Path("v.telt"));
  // Layout: "TELT" magic then little-endian u32 version.
  ASSERT_GE(image.size(), 8u);
  image[4] = 99;
  WriteAllBytes(Path("v.telt"), image);
  auto r = storage::ReadTable(Path("v.telt"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("newer"), std::string::npos)
      << r.status().ToString();
}

TEST_F(ForwardCompat, CatalogManifestNewerVersionIsDataLoss) {
  storage::Catalog catalog;
  storage::Table t{storage::Schema({{"id", storage::ColumnType::kInt64}})};
  t.column(0).AppendInt64(1);
  ASSERT_TRUE(
      catalog.CreateTable("t", std::make_shared<storage::Table>(t)).ok());
  const std::string dir = Path("snap");
  ASSERT_TRUE(storage::SaveCatalog(catalog, dir).ok());
  // A genuinely newer-format manifest arrives with a VALID checksum (a
  // newer binary wrote it correctly), so re-seal the trailer after
  // bumping the magic — this must hit the version guard, not the CRC.
  std::string manifest = ReadAllBytes(dir + "/MANIFEST");
  auto content = io::VerifyCrcTrailer(manifest);
  ASSERT_TRUE(content.ok());
  std::string future(*content);
  ASSERT_EQ(future.rfind("#TELCAT1", 0), 0u);
  future.replace(0, 8, "#TELCAT9");
  io::AppendCrcTrailer(&future);
  WriteAllBytes(dir + "/MANIFEST", future);
  storage::Catalog loaded;
  auto n = storage::LoadCatalog(dir, &loaded);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(n.status().message().find("newer"), std::string::npos)
      << n.status().ToString();
}

// ---------------------------------------------------------------------------
// Wire-protocol malformation corpus: a TELEIOS server fed truncated
// length prefixes, hostile lengths, corrupted CRCs, unknown opcodes,
// mid-frame disconnects, and seeded garbage must shed every one as a
// protocol error — never crash, never allocate a hostile length, and
// never leak a session. After every abuse the same server still serves
// a well-behaved client.

class WireProtocolFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    server::ServerConfig config;
    config.port = 0;
    server_ = std::make_unique<server::TeleiosServer>(&veo_, config);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    // The abused server must still be a working server.
    auto client = server::Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto result = client->Query(server::Lang::kSql, "SELECT count(*) AS n FROM sys.sessions");
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    (void)client->Goodbye();
    // ...and every malformed connection fully unwound.
    EXPECT_TRUE(NoLiveSessions());
    ASSERT_TRUE(server_->Shutdown().ok());
  }

  bool NoLiveSessions() {
    for (int i = 0; i < 500; ++i) {
      if (server_->sessions().live() == 0) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return server_->sessions().live() == 0;
  }

  server::Socket MustConnectRaw() {
    auto sock = server::Socket::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(sock.ok());
    return std::move(sock).value();
  }

  /// Sends raw bytes on a fresh connection, then closes without reading.
  void SendAndDrop(const std::string& bytes) {
    server::Socket sock = MustConnectRaw();
    (void)sock.WriteAll(bytes);
  }

  static std::string Magic() { return std::string(server::kMagic, 4); }

  /// A well-formed post-magic HELLO frame (anonymous, no deadline).
  static std::string HelloFrame() {
    std::string frame;
    server::AppendFrame(
        &frame, server::Opcode::kHello,
        server::EncodeHello(server::kProtocolVersion, "", 0));
    return frame;
  }

  core::VirtualEarthObservatory veo_;
  std::unique_ptr<server::TeleiosServer> server_;
};

TEST_F(WireProtocolFuzz, TruncatedLengthPrefixesNeverCrash) {
  const std::string hello = Magic() + HelloFrame();
  // Every prefix of the handshake, from zero bytes (bare connect) up to
  // one byte short of complete, then disconnect.
  for (size_t len = 0; len < hello.size(); ++len) {
    SendAndDrop(hello.substr(0, len));
  }
  EXPECT_TRUE(NoLiveSessions());
}

TEST_F(WireProtocolFuzz, OversizedLengthIsRefusedBeforeAllocation) {
  // A header declaring a 4-GiB body: the length guard must trip off the
  // 8 header bytes alone (kMaxFrameBytes), not attempt the read.
  std::string wire = Magic() + HelloFrame();
  std::string header(8, '\0');
  header[0] = '\xff';
  header[1] = '\xff';
  header[2] = '\xff';
  header[3] = '\xff';
  server::Socket sock = MustConnectRaw();
  ASSERT_TRUE(sock.WriteAll(wire + header).ok());
  // The server answers with a framed ERROR (best effort) and drops.
  std::string drained;
  char buf[512];
  for (;;) {
    auto got = sock.ReadSome(buf, sizeof(buf), 5000);
    if (!got.ok() || *got == 0) break;
    drained.append(buf, *got);
  }
  EXPECT_TRUE(NoLiveSessions());

  // Zero-length frames are equally malformed.
  std::string zero(8, '\0');
  SendAndDrop(wire + zero);
  EXPECT_TRUE(NoLiveSessions());
}

TEST_F(WireProtocolFuzz, CorruptedCrcIsDetectedAndDropped) {
  std::string query_frame;
  server::AppendFrame(
      &query_frame, server::Opcode::kQuery,
      server::EncodeQuery(server::Lang::kSql, "SELECT count(*) AS n FROM sys.sessions", 0));
  // Flip each bit of the CRC field and of the first payload byte; every
  // mutant must die at the CRC check, not reach the SQL engine.
  for (size_t byte : {size_t{4}, size_t{9}}) {
    for (int bit = 0; bit < 8; ++bit) {
      auto client = server::Client::Connect("127.0.0.1", server_->port());
      ASSERT_TRUE(client.ok());
      std::string mutant = query_frame;
      mutant[byte] = static_cast<char>(mutant[byte] ^ (1 << bit));
      ASSERT_TRUE(client->SendRaw(mutant).ok());
      // The server either frames a kDataLoss ERROR before dropping or
      // just drops; it never returns rows for a torn frame.
      auto frame = client->ReadFrame();
      if (frame.ok()) {
        EXPECT_EQ(frame->opcode, server::Opcode::kError);
      }
    }
  }
  EXPECT_TRUE(NoLiveSessions());
}

TEST_F(WireProtocolFuzz, UnknownOpcodeIsAProtocolError) {
  for (uint8_t opcode : {uint8_t{0}, uint8_t{42}, uint8_t{200},
                         uint8_t{255}}) {
    auto client = server::Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(
        client->SendFrame(static_cast<server::Opcode>(opcode), "junk").ok());
    auto frame = client->ReadFrame();
    if (frame.ok()) {
      EXPECT_EQ(frame->opcode, server::Opcode::kError);
    }
  }
  EXPECT_TRUE(NoLiveSessions());
}

TEST_F(WireProtocolFuzz, MidFrameDisconnectLeaksNothing) {
  // Declare a 100-byte body, deliver 10, vanish: the server sees a torn
  // frame (kDataLoss), not a hung read or a crash.
  std::string torn;
  server::AppendFrame(&torn, server::Opcode::kQuery,
                      std::string(99, 'q'));  // body = opcode + 99
  SendAndDrop(Magic() + HelloFrame() + torn.substr(0, 8 + 10));
  EXPECT_TRUE(NoLiveSessions());

  // Same torn tail on an established, authenticated session.
  auto client = server::Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendRaw(torn.substr(0, 8 + 10)).ok());
  client->connection().Close();
  EXPECT_TRUE(NoLiveSessions());
}

TEST_F(WireProtocolFuzz, SeededGarbageStreamsNeverCrash) {
  Rng rng(0xd1ce);
  for (int i = 0; i < 32; ++i) {
    std::string noise = Garbage(&rng, 1 + rng.Next() % 200);
    // Half the probes speak "binary" (magic preamble + noise), half hit
    // the HTTP sniffer with bare noise.
    SendAndDrop(i % 2 == 0 ? Magic() + noise : noise);
  }
  // Bit-flip sweep over a pristine handshake+query image (sampled: every
  // third byte) — mutants may break the magic, the frame, or the SQL,
  // and each layer must reject cleanly.
  std::string image = Magic() + HelloFrame();
  server::AppendFrame(
      &image, server::Opcode::kQuery,
      server::EncodeQuery(server::Lang::kSql, "SELECT count(*) AS n FROM sys.sessions", 0));
  for (size_t i = 0; i < image.size(); i += 3) {
    std::string mutant = image;
    mutant[i] = static_cast<char>(mutant[i] ^ (1u << (i % 8)));
    SendAndDrop(mutant);
  }
  EXPECT_TRUE(NoLiveSessions());
}

}  // namespace
}  // namespace teleios
