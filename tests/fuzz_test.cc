// Parser robustness: every front end (SQL, SciQL, SPARQL, WKT, Turtle,
// VEC) must reject arbitrary garbage and mutated valid inputs with a
// clean error Status — never crash, hang, or accept nonsense silently.
// Deterministic pseudo-random fuzzing (seeded xorshift), so failures
// reproduce.

#include <gtest/gtest.h>

#include <string>

#include "geo/wkt.h"
#include "rdf/turtle.h"
#include "relational/sql_parser.h"
#include "sciql/sciql_parser.h"
#include "strabon/sparql_parser.h"

namespace teleios {
namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 1) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
  }

 private:
  uint64_t state_;
};

/// Random printable-ish garbage (includes quotes, braces, unicode-ish
/// bytes).
std::string Garbage(Rng* rng, size_t length) {
  static const char kAlphabet[] =
      "abcXYZ0189 \t\n(){}[]<>\"'`?$#@:;,.*/+-=%^&|\\~_";
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out += kAlphabet[rng->Next() % (sizeof(kAlphabet) - 1)];
  }
  return out;
}

/// Mutates a valid input: deletes, duplicates or swaps random bytes.
std::string Mutate(const std::string& input, Rng* rng, int edits) {
  std::string out = input;
  for (int e = 0; e < edits && !out.empty(); ++e) {
    size_t pos = rng->Next() % out.size();
    switch (rng->Next() % 3) {
      case 0:
        out.erase(pos, 1);
        break;
      case 1:
        out.insert(pos, 1, out[pos]);
        break;
      default:
        out[pos] = static_cast<char>('!' + rng->Next() % 90);
    }
  }
  return out;
}

class FuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSweep, SqlParserNeverCrashes) {
  Rng rng(GetParam());
  const std::string valid =
      "SELECT station, avg(temp) AS t FROM obs WHERE temp > 300 AND "
      "station LIKE 'a%' GROUP BY station ORDER BY t DESC LIMIT 5";
  for (int i = 0; i < 200; ++i) {
    (void)relational::ParseSql(Garbage(&rng, 1 + rng.Next() % 80));
    (void)relational::ParseSql(Mutate(valid, &rng, 1 + rng.Next() % 6));
  }
  // A pristine statement still parses (the fuzz loop must not poison
  // global state).
  EXPECT_TRUE(relational::ParseSql(valid).ok());
}

TEST_P(FuzzSweep, SciQlParserNeverCrashes) {
  Rng rng(GetParam() * 31 + 7);
  const std::string valid =
      "UPDATE img[0:10, 20:30] SET v = v * 2 + y WHERE v > 5 and x < 9";
  for (int i = 0; i < 200; ++i) {
    (void)sciql::ParseSciQl(Garbage(&rng, 1 + rng.Next() % 80));
    (void)sciql::ParseSciQl(Mutate(valid, &rng, 1 + rng.Next() % 6));
  }
  EXPECT_TRUE(sciql::ParseSciQl(valid).ok());
}

TEST_P(FuzzSweep, SparqlParserNeverCrashes) {
  Rng rng(GetParam() * 97 + 3);
  const std::string valid =
      "SELECT ?h (count(*) AS ?n) WHERE { ?h a noa:Hotspot ; "
      "noa:hasGeometry ?g . FILTER(strdf:intersects(?g, \"POINT (1 "
      "2)\"^^strdf:WKT)) } GROUP BY ?h ORDER BY DESC(?n) LIMIT 3";
  for (int i = 0; i < 200; ++i) {
    (void)strabon::ParseSparql(Garbage(&rng, 1 + rng.Next() % 100));
    (void)strabon::ParseSparql(Mutate(valid, &rng, 1 + rng.Next() % 6));
  }
  EXPECT_TRUE(strabon::ParseSparql(valid).ok());
}

TEST_P(FuzzSweep, WktParserNeverCrashes) {
  Rng rng(GetParam() * 13 + 11);
  const std::string valid =
      "MULTIPOLYGON (((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 1 2, 2 2, 2 1, 1 "
      "1)), ((9 9, 10 9, 10 10, 9 10, 9 9)))";
  for (int i = 0; i < 300; ++i) {
    (void)geo::ParseWkt(Garbage(&rng, 1 + rng.Next() % 60));
    (void)geo::ParseWkt(Mutate(valid, &rng, 1 + rng.Next() % 5));
  }
  EXPECT_TRUE(geo::ParseWkt(valid).ok());
}

TEST_P(FuzzSweep, TurtleParserNeverCrashes) {
  Rng rng(GetParam() * 131 + 17);
  const std::string valid =
      "@prefix ex: <http://e/> . ex:a a ex:T ; ex:p \"x\\\"y\"@en , 4.5 ; "
      "ex:q <http://z/> .";
  for (int i = 0; i < 200; ++i) {
    rdf::TripleStore store;
    (void)rdf::ParseTurtle(Garbage(&rng, 1 + rng.Next() % 90), &store);
    rdf::TripleStore store2;
    (void)rdf::ParseTurtle(Mutate(valid, &rng, 1 + rng.Next() % 6),
                           &store2);
  }
  rdf::TripleStore store;
  EXPECT_TRUE(rdf::ParseTurtle(valid, &store).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

}  // namespace
}  // namespace teleios
