#include <gtest/gtest.h>

#include "relational/sql_engine.h"
#include "relational/sql_lexer.h"
#include "relational/sql_parser.h"

namespace teleios::relational {
namespace {

using storage::Catalog;
using storage::Table;

TEST(SqlLexerTest, TokenKinds) {
  auto tokens = LexSql("SELECT x, 'it''s' FROM t WHERE y >= 3.5 -- c\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[3].type, TokenType::kString);
  EXPECT_EQ((*tokens)[3].text, "it's");
  // ... WHERE y >= 3.5
  bool saw_ge = false;
  bool saw_float = false;
  for (const Token& t : *tokens) {
    if (t.type == TokenType::kSymbol && t.text == ">=") saw_ge = true;
    if (t.type == TokenType::kFloat && t.float_value == 3.5) saw_float = true;
  }
  EXPECT_TRUE(saw_ge);
  EXPECT_TRUE(saw_float);
}

TEST(SqlLexerTest, RejectsUnterminatedString) {
  EXPECT_FALSE(LexSql("SELECT 'oops").ok());
}

TEST(SqlLexerTest, RejectsUnknownCharacter) {
  EXPECT_FALSE(LexSql("SELECT \x01").ok());
}

TEST(SqlParserTest, SelectClauses) {
  auto stmt = ParseSql(
      "SELECT band, avg(temp) AS t FROM sensors WHERE temp > 300 "
      "GROUP BY band HAVING count(*) > 1 ORDER BY t DESC LIMIT 5 OFFSET 2");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& s = std::get<SelectStatement>(*stmt);
  EXPECT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[1].alias, "t");
  EXPECT_NE(s.where, nullptr);
  EXPECT_EQ(s.group_by.size(), 1u);
  EXPECT_NE(s.having, nullptr);
  ASSERT_EQ(s.order_by.size(), 1u);
  EXPECT_TRUE(s.order_by[0].descending);
  EXPECT_EQ(s.limit, 5);
  EXPECT_EQ(s.offset, 2);
}

TEST(SqlParserTest, JoinAndAlias) {
  auto stmt = ParseSql(
      "SELECT a.x FROM t1 a JOIN t2 AS b ON a.x = b.y LEFT JOIN t3 ON "
      "t1.x = t3.z");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& s = std::get<SelectStatement>(*stmt);
  EXPECT_EQ(s.from.alias, "a");
  ASSERT_EQ(s.joins.size(), 2u);
  EXPECT_EQ(s.joins[0].table.alias, "b");
  EXPECT_EQ(s.joins[1].type, JoinType::kLeftOuter);
}

TEST(SqlParserTest, InBetweenIsNull) {
  auto stmt = ParseSql(
      "SELECT * FROM t WHERE a IN (1, 2) AND b BETWEEN 3 AND 4 AND c IS "
      "NOT NULL");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
}

TEST(SqlParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseSql("SELECT * FROM t zz vv").ok());
  EXPECT_FALSE(ParseSql("FROB TABLE x").ok());
}

TEST(SqlParserTest, SlabOnTableRef) {
  auto stmt = ParseSql("SELECT * FROM img[0:10, 5:20]");
  ASSERT_TRUE(stmt.ok());
  const auto& s = std::get<SelectStatement>(*stmt);
  ASSERT_EQ(s.from.slab.size(), 2u);
  EXPECT_EQ(s.from.slab[0].first, 0);
  EXPECT_EQ(s.from.slab[1].second, 20);
}

class SqlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<SqlEngine>(&catalog_);
    Exec("CREATE TABLE obs (id INT, station VARCHAR, temp DOUBLE)");
    Exec("INSERT INTO obs VALUES (1, 'athens', 33.5), (2, 'sparta', 36.0), "
         "(3, 'athens', 31.0), (4, 'patras', NULL)");
  }

  Table Exec(const std::string& sql) {
    auto r = engine_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : Table();
  }

  Catalog catalog_;
  std::unique_ptr<SqlEngine> engine_;
};

TEST_F(SqlEngineTest, SelectStar) {
  Table t = Exec("SELECT * FROM obs");
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.num_columns(), 3u);
}

TEST_F(SqlEngineTest, WhereProjection) {
  Table t = Exec("SELECT station, temp FROM obs WHERE temp > 32");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.Get(0, 0), Value("athens"));
  EXPECT_EQ(t.Get(1, 0), Value("sparta"));
}

TEST_F(SqlEngineTest, ComputedColumns) {
  Table t = Exec("SELECT id * 2 AS twice FROM obs WHERE id = 3");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.Get(0, 0), Value(int64_t{6}));
}

TEST_F(SqlEngineTest, GroupByHaving) {
  Table t = Exec(
      "SELECT station, count(*) AS n, avg(temp) AS t FROM obs "
      "GROUP BY station HAVING count(*) > 1");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.Get(0, 0), Value("athens"));
  EXPECT_EQ(t.Get(0, 1), Value(int64_t{2}));
  EXPECT_DOUBLE_EQ(t.Get(0, 2).AsFloat64(), 32.25);
}

TEST_F(SqlEngineTest, GroupByExpression) {
  Table t = Exec("SELECT id / 2 AS half, count(*) AS n FROM obs GROUP BY "
                 "id / 2 ORDER BY half");
  EXPECT_EQ(t.num_rows(), 3u);  // halves: 0, 1, 2
}

TEST_F(SqlEngineTest, OrderLimit) {
  Table t = Exec("SELECT id FROM obs ORDER BY id DESC LIMIT 2");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.Get(0, 0), Value(int64_t{4}));
  EXPECT_EQ(t.Get(1, 0), Value(int64_t{3}));
}

TEST_F(SqlEngineTest, Distinct) {
  Table t = Exec("SELECT DISTINCT station FROM obs");
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(SqlEngineTest, JoinWithPushdown) {
  Exec("CREATE TABLE stations (station VARCHAR, region VARCHAR)");
  Exec("INSERT INTO stations VALUES ('athens', 'attica'), "
       "('sparta', 'laconia')");
  Table t = Exec(
      "SELECT region, temp FROM obs JOIN stations ON obs.station = "
      "stations.station WHERE temp > 32");
  ASSERT_EQ(t.num_rows(), 2u);
  auto plan = engine_->Explain(
      "SELECT region, temp FROM obs JOIN stations ON obs.station = "
      "stations.station WHERE temp > 32");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("pushdown"), std::string::npos)
      << "expected pushdown in plan:\n"
      << *plan;
  EXPECT_NE(plan->find("hash join"), std::string::npos);
}

TEST_F(SqlEngineTest, LeftJoinKeepsUnmatched) {
  Exec("CREATE TABLE notes (station VARCHAR, note VARCHAR)");
  Exec("INSERT INTO notes VALUES ('athens', 'hot')");
  Table t = Exec(
      "SELECT obs.station, note FROM obs LEFT JOIN notes ON obs.station = "
      "notes.station");
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST_F(SqlEngineTest, InsertSubsetColumns) {
  Exec("INSERT INTO obs (id, station) VALUES (9, 'argos')");
  Table t = Exec("SELECT temp FROM obs WHERE id = 9");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_TRUE(t.Get(0, 0).is_null());
}

TEST_F(SqlEngineTest, UpdateWithWhere) {
  Table affected = Exec("UPDATE obs SET temp = temp + 1 WHERE station = "
                        "'athens'");
  EXPECT_EQ(affected.Get(0, 0), Value(int64_t{2}));
  Table t = Exec("SELECT temp FROM obs WHERE id = 1");
  EXPECT_DOUBLE_EQ(t.Get(0, 0).AsFloat64(), 34.5);
}

TEST_F(SqlEngineTest, DeleteWithWhere) {
  Table affected = Exec("DELETE FROM obs WHERE temp IS NULL");
  EXPECT_EQ(affected.Get(0, 0), Value(int64_t{1}));
  EXPECT_EQ(Exec("SELECT * FROM obs").num_rows(), 3u);
}

TEST_F(SqlEngineTest, DropTable) {
  Exec("DROP TABLE obs");
  EXPECT_FALSE(engine_->Execute("SELECT * FROM obs").ok());
}

TEST_F(SqlEngineTest, ErrorsSurfaceCleanly) {
  EXPECT_EQ(engine_->Execute("SELECT nope FROM obs").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine_->Execute("SELECT * FROM missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine_->Execute("CREATE TABLE obs (x INT)").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(engine_->Execute("SELECT FROM obs").status().code(),
            StatusCode::kParseError);
}

TEST_F(SqlEngineTest, StringFunctionsInQueries) {
  Table t = Exec("SELECT upper(station) AS s FROM obs WHERE id = 1");
  EXPECT_EQ(t.Get(0, 0), Value("ATHENS"));
}

TEST_F(SqlEngineTest, LikeInWhere) {
  Table t = Exec("SELECT id FROM obs WHERE station LIKE 'a%'");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(SqlEngineTest, BetweenAndInEndToEnd) {
  Table between = Exec("SELECT id FROM obs WHERE temp BETWEEN 31 AND 34");
  EXPECT_EQ(between.num_rows(), 2u);  // 33.5 and 31.0
  Table in_list = Exec(
      "SELECT id FROM obs WHERE station IN ('sparta', 'patras') ORDER BY id");
  ASSERT_EQ(in_list.num_rows(), 2u);
  EXPECT_EQ(in_list.Get(0, 0), Value(int64_t{2}));
  Table not_in = Exec("SELECT id FROM obs WHERE station NOT IN ('athens')");
  EXPECT_EQ(not_in.num_rows(), 2u);
}

TEST_F(SqlEngineTest, ExplainShowsVectorizedFilter) {
  auto plan = engine_->Explain("SELECT id FROM obs WHERE temp > 32");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("[vectorized]"), std::string::npos) << *plan;
  auto interpreted =
      engine_->Explain("SELECT id FROM obs WHERE station LIKE 'a%'");
  ASSERT_TRUE(interpreted.ok());
  EXPECT_NE(interpreted->find("[interpreted]"), std::string::npos)
      << *interpreted;
}

/// Parameterized aggregate correctness sweep against a closed form.
class AggregateSweep : public ::testing::TestWithParam<int> {};

TEST_P(AggregateSweep, SumOfFirstN) {
  int n = GetParam();
  Catalog catalog;
  SqlEngine engine(&catalog);
  ASSERT_TRUE(engine.Execute("CREATE TABLE seq (v INT)").ok());
  for (int i = 1; i <= n; ++i) {
    ASSERT_TRUE(engine
                    .Execute("INSERT INTO seq VALUES (" +
                             std::to_string(i) + ")")
                    .ok());
  }
  auto out = engine.Execute("SELECT sum(v) AS s, count(*) AS c FROM seq");
  ASSERT_TRUE(out.ok());
  if (n == 0) {
    EXPECT_TRUE(out->Get(0, 0).is_null());
  } else {
    EXPECT_EQ(out->Get(0, 0), Value(int64_t{n} * (n + 1) / 2));
  }
  EXPECT_EQ(out->Get(0, 1), Value(int64_t{n}));
}

INSTANTIATE_TEST_SUITE_P(Sizes, AggregateSweep,
                         ::testing::Values(0, 1, 2, 10, 100));

}  // namespace
}  // namespace teleios::relational
