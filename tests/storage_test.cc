#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/codec.h"
#include "io/filesystem.h"
#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/dictionary.h"
#include "storage/persistence.h"
#include "storage/table.h"

namespace teleios::storage {
namespace {

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  int32_t a = dict.Intern("forest");
  int32_t b = dict.Intern("sea");
  EXPECT_EQ(dict.Intern("forest"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.size(), 2);
  EXPECT_EQ(dict.At(a), "forest");
}

TEST(DictionaryTest, LookupMissing) {
  Dictionary dict;
  dict.Intern("x");
  EXPECT_EQ(dict.Lookup("y"), Dictionary::kInvalidCode);
  EXPECT_EQ(dict.Lookup("x"), 0);
}

TEST(DictionaryTest, ManyStringsStayStable) {
  Dictionary dict;
  std::vector<int32_t> codes;
  for (int i = 0; i < 5000; ++i) {
    codes.push_back(dict.Intern("value_" + std::to_string(i)));
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(dict.At(codes[i]), "value_" + std::to_string(i));
    EXPECT_EQ(dict.Lookup("value_" + std::to_string(i)), codes[i]);
  }
  EXPECT_GT(dict.MemoryUsage(), 0u);
}

TEST(ColumnTest, AppendAndGetTyped) {
  Column col(ColumnType::kInt64);
  col.AppendInt64(10);
  col.AppendNull();
  col.AppendInt64(-3);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.GetInt64(0), 10);
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.Get(2), Value(int64_t{-3}));
  EXPECT_TRUE(col.Get(1).is_null());
}

TEST(ColumnTest, AppendValueCoercesNumerics) {
  Column col(ColumnType::kFloat64);
  ASSERT_TRUE(col.Append(Value(int64_t{3})).ok());
  EXPECT_DOUBLE_EQ(col.GetFloat64(0), 3.0);
  EXPECT_FALSE(col.Append(Value("no")).ok());
}

TEST(ColumnTest, StringsAreDictionaryEncoded) {
  Column col(ColumnType::kString);
  col.AppendString("fire");
  col.AppendString("water");
  col.AppendString("fire");
  EXPECT_EQ(col.GetStringCode(0), col.GetStringCode(2));
  EXPECT_NE(col.GetStringCode(0), col.GetStringCode(1));
  EXPECT_EQ(col.dict().size(), 2);
  EXPECT_EQ(col.GetString(2), "fire");
}

TEST(ColumnTest, SetOverwrites) {
  Column col(ColumnType::kInt64);
  col.AppendInt64(1);
  ASSERT_TRUE(col.Set(0, Value(int64_t{9})).ok());
  EXPECT_EQ(col.GetInt64(0), 9);
  ASSERT_TRUE(col.Set(0, Value()).ok());
  EXPECT_TRUE(col.IsNull(0));
  EXPECT_FALSE(col.Set(5, Value(int64_t{1})).ok());
}

TEST(ColumnTest, TakeSelectsRows) {
  Column col(ColumnType::kString);
  col.AppendString("a");
  col.AppendNull();
  col.AppendString("c");
  Column taken = col.Take({2, 0});
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken.GetString(0), "c");
  EXPECT_EQ(taken.GetString(1), "a");
}

Table MakePeople() {
  Table t{Schema({{"name", ColumnType::kString},
                  {"age", ColumnType::kInt64}})};
  EXPECT_TRUE(t.AppendRow({Value("ada"), Value(int64_t{36})}).ok());
  EXPECT_TRUE(t.AppendRow({Value("bob"), Value(int64_t{25})}).ok());
  EXPECT_TRUE(t.AppendRow({Value("cy"), Value()}).ok());
  return t;
}

TEST(TableTest, SchemaAndRows) {
  Table t = MakePeople();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.schema().FieldIndex("age"), 1);
  EXPECT_EQ(t.schema().FieldIndex("nope"), -1);
  EXPECT_EQ(t.Get(0, 0), Value("ada"));
  EXPECT_TRUE(t.Get(2, 1).is_null());
}

TEST(TableTest, ArityMismatchRejected) {
  Table t = MakePeople();
  EXPECT_FALSE(t.AppendRow({Value("x")}).ok());
}

TEST(TableTest, ColumnByName) {
  Table t = MakePeople();
  ASSERT_TRUE(t.ColumnByName("name").ok());
  EXPECT_FALSE(t.ColumnByName("zzz").ok());
}

TEST(TableTest, Project) {
  Table t = MakePeople();
  auto projected = t.Project({"age"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->num_columns(), 1u);
  EXPECT_EQ(projected->Get(1, 0), Value(int64_t{25}));
  EXPECT_FALSE(t.Project({"missing"}).ok());
}

TEST(TableTest, TakeAndAppendTable) {
  Table t = MakePeople();
  Table taken = t.Take({1});
  ASSERT_EQ(taken.num_rows(), 1u);
  ASSERT_TRUE(taken.AppendTable(t).ok());
  EXPECT_EQ(taken.num_rows(), 4u);
  EXPECT_EQ(taken.Get(0, 0), Value("bob"));
}

TEST(TableTest, ToStringTruncates) {
  Table t = MakePeople();
  std::string s = t.ToString(2);
  EXPECT_NE(s.find("ada"), std::string::npos);
  EXPECT_NE(s.find("3 rows total"), std::string::npos);
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog catalog;
  auto t = std::make_shared<Table>(MakePeople());
  ASSERT_TRUE(catalog.CreateTable("people", t).ok());
  EXPECT_TRUE(catalog.HasTable("people"));
  EXPECT_FALSE(catalog.CreateTable("people", t).ok());  // duplicate
  ASSERT_TRUE(catalog.GetTable("people").ok());
  EXPECT_FALSE(catalog.GetTable("nope").ok());
  EXPECT_EQ(catalog.TableNames().size(), 1u);
  ASSERT_TRUE(catalog.DropTable("people").ok());
  EXPECT_FALSE(catalog.DropTable("people").ok());
}

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("telt_test_" + std::to_string(::getpid()) + ".telt");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(PersistenceTest, RoundTripAllTypes) {
  Table t{Schema({{"b", ColumnType::kBool},
                  {"i", ColumnType::kInt64},
                  {"f", ColumnType::kFloat64},
                  {"s", ColumnType::kString}})};
  ASSERT_TRUE(t.AppendRow({Value(true), Value(int64_t{-7}), Value(1.25),
                           Value("hello, | world")})
                  .ok());
  ASSERT_TRUE(t.AppendRow({Value(), Value(), Value(), Value()}).ok());
  ASSERT_TRUE(WriteTable(t, path_.string()).ok());
  auto loaded = ReadTable(path_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), 2u);
  EXPECT_EQ(loaded->Get(0, 0), Value(true));
  EXPECT_EQ(loaded->Get(0, 1), Value(int64_t{-7}));
  EXPECT_EQ(loaded->Get(0, 3), Value("hello, | world"));
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_TRUE(loaded->Get(1, c).is_null());
  }
}

TEST_F(PersistenceTest, RejectsGarbage) {
  {
    std::ofstream os(path_);
    os << "not a telt file";
  }
  EXPECT_FALSE(ReadTable(path_.string()).ok());
}

TEST_F(PersistenceTest, CsvExport) {
  Table t{Schema({{"s", ColumnType::kString}, {"n", ColumnType::kInt64}})};
  ASSERT_TRUE(t.AppendRow({Value("a,b"), Value(int64_t{1})}).ok());
  ASSERT_TRUE(WriteCsv(t, path_.string()).ok());
  std::ifstream is(path_);
  std::string header, row;
  std::getline(is, header);
  std::getline(is, row);
  EXPECT_EQ(header, "s,n");
  EXPECT_EQ(row, "\"a,b\",1");
}

TEST_F(PersistenceTest, CsvRoundTripInfersTypes) {
  Table t{Schema({{"name", ColumnType::kString},
                  {"count", ColumnType::kInt64},
                  {"score", ColumnType::kFloat64}})};
  ASSERT_TRUE(
      t.AppendRow({Value("alpha, \"quoted\""), Value(int64_t{3}),
                   Value(1.5)})
          .ok());
  ASSERT_TRUE(t.AppendRow({Value(), Value(int64_t{-2}), Value()}).ok());
  ASSERT_TRUE(WriteCsv(t, path_.string()).ok());
  auto loaded = ReadCsv(path_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), 2u);
  EXPECT_EQ(loaded->schema().field(0).type, ColumnType::kString);
  EXPECT_EQ(loaded->schema().field(1).type, ColumnType::kInt64);
  EXPECT_EQ(loaded->schema().field(2).type, ColumnType::kFloat64);
  EXPECT_EQ(loaded->Get(0, 0), Value("alpha, \"quoted\""));
  EXPECT_EQ(loaded->Get(1, 1), Value(int64_t{-2}));
  EXPECT_TRUE(loaded->Get(1, 0).is_null());
  EXPECT_TRUE(loaded->Get(1, 2).is_null());
}

TEST_F(PersistenceTest, CsvErrors) {
  {
    std::ofstream os(path_);
    os << "a,b\n1,2,3\n";  // arity mismatch
  }
  EXPECT_FALSE(ReadCsv(path_.string()).ok());
  {
    std::ofstream os(path_);
    os << "a,b\n\"dangling,2\n";
  }
  EXPECT_FALSE(ReadCsv(path_.string()).ok());
  EXPECT_FALSE(ReadCsv((path_.string() + ".missing")).ok());
}

namespace {

/// Hand-crafts a TELT v2 image: magic + version + header block + column
/// blocks (each a checksummed io block), for bounds-validation tests.
std::string CraftTelt(uint32_t ncols, uint64_t nrows, uint32_t col_type,
                      const std::vector<std::string>& column_payloads) {
  std::string image = "TELT";
  io::PutU32(&image, 2);
  std::string header;
  io::PutU32(&header, ncols);
  io::PutU64(&header, nrows);
  for (uint32_t c = 0; c < ncols; ++c) {
    io::PutStr(&header, "c" + std::to_string(c));
    io::PutU32(&header, col_type);
  }
  io::AppendBlockTo(&image, header);
  for (const std::string& payload : column_payloads) {
    io::AppendBlockTo(&image, payload);
  }
  return image;
}

Result<Table> ReadTeltImage(const std::string& image,
                            const std::filesystem::path& path) {
  auto st = io::GetFileSystem()->WriteFileAtomic(path.string(), image);
  if (!st.ok()) return st;
  return ReadTable(path.string());
}

}  // namespace

TEST_F(PersistenceTest, RejectsOutOfRangeDictionaryCode) {
  std::string col;
  col.push_back('\1');        // row 0 valid
  io::PutU32(&col, 1);        // dict size 1
  io::PutStr(&col, "only");   // dict entry 0
  io::PutI32(&col, 7);        // code 7: out of range
  auto r = ReadTeltImage(
      CraftTelt(1, 1, static_cast<uint32_t>(ColumnType::kString), {col}),
      path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos);
}

TEST_F(PersistenceTest, RejectsImplausibleDictionarySize) {
  std::string col;
  col.push_back('\1');
  io::PutU32(&col, 0x7fffffff);  // claims 2G dictionary entries
  auto r = ReadTeltImage(
      CraftTelt(1, 1, static_cast<uint32_t>(ColumnType::kString), {col}),
      path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST_F(PersistenceTest, RejectsImplausibleCounts) {
  // Row count beyond the block cap.
  auto r = ReadTeltImage(
      CraftTelt(1, (1ull << 30) + 1,
                static_cast<uint32_t>(ColumnType::kInt64), {}),
      path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  // Column count beyond the cap.
  std::string image = "TELT";
  io::PutU32(&image, 2);
  std::string header;
  io::PutU32(&header, (1u << 16) + 1);
  io::PutU64(&header, 0);
  io::AppendBlockTo(&image, header);
  auto r2 = ReadTeltImage(image, path_);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kParseError);
  // Invalid column type tag.
  auto r3 = ReadTeltImage(CraftTelt(1, 0, 99, {std::string()}), path_);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kParseError);
}

TEST_F(PersistenceTest, CorruptByteIsDataLoss) {
  Table t{Schema({{"i", ColumnType::kInt64}})};
  ASSERT_TRUE(t.AppendRow({Value(int64_t{42})}).ok());
  ASSERT_TRUE(WriteTable(t, path_.string()).ok());
  auto image = io::GetFileSystem()->ReadFile(path_.string());
  ASSERT_TRUE(image.ok());
  std::string corrupt = *image;
  corrupt[corrupt.size() - 3] ^= 0x40;  // a payload byte of the column
  auto r = ReadTeltImage(corrupt, path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

class CatalogSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("telcat_test_" + std::to_string(::getpid()));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(CatalogSnapshotTest, SaveLoadRoundTrip) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.CreateTable("people", std::make_shared<Table>(MakePeople()))
          .ok());
  Table empty{Schema({{"x", ColumnType::kFloat64}})};
  ASSERT_TRUE(
      catalog.CreateTable("empty", std::make_shared<Table>(std::move(empty)))
          .ok());
  ASSERT_TRUE(SaveCatalog(catalog, dir_.string()).ok());

  Catalog loaded;
  auto n = LoadCatalog(dir_.string(), &loaded);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);
  auto people = loaded.GetTable("people");
  ASSERT_TRUE(people.ok());
  EXPECT_EQ((*people)->num_rows(), 3u);
  EXPECT_EQ((*people)->Get(0, 0), Value("ada"));
  auto e = loaded.GetTable("empty");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->num_rows(), 0u);
}

TEST_F(CatalogSnapshotTest, CorruptManifestIsDataLoss) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.CreateTable("people", std::make_shared<Table>(MakePeople()))
          .ok());
  ASSERT_TRUE(SaveCatalog(catalog, dir_.string()).ok());
  std::string manifest_path = (dir_ / "MANIFEST").string();
  auto manifest = io::GetFileSystem()->ReadFile(manifest_path);
  ASSERT_TRUE(manifest.ok());
  std::string corrupt = *manifest;
  corrupt[corrupt.find('\t')] = ' ';
  ASSERT_TRUE(
      io::GetFileSystem()->WriteFileAtomic(manifest_path, corrupt).ok());
  Catalog loaded;
  auto n = LoadCatalog(dir_.string(), &loaded);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kDataLoss);
}

TEST_F(CatalogSnapshotTest, MissingSnapshotIsError) {
  Catalog loaded;
  EXPECT_FALSE(LoadCatalog((dir_ / "nope").string(), &loaded).ok());
}

TEST_F(CatalogSnapshotTest, RewriteCollectsOldGenerations) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.CreateTable("people", std::make_shared<Table>(MakePeople()))
          .ok());
  auto count_table_files = [&] {
    size_t n = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      std::string name = entry.path().filename().string();
      if (name.rfind("table_", 0) == 0 &&
          name.size() > 5 && name.substr(name.size() - 5) == ".telt") {
        ++n;
      }
    }
    return n;
  };
  // Each save writes a fresh generation (never touching the files the
  // live MANIFEST references) and garbage-collects the previous one
  // after the manifest rename, so the directory never accumulates.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(SaveCatalog(catalog, dir_.string()).ok());
    EXPECT_EQ(count_table_files(), 1u) << "after save " << i;
    Catalog loaded;
    auto n = LoadCatalog(dir_.string(), &loaded);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    EXPECT_EQ(*n, 1u);
  }
}

TEST_F(CatalogSnapshotTest, StaleTableFilesFromCrashedSaveAreIgnored) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.CreateTable("people", std::make_shared<Table>(MakePeople()))
          .ok());
  ASSERT_TRUE(SaveCatalog(catalog, dir_.string()).ok());
  // Leftover of a crashed save: a table file no MANIFEST references.
  ASSERT_TRUE(io::GetFileSystem()
                  ->WriteFileAtomic((dir_ / "table_99_0.telt").string(),
                                    "not even a telt file")
                  .ok());
  Catalog loaded;
  auto n = LoadCatalog(dir_.string(), &loaded);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 1u);
  // The next save picks a later generation and sweeps the leftover.
  ASSERT_TRUE(SaveCatalog(catalog, dir_.string()).ok());
  EXPECT_FALSE(std::filesystem::exists(dir_ / "table_99_0.telt"));
}

TEST(MemoryUsageTest, GrowsWithData) {
  Table t{Schema({{"x", ColumnType::kInt64}})};
  size_t empty = t.MemoryUsage();
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(int64_t{i})}).ok());
  }
  EXPECT_GT(t.MemoryUsage(), empty + 10000 * sizeof(int64_t) / 2);
}

}  // namespace
}  // namespace teleios::storage
