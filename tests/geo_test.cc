#include <gtest/gtest.h>

#include <cmath>

#include "geo/geometry.h"
#include "geo/predicates.h"
#include "geo/wkt.h"

namespace teleios::geo {
namespace {

TEST(EnvelopeTest, ExpandAndIntersect) {
  Envelope e = Envelope::Empty();
  EXPECT_TRUE(e.IsEmpty());
  e.Expand(Point{1, 2});
  e.Expand(Point{3, -1});
  EXPECT_FALSE(e.IsEmpty());
  EXPECT_DOUBLE_EQ(e.Width(), 2.0);
  EXPECT_DOUBLE_EQ(e.Height(), 3.0);
  EXPECT_TRUE(e.Contains(Point{2, 0}));
  EXPECT_FALSE(e.Contains(Point{0, 0}));
  Envelope other{2.5, -2, 5, 0};
  EXPECT_TRUE(e.Intersects(other));
  Envelope far{10, 10, 11, 11};
  EXPECT_FALSE(e.Intersects(far));
}

TEST(GeometryTest, MakersAndKinds) {
  EXPECT_EQ(Geometry::MakePoint(1, 2).kind(), GeometryKind::kPoint);
  EXPECT_EQ(Geometry::MakeLineString({{0, 0}, {1, 1}}).kind(),
            GeometryKind::kLineString);
  EXPECT_EQ(Geometry::MakeBox(0, 0, 1, 1).kind(), GeometryKind::kPolygon);
  EXPECT_TRUE(Geometry().IsEmpty());
  EXPECT_EQ(Geometry::MakeMultiPoint({}).kind(), GeometryKind::kEmpty);
}

TEST(GeometryTest, AreaAndPerimeter) {
  Geometry box = Geometry::MakeBox(0, 0, 4, 3);
  EXPECT_DOUBLE_EQ(box.Area(), 12.0);
  EXPECT_DOUBLE_EQ(box.Length(), 14.0);
}

TEST(GeometryTest, HoleSubtractsArea) {
  Polygon p;
  p.outer = {{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  p.holes.push_back({{2, 2}, {4, 2}, {4, 4}, {2, 4}});
  Geometry g = Geometry::MakePolygon(p);
  EXPECT_DOUBLE_EQ(g.Area(), 96.0);
}

TEST(GeometryTest, OrientationNormalized) {
  Polygon p;
  p.outer = {{0, 0}, {0, 10}, {10, 10}, {10, 0}};  // clockwise input
  Geometry g = Geometry::MakePolygon(p);
  EXPECT_GT(SignedRingArea(g.polygons()[0].outer), 0.0);  // now CCW
}

TEST(GeometryTest, CentroidOfBox) {
  Geometry box = Geometry::MakeBox(0, 0, 4, 2);
  Point c = box.Centroid();
  EXPECT_NEAR(c.x, 2.0, 1e-9);
  EXPECT_NEAR(c.y, 1.0, 1e-9);
}

TEST(WktTest, PointRoundTrip) {
  auto g = ParseWkt("POINT (21.5 37.25)");
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->AsPoint().x, 21.5);
  auto again = ParseWkt(WriteWkt(*g));
  ASSERT_TRUE(again.ok());
  EXPECT_DOUBLE_EQ(again->AsPoint().y, 37.25);
}

TEST(WktTest, PolygonWithHoleRoundTrip) {
  std::string wkt =
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 2 4, 4 4, 4 2, 2 2))";
  auto g = ParseWkt(wkt);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  ASSERT_EQ(g->polygons().size(), 1u);
  EXPECT_EQ(g->polygons()[0].holes.size(), 1u);
  auto again = ParseWkt(WriteWkt(*g));
  ASSERT_TRUE(again.ok());
  EXPECT_DOUBLE_EQ(again->Area(), 96.0);
}

TEST(WktTest, MultiGeometries) {
  auto mp = ParseWkt("MULTIPOINT ((1 1), (2 2))");
  ASSERT_TRUE(mp.ok());
  EXPECT_EQ(mp->points().size(), 2u);
  auto ml = ParseWkt("MULTILINESTRING ((0 0, 1 1), (2 2, 3 3, 4 4))");
  ASSERT_TRUE(ml.ok());
  EXPECT_EQ(ml->lines().size(), 2u);
  auto mpoly = ParseWkt(
      "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 6 5, 6 6, 5 6, 5 "
      "5)))");
  ASSERT_TRUE(mpoly.ok());
  EXPECT_EQ(mpoly->polygons().size(), 2u);
  EXPECT_DOUBLE_EQ(mpoly->Area(), 2.0);
}

TEST(WktTest, EmptyAndErrors) {
  auto empty = ParseWkt("POLYGON EMPTY");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->IsEmpty());
  auto gc = ParseWkt("GEOMETRYCOLLECTION EMPTY");
  ASSERT_TRUE(gc.ok());
  EXPECT_TRUE(gc->IsEmpty());
  EXPECT_FALSE(ParseWkt("POINT (1)").ok());
  EXPECT_FALSE(ParseWkt("BLOB (1 2)").ok());
  EXPECT_FALSE(ParseWkt("POINT (1 2) junk").ok());
  EXPECT_FALSE(ParseWkt("POLYGON ((0 0, 1 1))").ok());  // degenerate ring
}

TEST(WktTest, ScientificNotationCoordinates) {
  auto g = ParseWkt("POINT (2.15e1 -3.7e-1)");
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(g->AsPoint().x, 21.5, 1e-12);
  EXPECT_NEAR(g->AsPoint().y, -0.37, 1e-12);
}

TEST(PredicatesTest, SegmentsIntersect) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
  // Touching endpoint counts.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
  // Collinear overlap counts.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
}

TEST(PredicatesTest, PointInRing) {
  Ring square = {{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  EXPECT_TRUE(PointInRing({5, 5}, square));
  EXPECT_FALSE(PointInRing({-1, 5}, square));
  EXPECT_TRUE(PointInRing({0, 5}, square));   // boundary inclusive
  EXPECT_TRUE(PointInRing({10, 10}, square));  // corner inclusive
}

TEST(PredicatesTest, PointInPolygonWithHole) {
  Polygon p;
  p.outer = {{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  p.holes.push_back({{4, 4}, {6, 4}, {6, 6}, {4, 6}});
  EXPECT_TRUE(PointInPolygon({2, 2}, p));
  EXPECT_FALSE(PointInPolygon({5, 5}, p));  // inside the hole
  EXPECT_TRUE(PointInPolygon({4, 5}, p));   // on the hole boundary
}

TEST(PredicatesTest, IntersectsKindMatrix) {
  Geometry box = Geometry::MakeBox(0, 0, 10, 10);
  EXPECT_TRUE(Intersects(Geometry::MakePoint(5, 5), box));
  EXPECT_FALSE(Intersects(Geometry::MakePoint(15, 5), box));
  Geometry crossing = Geometry::MakeLineString({{-5, 5}, {15, 5}});
  EXPECT_TRUE(Intersects(crossing, box));
  Geometry inside_line = Geometry::MakeLineString({{1, 1}, {2, 2}});
  EXPECT_TRUE(Intersects(inside_line, box));  // containment, no crossing
  Geometry outside_line = Geometry::MakeLineString({{20, 20}, {30, 30}});
  EXPECT_FALSE(Intersects(outside_line, box));
  Geometry other_box = Geometry::MakeBox(5, 5, 15, 15);
  EXPECT_TRUE(Intersects(box, other_box));
  EXPECT_TRUE(Disjoint(box, Geometry::MakeBox(20, 20, 30, 30)));
}

TEST(PredicatesTest, ContainsAndWithin) {
  Geometry big = Geometry::MakeBox(0, 0, 10, 10);
  Geometry small = Geometry::MakeBox(2, 2, 4, 4);
  EXPECT_TRUE(Contains(big, small));
  EXPECT_FALSE(Contains(small, big));
  EXPECT_TRUE(Within(small, big));
  EXPECT_TRUE(Contains(big, Geometry::MakePoint(5, 5)));
  Geometry overlapping = Geometry::MakeBox(5, 5, 15, 15);
  EXPECT_FALSE(Contains(big, overlapping));
}

TEST(PredicatesTest, DistancePositiveAndZero) {
  Geometry a = Geometry::MakeBox(0, 0, 1, 1);
  Geometry b = Geometry::MakeBox(4, 0, 5, 1);
  EXPECT_DOUBLE_EQ(Distance(a, b), 3.0);
  EXPECT_DOUBLE_EQ(Distance(a, Geometry::MakeBox(0.5, 0.5, 2, 2)), 0.0);
  EXPECT_DOUBLE_EQ(
      Distance(Geometry::MakePoint(0, 0), Geometry::MakePoint(3, 4)), 5.0);
  // Point to segment distance beats vertex distance.
  Geometry seg = Geometry::MakeLineString({{-10, 2}, {10, 2}});
  EXPECT_DOUBLE_EQ(Distance(Geometry::MakePoint(0, 0), seg), 2.0);
}

TEST(PredicatesTest, ConvexHull) {
  Geometry pts = Geometry::MakeMultiPoint(
      {{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 1}});
  Geometry hull = ConvexHull(pts);
  ASSERT_EQ(hull.kind(), GeometryKind::kPolygon);
  EXPECT_DOUBLE_EQ(hull.Area(), 16.0);
  EXPECT_EQ(hull.polygons()[0].outer.size(), 4u);  // interior pts dropped
}

TEST(PredicatesTest, BufferPointIsCircle) {
  Geometry circle = Buffer(Geometry::MakePoint(0, 0), 2.0, 64);
  ASSERT_EQ(circle.kind(), GeometryKind::kPolygon);
  EXPECT_NEAR(circle.Area(), M_PI * 4.0, 0.05);
  EXPECT_TRUE(Contains(circle, Geometry::MakePoint(1.9, 0)));
  EXPECT_FALSE(Contains(circle, Geometry::MakePoint(2.1, 0)));
}

TEST(PredicatesTest, BufferCoversOriginal) {
  Geometry box = Geometry::MakeBox(0, 0, 2, 2);
  Geometry buffered = Buffer(box, 1.0, 32);
  EXPECT_TRUE(Contains(buffered, box));
  EXPECT_GT(buffered.Area(), box.Area());
}

TEST(PredicatesTest, BufferCoversMultiPolygon) {
  Geometry two = Geometry::MakeMultiPolygon(
      {{{{0, 0}, {1, 0}, {1, 1}, {0, 1}}, {}},
       {{{5, 5}, {6, 5}, {6, 6}, {5, 6}}, {}}});
  Geometry buffered = Buffer(two, 0.5, 16);
  EXPECT_TRUE(Contains(buffered, two));
  Geometry zero = Buffer(two, 0.0);
  EXPECT_DOUBLE_EQ(zero.Area(), two.Area());  // non-positive = identity
}

TEST(PredicatesTest, LineDistanceToPolygonBoundary) {
  // A line ending just outside a polygon: distance is to the boundary.
  Geometry box = Geometry::MakeBox(0, 0, 10, 10);
  Geometry line = Geometry::MakeLineString({{12, 5}, {20, 5}});
  EXPECT_DOUBLE_EQ(Distance(box, line), 2.0);
  // Line fully inside has distance 0 (containment).
  Geometry inside = Geometry::MakeLineString({{2, 2}, {3, 3}});
  EXPECT_DOUBLE_EQ(Distance(box, inside), 0.0);
}

/// Distance symmetry / triangle-ish property sweep over point layouts.
class DistanceSweep
    : public ::testing::TestWithParam<std::pair<Point, Point>> {};

TEST_P(DistanceSweep, SymmetricAndNonNegative) {
  auto [p, q] = GetParam();
  Geometry a = Geometry::MakePoint(p.x, p.y);
  Geometry b = Geometry::MakePoint(q.x, q.y);
  double ab = Distance(a, b);
  double ba = Distance(b, a);
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_GE(ab, 0.0);
  EXPECT_DOUBLE_EQ(ab, std::hypot(p.x - q.x, p.y - q.y));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, DistanceSweep,
    ::testing::Values(std::make_pair(Point{0, 0}, Point{0, 0}),
                      std::make_pair(Point{1, 2}, Point{-3, 5}),
                      std::make_pair(Point{-1, -1}, Point{1, 1}),
                      std::make_pair(Point{100, 0}, Point{0, 100})));

}  // namespace
}  // namespace teleios::geo
