#include <gtest/gtest.h>

#include "relational/evaluator.h"
#include "relational/expression.h"
#include "relational/operators.h"

namespace teleios::relational {
namespace {

using storage::ColumnType;
using storage::Schema;
using storage::Table;

Table Sensors() {
  Table t{Schema({{"id", ColumnType::kInt64},
                  {"band", ColumnType::kString},
                  {"temp", ColumnType::kFloat64}})};
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1}), Value("IR039"), Value(320.0)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{2}), Value("IR108"), Value(295.5)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{3}), Value("IR039"), Value(305.0)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{4}), Value("VIS006"), Value()}).ok());
  return t;
}

TEST(ExpressionTest, BuildAndPrint) {
  ExprPtr e = Expr::Binary(BinaryOp::kGt, Expr::ColumnRef("temp"),
                           Expr::Literal(Value(300.0)));
  EXPECT_EQ(e->ToString(), "(temp > 300)");
  EXPECT_FALSE(ContainsAggregate(e));
  std::vector<std::string> cols;
  CollectColumnRefs(e, &cols);
  ASSERT_EQ(cols.size(), 1u);
  EXPECT_EQ(cols[0], "temp");
}

TEST(ExpressionTest, AggregateDetection) {
  ExprPtr agg = Expr::Function("sum", {Expr::ColumnRef("temp")});
  EXPECT_TRUE(ContainsAggregate(agg));
  EXPECT_TRUE(IsAggregateFunction("count"));
  EXPECT_FALSE(IsAggregateFunction("sqrt"));
}

TEST(EvaluatorTest, Arithmetic) {
  auto lit = [](double d) { return Expr::Literal(Value(d)); };
  ExprPtr e = Expr::Binary(BinaryOp::kAdd, lit(2),
                           Expr::Binary(BinaryOp::kMul, lit(3), lit(4)));
  auto v = Evaluate(e, [](const std::string&) -> Result<Value> {
    return Status::NotFound("none");
  });
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsFloat64(), 14.0);
}

TEST(EvaluatorTest, IntegerDivisionStaysInt) {
  ExprPtr e = Expr::Binary(BinaryOp::kDiv, Expr::Literal(Value(int64_t{7})),
                           Expr::Literal(Value(int64_t{2})));
  auto v = Evaluate(e, [](const std::string&) -> Result<Value> {
    return Value();
  });
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->type(), ValueType::kInt64);
  EXPECT_EQ(v->AsInt64(), 3);
}

TEST(EvaluatorTest, DivisionByZeroErrors) {
  ExprPtr e = Expr::Binary(BinaryOp::kDiv, Expr::Literal(Value(int64_t{1})),
                           Expr::Literal(Value(int64_t{0})));
  EXPECT_FALSE(Evaluate(e, [](const std::string&) -> Result<Value> {
                 return Value();
               }).ok());
}

TEST(EvaluatorTest, NullPropagatesThroughComparison) {
  ExprPtr e = Expr::Binary(BinaryOp::kLt, Expr::Literal(Value()),
                           Expr::Literal(Value(int64_t{1})));
  auto v = Evaluate(e, [](const std::string&) -> Result<Value> {
    return Value();
  });
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(EvaluatorTest, LikeMatching) {
  EXPECT_TRUE(LikeMatch("IR039", "IR%"));
  EXPECT_TRUE(LikeMatch("IR039", "IR_39"));
  EXPECT_FALSE(LikeMatch("VIS006", "IR%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("abc", "%c"));
  EXPECT_FALSE(LikeMatch("abc", "%d"));
  EXPECT_TRUE(LikeMatch("a%b", "a%b"));  // % in text matched by literal path
}

TEST(EvaluatorTest, ScalarFunctions) {
  auto eval = [](ExprPtr e) {
    return Evaluate(e, [](const std::string&) -> Result<Value> {
      return Value();
    });
  };
  EXPECT_DOUBLE_EQ(
      eval(Expr::Function("sqrt", {Expr::Literal(Value(9.0))}))->AsFloat64(),
      3.0);
  EXPECT_EQ(
      eval(Expr::Function("floor", {Expr::Literal(Value(2.9))}))->AsInt64(),
      2);
  EXPECT_EQ(eval(Expr::Function("upper", {Expr::Literal(Value("abc"))}))
                ->AsString(),
            "ABC");
  EXPECT_EQ(eval(Expr::Function("coalesce",
                                {Expr::Literal(Value()),
                                 Expr::Literal(Value(int64_t{5}))}))
                ->AsInt64(),
            5);
  EXPECT_EQ(eval(Expr::Function(
                     "if", {Expr::Literal(Value(false)),
                            Expr::Literal(Value(int64_t{1})),
                            Expr::Literal(Value(int64_t{2}))}))
                ->AsInt64(),
            2);
  EXPECT_EQ(eval(Expr::Function("substr", {Expr::Literal(Value("teleios")),
                                           Expr::Literal(Value(int64_t{2})),
                                           Expr::Literal(Value(int64_t{3}))}))
                ->AsString(),
            "ele");
}

TEST(BoundExprTest, BindsColumnsOnce) {
  Table t = Sensors();
  ExprPtr e = Expr::Binary(BinaryOp::kGt, Expr::ColumnRef("temp"),
                           Expr::Literal(Value(300.0)));
  auto bound = BoundExpr::Bind(e, t);
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound->Eval(t, 0)->Truthy());
  EXPECT_FALSE(bound->Eval(t, 1)->Truthy());
  EXPECT_FALSE(BoundExpr::Bind(Expr::ColumnRef("nope"), t).ok());
}

TEST(BoundExprTest, QualifiedNameFallback) {
  Table t = Sensors();
  auto bound = BoundExpr::Bind(Expr::ColumnRef("s.temp"), t);
  ASSERT_TRUE(bound.ok());
  EXPECT_DOUBLE_EQ(bound->Eval(t, 0)->AsFloat64(), 320.0);
}

TEST(OperatorsTest, FilterKeepsMatchingRows) {
  Table t = Sensors();
  ExprPtr pred = Expr::Binary(
      BinaryOp::kAnd,
      Expr::Binary(BinaryOp::kEq, Expr::ColumnRef("band"),
                   Expr::Literal(Value("IR039"))),
      Expr::Binary(BinaryOp::kGt, Expr::ColumnRef("temp"),
                   Expr::Literal(Value(310.0))));
  auto out = Filter(t, pred);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->Get(0, 0), Value(int64_t{1}));
}

TEST(OperatorsTest, FilterNullIsFalse) {
  Table t = Sensors();
  ExprPtr pred = Expr::Binary(BinaryOp::kGt, Expr::ColumnRef("temp"),
                              Expr::Literal(Value(0.0)));
  auto out = Filter(t, pred);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 3u);  // the NULL temp row is dropped
}

TEST(OperatorsTest, ProjectComputeInfersTypes) {
  Table t = Sensors();
  auto out = ProjectCompute(
      t, {{Expr::Binary(BinaryOp::kMul, Expr::ColumnRef("id"),
                        Expr::Literal(Value(int64_t{10}))),
           "id10"},
          {Expr::ColumnRef("band"), "b"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().field(0).type, ColumnType::kInt64);
  EXPECT_EQ(out->schema().field(1).type, ColumnType::kString);
  EXPECT_EQ(out->Get(2, 0), Value(int64_t{30}));
}

Table Bands() {
  Table t{Schema({{"band", ColumnType::kString},
                  {"wavelength", ColumnType::kFloat64}})};
  EXPECT_TRUE(t.AppendRow({Value("IR039"), Value(3.9)}).ok());
  EXPECT_TRUE(t.AppendRow({Value("IR108"), Value(10.8)}).ok());
  return t;
}

TEST(OperatorsTest, HashJoinInner) {
  auto out = HashJoin(Sensors(), Bands(), {"band"}, {"band"});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 3u);  // VIS006 has no match
  // Clashing column renamed.
  EXPECT_GE(out->schema().FieldIndex("r_band"), 0);
}

TEST(OperatorsTest, HashJoinLeftOuter) {
  auto out = HashJoin(Sensors(), Bands(), {"band"}, {"band"},
                      JoinType::kLeftOuter);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 4u);
  // The VIS006 row has NULL wavelength.
  int wl = out->schema().FieldIndex("wavelength");
  ASSERT_GE(wl, 0);
  bool found_null = false;
  for (size_t r = 0; r < out->num_rows(); ++r) {
    if (out->Get(r, static_cast<size_t>(wl)).is_null()) found_null = true;
  }
  EXPECT_TRUE(found_null);
}

TEST(OperatorsTest, HashJoinNullKeysNeverMatch) {
  Table left{Schema({{"k", ColumnType::kInt64}})};
  ASSERT_TRUE(left.AppendRow({Value()}).ok());
  Table right{Schema({{"k", ColumnType::kInt64}})};
  ASSERT_TRUE(right.AppendRow({Value()}).ok());
  auto out = HashJoin(left, right, {"k"}, {"k"});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 0u);
}

TEST(OperatorsTest, GroupAggregate) {
  auto out = GroupAggregate(
      Sensors(), {"band"},
      {{"count", nullptr, "n"},
       {"avg", Expr::ColumnRef("temp"), "avg_temp"},
       {"max", Expr::ColumnRef("temp"), "max_temp"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 3u);
  // Row order follows first appearance: IR039 first.
  EXPECT_EQ(out->Get(0, 0), Value("IR039"));
  EXPECT_EQ(out->Get(0, 1), Value(int64_t{2}));
  EXPECT_DOUBLE_EQ(out->Get(0, 2).AsFloat64(), 312.5);
  EXPECT_DOUBLE_EQ(out->Get(0, 3).AsFloat64(), 320.0);
  // VIS006 group: count(*)=1 but avg over NULL = NULL.
  EXPECT_EQ(out->Get(2, 1), Value(int64_t{1}));
  EXPECT_TRUE(out->Get(2, 2).is_null());
}

TEST(OperatorsTest, GlobalAggregateOnEmptyInput) {
  Table t{Schema({{"x", ColumnType::kInt64}})};
  auto out = GroupAggregate(t, {}, {{"count", nullptr, "n"}});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->Get(0, 0), Value(int64_t{0}));
}

TEST(OperatorsTest, SumStaysIntegerForIntInput) {
  Table t{Schema({{"x", ColumnType::kInt64}})};
  ASSERT_TRUE(t.AppendRow({Value(int64_t{2})}).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{3})}).ok());
  auto out = GroupAggregate(t, {}, {{"sum", Expr::ColumnRef("x"), "s"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Get(0, 0), Value(int64_t{5}));
}

TEST(OperatorsTest, SortMultiKey) {
  auto out = Sort(Sensors(), {{"band", false}, {"temp", true}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Get(0, 1), Value("IR039"));
  EXPECT_DOUBLE_EQ(out->Get(0, 2).AsFloat64(), 320.0);  // desc within band
  EXPECT_DOUBLE_EQ(out->Get(1, 2).AsFloat64(), 305.0);
}

TEST(OperatorsTest, SortIsStable) {
  Table t{Schema({{"k", ColumnType::kInt64}, {"seq", ColumnType::kInt64}})};
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(i % 3), Value(i)}).ok());
  }
  auto out = Sort(t, {{"k", false}});
  ASSERT_TRUE(out.ok());
  // Within equal keys, original order (seq ascending) is preserved.
  int64_t prev_key = -1, prev_seq = -1;
  for (size_t r = 0; r < out->num_rows(); ++r) {
    int64_t k = out->Get(r, 0).AsInt64();
    int64_t seq = out->Get(r, 1).AsInt64();
    if (k == prev_key) EXPECT_GT(seq, prev_seq);
    prev_key = k;
    prev_seq = seq;
  }
}

TEST(OperatorsTest, SortNullsFirst) {
  auto out = Sort(Sensors(), {{"temp", false}});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->Get(0, 2).is_null());
}

TEST(OperatorsTest, LimitOffset) {
  Table t = Sensors();
  Table window = Limit(t, 2, 1);
  ASSERT_EQ(window.num_rows(), 2u);
  EXPECT_EQ(window.Get(0, 0), Value(int64_t{2}));
}

TEST(OperatorsTest, Distinct) {
  Table t{Schema({{"x", ColumnType::kInt64}})};
  for (int64_t v : {1, 2, 1, 3, 2}) {
    ASSERT_TRUE(t.AppendRow({Value(v)}).ok());
  }
  Table d = Distinct(t);
  ASSERT_EQ(d.num_rows(), 3u);
  EXPECT_EQ(d.Get(0, 0), Value(int64_t{1}));
  EXPECT_EQ(d.Get(2, 0), Value(int64_t{3}));
}

TEST(VectorizedFilterTest, RecognizesSimpleShapes) {
  Table t = Sensors();
  auto col_const = Expr::Binary(BinaryOp::kGt, Expr::ColumnRef("temp"),
                                Expr::Literal(Value(300.0)));
  EXPECT_TRUE(IsVectorizablePredicate(t, col_const));
  auto str_eq = Expr::Binary(BinaryOp::kEq, Expr::ColumnRef("band"),
                             Expr::Literal(Value("IR039")));
  EXPECT_TRUE(IsVectorizablePredicate(t, str_eq));
  auto conj = Expr::Binary(BinaryOp::kAnd, col_const, str_eq);
  EXPECT_TRUE(IsVectorizablePredicate(t, conj));
  auto diff = Expr::Binary(
      BinaryOp::kGt,
      Expr::Binary(BinaryOp::kSub, Expr::ColumnRef("temp"),
                   Expr::ColumnRef("id")),
      Expr::Literal(Value(100.0)));
  EXPECT_TRUE(IsVectorizablePredicate(t, diff));
  // LIKE and function calls are not vectorizable -> interpreter fallback.
  auto like = Expr::Binary(BinaryOp::kLike, Expr::ColumnRef("band"),
                           Expr::Literal(Value("IR%")));
  EXPECT_FALSE(IsVectorizablePredicate(t, like));
  auto fn = Expr::Function("sqrt", {Expr::ColumnRef("temp")});
  EXPECT_FALSE(IsVectorizablePredicate(t, fn));
}

TEST(VectorizedFilterTest, MatchesInterpreterOnAllShapes) {
  Table t = Sensors();
  std::vector<ExprPtr> predicates = {
      Expr::Binary(BinaryOp::kGt, Expr::ColumnRef("temp"),
                   Expr::Literal(Value(300.0))),
      Expr::Binary(BinaryOp::kLe, Expr::Literal(Value(300.0)),
                   Expr::ColumnRef("temp")),  // mirrored constant side
      Expr::Binary(BinaryOp::kEq, Expr::ColumnRef("band"),
                   Expr::Literal(Value("IR039"))),
      Expr::Binary(BinaryOp::kNe, Expr::ColumnRef("band"),
                   Expr::Literal(Value("IR039"))),
      Expr::Binary(BinaryOp::kEq, Expr::ColumnRef("band"),
                   Expr::Literal(Value("NOT_IN_DICT"))),
      Expr::Binary(BinaryOp::kLt, Expr::ColumnRef("id"),
                   Expr::ColumnRef("temp")),
      Expr::Binary(
          BinaryOp::kGt,
          Expr::Binary(BinaryOp::kSub, Expr::ColumnRef("temp"),
                       Expr::ColumnRef("id")),
          Expr::Literal(Value(300.0))),
  };
  // Conjunction of the first two as well.
  predicates.push_back(Expr::Binary(BinaryOp::kAnd, predicates[0],
                                    predicates[2]));
  for (const ExprPtr& p : predicates) {
    auto fast = FilterIndices(t, p);
    auto slow = FilterIndicesInterpreted(t, p);
    ASSERT_TRUE(fast.ok()) << p->ToString();
    ASSERT_TRUE(slow.ok()) << p->ToString();
    EXPECT_EQ(*fast, *slow) << p->ToString();
  }
}

/// Property sweep: filter + take round trip preserves values for varying
/// table sizes.
class FilterSweep : public ::testing::TestWithParam<int> {};

TEST_P(FilterSweep, ThresholdCountsMatchBruteForce) {
  int n = GetParam();
  Table t{Schema({{"v", ColumnType::kInt64}})};
  int expected = 0;
  for (int i = 0; i < n; ++i) {
    int64_t v = (i * 37) % 101;
    if (v > 50) ++expected;
    ASSERT_TRUE(t.AppendRow({Value(v)}).ok());
  }
  auto out = Filter(t, Expr::Binary(BinaryOp::kGt, Expr::ColumnRef("v"),
                                    Expr::Literal(Value(int64_t{50}))));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), static_cast<size_t>(expected));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FilterSweep,
                         ::testing::Values(0, 1, 10, 257, 4096));

}  // namespace
}  // namespace teleios::relational
