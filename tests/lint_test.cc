// Exercises tools/teleios_lint: each rule fires on its bad fixture with
// the exact rule ID, stays quiet on the good fixtures, and the
// suppression-comment escape hatch works. The ctest target
// `teleios_lint` separately asserts the real src/ tree is clean; these
// tests pin down *what* that target enforces.

#include "lint.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace teleios::lint {
namespace {

std::string FixturePath(const std::string& rel) {
  return std::string(TELEIOS_LINT_FIXTURE_DIR) + "/" + rel;
}

std::string ReadFixture(const std::string& rel) {
  std::ifstream in(FixturePath(rel), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << rel;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> RuleIds(const std::vector<Finding>& findings) {
  std::vector<std::string> ids;
  for (const auto& f : findings) ids.push_back(f.rule);
  return ids;
}

std::vector<Finding> LintFixture(const std::string& rel) {
  return LintSource(FixturePath(rel), ReadFixture(rel));
}

TEST(LintRuleTest, RawStreamIoFiresTl001) {
  auto findings = LintFixture("bad/raw_io.cc");
  ASSERT_FALSE(findings.empty());
  // Both the #include <fstream> and the std::ofstream use are reported.
  EXPECT_EQ(RuleIds(findings), (std::vector<std::string>{"TL001", "TL001"}));
}

TEST(LintRuleTest, FilesystemUseFiresTl001) {
  auto findings = LintFixture("bad/filesystem_use.cc");
  ASSERT_EQ(findings.size(), 2u);  // include + qualified use
  EXPECT_EQ(findings[0].rule, "TL001");
  EXPECT_EQ(findings[1].rule, "TL001");
}

TEST(LintRuleTest, FopenFiresTl001) {
  auto findings = LintFixture("bad/fopen_call.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "TL001");
  EXPECT_NE(findings[0].message.find("fopen"), std::string::npos);
}

TEST(LintRuleTest, NakedMutexMemberFiresTl002) {
  auto findings = LintFixture("bad/naked_mutex.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "TL002");
}

TEST(LintRuleTest, RawThreadFiresTl003) {
  auto findings = LintFixture("bad/raw_thread.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "TL003");
}

TEST(LintRuleTest, SwallowingCatchFiresTl004) {
  auto findings = LintFixture("bad/swallow.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "TL004");
}

TEST(LintRuleTest, CatchBadAllocFiresTl005) {
  auto findings = LintFixture("bad/catch_bad_alloc.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "TL005");
  EXPECT_NE(findings[0].message.find("WithOomGuard"), std::string::npos);
}

TEST(LintRuleTest, GovernorDirectoryIsExemptFromTl005) {
  EXPECT_TRUE(LintFixture("good/governor/catch_bad_alloc.cc").empty());
}

TEST(LintRuleTest, RawSocketFiresTl006) {
  auto findings = LintFixture("bad/raw_socket.cc");
  // The <sys/socket.h> include plus the socket/htons/accept calls.
  ASSERT_EQ(findings.size(), 4u);
  for (const auto& f : findings) EXPECT_EQ(f.rule, "TL006");
  EXPECT_NE(findings[0].message.find("<sys/socket.h>"), std::string::npos);
  EXPECT_NE(findings[1].message.find("socket()"), std::string::npos);
  EXPECT_NE(findings[2].message.find("htons()"), std::string::npos);
  EXPECT_NE(findings[3].message.find("accept()"), std::string::npos);
}

TEST(LintRuleTest, ServerDirectoryIsExemptFromTl006) {
  EXPECT_TRUE(LintFixture("good/server/socket_use.cc").empty());
}

TEST(LintRuleTest, HandRolledTransportOutsideServerFiresTl006) {
  // A private "transport" class re-implementing connection plumbing
  // outside src/server/ bypasses the swappable Transport seam (and with
  // it fault injection and shed policy): every raw call fires.
  auto findings = LintFixture("bad/fake_transport.cc");
  ASSERT_EQ(findings.size(), 4u);
  for (const auto& f : findings) EXPECT_EQ(f.rule, "TL006");
  EXPECT_NE(findings[0].message.find("<netinet/in.h>"), std::string::npos);
  EXPECT_NE(findings[1].message.find("socket()"), std::string::npos);
  EXPECT_NE(findings[2].message.find("htons()"), std::string::npos);
  EXPECT_NE(findings[3].message.find("accept()"), std::string::npos);
}

TEST(LintRuleTest, TransportImplementationsInServerAreExemptFromTl006) {
  EXPECT_TRUE(LintFixture("good/server/transport_use.cc").empty());
}

TEST(LintScannerTest, SocketLookalikesDoNotFireTl006) {
  // Member calls, namespace-qualified names from elsewhere, and plain
  // identifiers that only share a name with the C API are all fine.
  const char* src = R"lint(
    void F(Listener& l) {
      l.accept();
      queue->recv(5);
      std::accept(1);
      int accept = 3;
      (void)accept;
    }
  )lint";
  EXPECT_TRUE(LintSource("src/vault/x.cc", src).empty());
}

TEST(LintScannerTest, GlobalScopeSocketCallFiresTl006) {
  // `::socket(...)` at global scope is exactly what the rule fences.
  const char* src = "int F() { return ::socket(2, 1, 0); }";
  auto findings = LintSource("src/vault/x.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "TL006");
}

TEST(LintScannerTest, BadAllocSpellingsAllFireTl005) {
  // By value, by reference, and unqualified (after using-declarations)
  // are all the same policy violation.
  const char* by_value = "void F() { try { G(); } catch (std::bad_alloc) { } }";
  const char* by_ref =
      "void F() { try { G(); } catch (std::bad_alloc& e) { } }";
  const char* unqualified =
      "void F() { try { G(); } catch (const bad_alloc& e) { } }";
  for (const char* src : {by_value, by_ref, unqualified}) {
    auto findings = LintSource("src/vault/x.cc", src);
    ASSERT_EQ(findings.size(), 1u) << src;
    EXPECT_EQ(findings[0].rule, "TL005") << src;
  }
}

TEST(LintScannerTest, CatchEllipsisDoesNotFireTl005) {
  // TL004's territory; TL005 only matches bad_alloc in the declarator.
  const char* src = "void F() { try { G(); } catch (...) { throw; } }";
  EXPECT_TRUE(LintSource("src/vault/x.cc", src).empty());
}

TEST(LintRuleTest, IoDirectoryIsExemptFromTl001) {
  EXPECT_TRUE(LintFixture("good/io/file_io.cc").empty());
}

TEST(LintRuleTest, ExecDirectoryIsExemptFromTl003) {
  EXPECT_TRUE(LintFixture("good/exec/spawns_thread.cc").empty());
}

TEST(LintRuleTest, GuardedMutexIsClean) {
  EXPECT_TRUE(LintFixture("good/guarded_mutex.cc").empty());
}

TEST(LintRuleTest, RethrowingAndCapturingCatchesAreClean) {
  EXPECT_TRUE(LintFixture("good/rethrow.cc").empty());
}

TEST(LintRuleTest, SuppressionCommentSilencesRule) {
  EXPECT_TRUE(LintFixture("good/suppressed.cc").empty());
}

TEST(LintScannerTest, StringsAndCommentsDoNotTrip) {
  // The forbidden tokens only appear inside literals and comments.
  const char* src = R"lint(
    // std::thread in a comment
    /* std::ofstream in a block comment */
    const char* s = "std::filesystem::exists(fopen)";
  )lint";
  EXPECT_TRUE(LintSource("some/file.cc", src).empty());
}

TEST(LintScannerTest, ThisThreadIsNotAThread) {
  const char* src = R"(
    #include <chrono>
    void Nap() { std::this_thread::sleep_for(std::chrono::seconds(1)); }
  )";
  EXPECT_TRUE(LintSource("some/file.cc", src).empty());
}

TEST(LintScannerTest, TemplateHeaderIsNotAClass) {
  // `template <class T>` must not open a class scope; the local mutex
  // in the function body is not a member.
  const char* src = R"(
    #include <mutex>
    template <class T>
    T Locked(T v) {
      static std::mutex mu;
      std::lock_guard<std::mutex> lock(mu);
      return v;
    }
  )";
  EXPECT_TRUE(LintSource("some/file.cc", src).empty());
}

TEST(LintScannerTest, SuppressionOnSameLineWorks) {
  const char* src =
      "class C {\n"
      "  std::mutex mu_;  // teleios-lint: allow(TL002)\n"
      "};\n";
  EXPECT_TRUE(LintSource("some/file.cc", src).empty());
}

TEST(LintScannerTest, SuppressionOfOtherRuleDoesNotSilence) {
  const char* src =
      "class C {\n"
      "  std::mutex mu_;  // teleios-lint: allow(TL001)\n"
      "};\n";
  auto findings = LintSource("some/file.cc", src);
  // The TL002 still fires, and the allow(TL001) — which suppressed
  // nothing — is itself reported stale.
  EXPECT_EQ(RuleIds(findings), (std::vector<std::string>{"TL002", "TL007"}));
}

TEST(LintStaleSuppressionTest, UnusedSuppressionFiresTl007) {
  // The code the allow() excused is gone; the comment lingers.
  const char* src =
      "// teleios-lint: allow(TL003)\n"
      "int NoThreadHereAnymore() { return 1; }\n";
  auto findings = LintSource("some/file.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "TL007");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("TL003"), std::string::npos);
}

TEST(LintStaleSuppressionTest, UsedSuppressionDoesNotFireTl007) {
  const char* src =
      "class C {\n"
      "  std::mutex mu_;  // teleios-lint: allow(TL002)\n"
      "};\n";
  EXPECT_TRUE(LintSource("some/file.cc", src).empty());
}

TEST(LintStaleSuppressionTest, UnknownRuleIdFiresTl007) {
  // A typo in the rule ID suppresses nothing, silently — worse than a
  // stale comment because the author believes a rule is being waived.
  const char* src =
      "class C {\n"
      "  std::mutex mu_;  // teleios-lint: allow(TL0002)\n"
      "};\n";
  auto findings = LintSource("some/file.cc", src);
  // The misspelled allow() is reported AND the TL002 still fires.
  EXPECT_EQ(RuleIds(findings), (std::vector<std::string>{"TL002", "TL007"}));
  EXPECT_NE(findings[1].message.find("TL0002"), std::string::npos);
}

TEST(LintStaleSuppressionTest, Tl007IsItselfSuppressible) {
  // allow(TL007) acknowledges a deliberately-retained suppression (e.g.
  // code that only exists under an #ifdef the linter cannot evaluate).
  const char* src =
      "// teleios-lint: allow(TL003, TL007)\n"
      "int NoThreadHereAnymore() { return 1; }\n";
  EXPECT_TRUE(LintSource("some/file.cc", src).empty());
}

TEST(LintStaleSuppressionTest, MultiRuleCommentReportsOnlyStaleIds) {
  const char* src =
      "class C {\n"
      "  std::mutex mu_;  // teleios-lint: allow(TL002, TL001)\n"
      "};\n";
  auto findings = LintSource("some/file.cc", src);
  // TL002 was used; TL001 was not.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "TL007");
  EXPECT_NE(findings[0].message.find("TL001"), std::string::npos);
}

TEST(LintScannerTest, AnnotatedWrapperMutexCountsAsMutexMember) {
  // The teleios::Mutex wrapper is held to the same standard as
  // std::mutex: a capability nobody annotates against is suspicious.
  const char* src =
      "class C {\n"
      "  Mutex mu_;\n"
      "  int x_ = 0;\n"
      "};\n";
  auto findings = LintSource("some/file.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "TL002");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintPathTest, HasDirComponent) {
  EXPECT_TRUE(HasDirComponent("src/io/retry.cc", "io"));
  EXPECT_TRUE(HasDirComponent("io/retry.cc", "io"));
  EXPECT_TRUE(HasDirComponent("/root/repo/src/io/x.h", "io"));
  EXPECT_FALSE(HasDirComponent("src/vault/vault.cc", "io"));
  EXPECT_FALSE(HasDirComponent("src/audio/x.cc", "io"));
  EXPECT_FALSE(HasDirComponent("src/iodine.cc", "io"));
}

TEST(LintPathTest, HasDirComponentMatchesWholeSegmentsOnly) {
  // A directory whose name merely starts with (or contains) the rule
  // dir must not inherit its exemption.
  EXPECT_FALSE(HasDirComponent("src/ioutil/f.cc", "io"));
  EXPECT_FALSE(HasDirComponent("src/radio/f.cc", "io"));
  EXPECT_FALSE(HasDirComponent("ioutil/f.cc", "io"));
  EXPECT_TRUE(HasDirComponent("src/ioutil/io/f.cc", "io"));
}

TEST(LintPathTest, HasDirComponentEdgeCases) {
  // Leading ./ and duplicate separators are path noise, not components.
  EXPECT_TRUE(HasDirComponent("./src/io/f.cc", "io"));
  EXPECT_TRUE(HasDirComponent("src//io//f.cc", "io"));
  EXPECT_FALSE(HasDirComponent("./src/iox/f.cc", "io"));
  // The final segment is a filename, never a directory component.
  EXPECT_FALSE(HasDirComponent("src/common/io", "io"));
  // A trailing slash makes the last segment a real component.
  EXPECT_TRUE(HasDirComponent("src/io/", "io"));
  EXPECT_FALSE(HasDirComponent("", "io"));
  EXPECT_FALSE(HasDirComponent("src/io/f.cc", ""));
}

}  // namespace
}  // namespace teleios::lint
