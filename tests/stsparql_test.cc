#include <gtest/gtest.h>

#include "common/strings.h"
#include "strabon/spatial_functions.h"
#include "strabon/strabon.h"
#include "strabon/temporal.h"

namespace teleios::strabon {
namespace {

using rdf::Term;

TEST(SpatialFunctionsTest, RelationsOverWktLiterals) {
  GeometryCache cache;
  Term box_a = Term::WktLiteral("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
  Term box_b = Term::WktLiteral("POLYGON ((5 5, 15 5, 15 15, 5 15, 5 5))");
  Term far = Term::WktLiteral("POINT (100 100)");
  const std::string ns = "http://strdf.di.uoa.gr/ontology#";
  auto eval = [&](const std::string& fn, const Term& x, const Term& y) {
    auto r = EvalSpatialFunction(ns + fn, {x, y}, &cache);
    EXPECT_TRUE(r.ok()) << fn << ": " << r.status().ToString();
    return r.ok() && r->lexical == "true";
  };
  EXPECT_TRUE(eval("intersects", box_a, box_b));
  EXPECT_TRUE(eval("anyInteract", box_a, box_b));
  EXPECT_FALSE(eval("intersects", box_a, far));
  EXPECT_TRUE(eval("disjoint", box_a, far));
  EXPECT_TRUE(eval("contains", box_a,
                   Term::WktLiteral("POINT (3 3)")));
  EXPECT_TRUE(eval("within", Term::WktLiteral("POINT (3 3)"), box_a));
}

TEST(SpatialFunctionsTest, MetricsAndConstructors) {
  GeometryCache cache;
  const std::string ns = "http://strdf.di.uoa.gr/ontology#";
  Term a = Term::WktLiteral("POINT (0 0)");
  Term b = Term::WktLiteral("POINT (3 4)");
  auto dist = EvalSpatialFunction(ns + "distance", {a, b}, &cache);
  ASSERT_TRUE(dist.ok());
  EXPECT_DOUBLE_EQ(*ParseDouble(dist->lexical), 5.0);

  Term box = Term::WktLiteral("POLYGON ((0 0, 4 0, 4 3, 0 3, 0 0))");
  auto area = EvalSpatialFunction(ns + "area", {box}, &cache);
  ASSERT_TRUE(area.ok());
  EXPECT_DOUBLE_EQ(*ParseDouble(area->lexical), 12.0);

  auto buffered = EvalSpatialFunction(
      ns + "buffer", {a, Term::DoubleLiteral(1.0)}, &cache);
  ASSERT_TRUE(buffered.ok());
  EXPECT_TRUE(buffered->IsWkt());

  auto centroid = EvalSpatialFunction(ns + "centroid", {box}, &cache);
  ASSERT_TRUE(centroid.ok());
  EXPECT_NE(centroid->lexical.find("POINT"), std::string::npos);

  auto envelope = EvalSpatialFunction(ns + "envelope", {box}, &cache);
  ASSERT_TRUE(envelope.ok());
  EXPECT_NE(envelope->lexical.find("POLYGON"), std::string::npos);
}

TEST(SpatialFunctionsTest, BooleanConstructiveOps) {
  GeometryCache cache;
  const std::string ns = "http://strdf.di.uoa.gr/ontology#";
  Term a = Term::WktLiteral("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
  Term b = Term::WktLiteral("POLYGON ((5 5, 15 5, 15 15, 5 15, 5 5))");
  auto diff = EvalSpatialFunction(ns + "difference", {a, b}, &cache);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  auto diff_area =
      EvalSpatialFunction(ns + "area", {*diff}, &cache);
  ASSERT_TRUE(diff_area.ok());
  EXPECT_NEAR(*ParseDouble(diff_area->lexical), 75.0, 1e-6);
}

TEST(SpatialFunctionsTest, ErrorsAreClean) {
  GeometryCache cache;
  const std::string ns = "http://strdf.di.uoa.gr/ontology#";
  EXPECT_FALSE(EvalSpatialFunction(ns + "nosuch",
                                   {Term::WktLiteral("POINT (0 0)")},
                                   &cache)
                   .ok());
  EXPECT_FALSE(EvalSpatialFunction(ns + "intersects",
                                   {Term::WktLiteral("POINT (0 0)")},
                                   &cache)
                   .ok());  // arity
  EXPECT_FALSE(EvalSpatialFunction(
                   ns + "area", {Term::Literal("POLYGON ((oops")}, &cache)
                   .ok());
}

TEST(SpatialFunctionsTest, GeoSparqlNamespaceAlias) {
  // The paper anticipates GeoSPARQL (§1); geof: simple-feature functions
  // are accepted as aliases of the strdf: vocabulary.
  GeometryCache cache;
  const std::string geof = "http://www.opengis.net/def/function/geosparql/";
  Term box = Term::WktLiteral("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
  Term pt = Term::WktLiteral("POINT (5 5)");
  EXPECT_TRUE(IsSpatialFunction(geof + "sfIntersects"));
  auto r = EvalSpatialFunction(geof + "sfContains", {box, pt}, &cache);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->lexical, "true");
  auto d = EvalSpatialFunction(geof + "distance",
                               {pt, Term::WktLiteral("POINT (5 9)")},
                               &cache);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*ParseDouble(d->lexical), 4.0);
  EXPECT_EQ(RelationOf(geof + "sfWithin"), SpatialRelation::kWithin);
}

TEST(TemporalTest, DateTimeParseFormatRoundTrip) {
  auto t = ParseDateTime("2007-08-25T14:30:05");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(FormatDateTime(*t), "2007-08-25T14:30:05");
  auto date_only = ParseDateTime("2007-08-25");
  ASSERT_TRUE(date_only.ok());
  EXPECT_EQ(*t - *date_only, 14 * 3600 + 30 * 60 + 5);
  EXPECT_FALSE(ParseDateTime("not-a-date").ok());
  EXPECT_FALSE(ParseDateTime("2007-13-01").ok());
}

TEST(TemporalTest, LeapYearHandling) {
  auto feb29 = ParseDateTime("2008-02-29T00:00:00");
  ASSERT_TRUE(feb29.ok());
  auto mar1 = ParseDateTime("2008-03-01T00:00:00");
  ASSERT_TRUE(mar1.ok());
  EXPECT_EQ(*mar1 - *feb29, 86400);
  EXPECT_EQ(FormatDateTime(*feb29), "2008-02-29T00:00:00");
}

TEST(TemporalTest, PeriodLiterals) {
  auto p = ParsePeriod("[2007-08-25T00:00:00, 2007-08-26T00:00:00]");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->end - p->start, 86400);
  EXPECT_FALSE(ParsePeriod("2007-08-25").ok());
  EXPECT_FALSE(
      ParsePeriod("[2007-08-26T00:00:00, 2007-08-25T00:00:00]").ok());
  Term lit = PeriodLiteral(p->start, p->end);
  EXPECT_EQ(lit.datatype, rdf::kStrdfPeriod);
  auto back = ParsePeriod(lit.lexical);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->start, p->start);
}

TEST(TemporalTest, AllenRelations) {
  const std::string ns = "http://strdf.di.uoa.gr/ontology#";
  Term aug25 = PeriodLiteral(*ParseDateTime("2007-08-25T00:00:00"),
                             *ParseDateTime("2007-08-26T00:00:00"));
  Term aug = PeriodLiteral(*ParseDateTime("2007-08-01T00:00:00"),
                           *ParseDateTime("2007-09-01T00:00:00"));
  Term july = PeriodLiteral(*ParseDateTime("2007-07-01T00:00:00"),
                            *ParseDateTime("2007-08-01T00:00:00"));
  auto check = [&](const std::string& fn, const Term& x, const Term& y,
                   bool expected) {
    auto r = EvalTemporalFunction(ns + fn, {x, y});
    ASSERT_TRUE(r.ok()) << fn << ": " << r.status().ToString();
    EXPECT_EQ(r->lexical == "true", expected) << fn;
  };
  check("during", aug25, aug, true);
  check("during", aug, aug25, false);
  check("periodContains", aug, aug25, true);
  check("before", july, aug25, true);  // july ends before Aug 25 starts
  check("before", july, aug, false);   // july meets aug (shared instant)
  check("after", aug25, july, true);
  check("overlaps", aug25, aug, true);
  check("meets", july, aug, true);
  check("periodIntersects", july, aug25, false);
}

TEST(TemporalTest, DateTimeAsInstantaneousPeriod) {
  const std::string ns = "http://strdf.di.uoa.gr/ontology#";
  Term instant =
      Term::Literal("2007-08-25T12:00:00", rdf::kXsdDateTime);
  Term day = PeriodLiteral(*ParseDateTime("2007-08-25T00:00:00"),
                           *ParseDateTime("2007-08-26T00:00:00"));
  auto r = EvalTemporalFunction(ns + "during", {instant, day});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->lexical, "true");
}

class StSparqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Three hotspots, one over the sea; a sea polygon; one town.
    ASSERT_TRUE(strabon_
                    .LoadTurtle(R"ttl(
@prefix noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> .
@prefix strdf: <http://strdf.di.uoa.gr/ontology#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
noa:h1 a noa:Hotspot ;
  noa:hasGeometry "POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))"^^strdf:WKT ;
  noa:detectedAt "2007-08-25T10:00:00"^^xsd:dateTime .
noa:h2 a noa:Hotspot ;
  noa:hasGeometry "POLYGON ((8 8, 9 8, 9 9, 8 9, 8 8))"^^strdf:WKT ;
  noa:detectedAt "2007-08-26T10:00:00"^^xsd:dateTime .
noa:h3 a noa:Hotspot ;
  noa:hasGeometry "POLYGON ((20 20, 21 20, 21 21, 20 21, 20 20))"^^strdf:WKT ;
  noa:detectedAt "2007-08-25T15:00:00"^^xsd:dateTime .
noa:town a noa:Town ;
  noa:hasGeometry "POINT (2.5 1.5)"^^strdf:WKT .
)ttl")
                    .ok());
  }

  size_t Count(const std::string& query) {
    auto r = strabon_.Select(query);
    EXPECT_TRUE(r.ok()) << query << " -> " << r.status().ToString();
    return r.ok() ? r->rows.size() : 0;
  }

  Strabon strabon_;
};

TEST_F(StSparqlTest, SpatialSelectionWithinBox) {
  std::string q =
      "SELECT ?h WHERE { ?h a noa:Hotspot ; noa:hasGeometry ?g . "
      "FILTER(strdf:within(?g, \"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 "
      "0))\"^^strdf:WKT)) }";
  EXPECT_EQ(Count(q), 2u);
}

TEST_F(StSparqlTest, SpatialIndexAndScanAgree) {
  std::string q =
      "SELECT ?h WHERE { ?h a noa:Hotspot ; noa:hasGeometry ?g . "
      "FILTER(strdf:intersects(?g, \"POLYGON ((0 0, 5 0, 5 5, 0 5, 0 "
      "0))\"^^strdf:WKT)) }";
  strabon_.set_spatial_index_enabled(true);
  size_t with_index = Count(q);
  strabon_.set_spatial_index_enabled(false);
  size_t without_index = Count(q);
  EXPECT_EQ(with_index, without_index);
  EXPECT_EQ(with_index, 1u);
  strabon_.set_spatial_index_enabled(true);
  EXPECT_GT(strabon_.indexed_geometries(), 0u);
}

TEST_F(StSparqlTest, DistanceFilter) {
  std::string q =
      "SELECT ?h WHERE { ?h a noa:Hotspot ; noa:hasGeometry ?g . "
      "FILTER(strdf:distance(?g, \"POINT (2.5 1.5)\"^^strdf:WKT) < 1.0) }";
  EXPECT_EQ(Count(q), 1u);  // h1 is 0.5 away, h2 ~8.7, h3 far
}

TEST_F(StSparqlTest, SpatialJoinBetweenVariables) {
  std::string q =
      "SELECT ?h ?t WHERE { ?h a noa:Hotspot ; noa:hasGeometry ?hg . "
      "?t a noa:Town ; noa:hasGeometry ?tg . "
      "FILTER(strdf:distance(?hg, ?tg) < 1.0) }";
  EXPECT_EQ(Count(q), 1u);
}

TEST_F(StSparqlTest, TemporalFilter) {
  std::string q =
      "SELECT ?h WHERE { ?h a noa:Hotspot ; noa:detectedAt ?t . "
      "FILTER(?t >= \"2007-08-25T00:00:00\"^^xsd:dateTime && "
      "?t < \"2007-08-26T00:00:00\"^^xsd:dateTime) }";
  EXPECT_EQ(Count(q), 2u);
}

TEST_F(StSparqlTest, TemporalPeriodFunctionInFilter) {
  std::string q =
      "SELECT ?h WHERE { ?h a noa:Hotspot ; noa:detectedAt ?t . "
      "FILTER(strdf:during(?t, \"[2007-08-25T00:00:00, "
      "2007-08-25T23:59:59]\"^^strdf:period)) }";
  EXPECT_EQ(Count(q), 2u);
}

TEST_F(StSparqlTest, BindSpatialConstructor) {
  std::string q =
      "SELECT ?h ?a WHERE { ?h a noa:Hotspot ; noa:hasGeometry ?g . "
      "BIND(strdf:area(?g) AS ?a) FILTER(?a > 0.5) }";
  EXPECT_EQ(Count(q), 3u);  // all unit squares have area 1
}

TEST_F(StSparqlTest, SpatialIndexSeesPostUpdateGeometries) {
  std::string window =
      "\"POLYGON ((40 40, 50 40, 50 50, 40 50, 40 40))\"^^strdf:WKT";
  std::string query =
      "SELECT ?h WHERE { ?h a noa:Hotspot ; noa:hasGeometry ?g . "
      "FILTER(strdf:within(?g, " + window + ")) }";
  // Warm the index: nothing in the window yet.
  EXPECT_EQ(Count(query), 0u);
  // Insert a new hotspot inside the window; the R-tree must be
  // invalidated and rebuilt, not serve stale candidates.
  ASSERT_TRUE(strabon_
                  .Update("INSERT DATA { noa:h4 a noa:Hotspot ; "
                          "noa:hasGeometry \"POLYGON ((44 44, 45 44, 45 "
                          "45, 44 45, 44 44))\"^^strdf:WKT }")
                  .ok());
  EXPECT_EQ(Count(query), 1u);
}

TEST_F(StSparqlTest, GeometryUpdateViaDifference) {
  // The refinement idiom: replace a geometry by its difference with a
  // mask region.
  auto n = strabon_.Update(
      "DELETE { ?h noa:hasGeometry ?g } "
      "INSERT { ?h noa:hasGeometry ?ng } "
      "WHERE { ?h a noa:Hotspot ; noa:hasGeometry ?g . "
      "BIND(strdf:difference(?g, \"POLYGON ((1.5 0, 3 0, 3 3, 1.5 3, 1.5 "
      "0))\"^^strdf:WKT) AS ?ng) "
      "FILTER(strdf:intersects(?g, \"POLYGON ((1.5 0, 3 0, 3 3, 1.5 3, 1.5 "
      "0))\"^^strdf:WKT)) }");
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);  // h1: one delete + one insert
  // h1's new geometry has half the area.
  auto r = strabon_.Select(
      "SELECT ?g WHERE { noa:h1 noa:hasGeometry ?g }");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  GeometryCache cache;
  auto geom = cache.Get(strabon_.store().dict().At(r->rows[0][0]));
  ASSERT_TRUE(geom.ok());
  EXPECT_NEAR((*geom)->Area(), 0.5, 1e-6);
}

}  // namespace
}  // namespace teleios::strabon
