// The crash-recovery proof: for every k, kill the filesystem at the
// k-th I/O operation during a durable mutation workload (every op after
// the fault fails too — a process death at that exact point), then
// re-open a fresh instance over the same directory and require that
//   (a) recovery itself never fails — a torn WAL tail is dropped and
//       counted, never surfaced as data loss,
//   (b) the recovered state is a prefix of the issued mutations (no
//       holes, no reordering, no partial effects), and
//   (c) every fsync-acknowledged mutation is present — acked durability
//       survives the crash.
// Swept with both clean I/O errors and torn (short) writes, with and
// without checkpoints landing inside the sweep window.

#include <gtest/gtest.h>

#include <filesystem>
#include <iostream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/observatory.h"
#include "core/recovery.h"
#include "io/fault_injection.h"
#include "io/filesystem.h"
#include "io/wal.h"
#include "relational/sql_engine.h"
#include "storage/catalog.h"
#include "strabon/strabon.h"

namespace teleios {
namespace {

namespace stdfs = std::filesystem;

using core::DurabilityEngines;
using core::DurabilityManager;
using core::DurabilityOptions;
using core::RecoveryReport;

// One "process": engines plus the durability layer over them. A fresh
// Instance over the same directory is a restart.
struct Instance {
  explicit Instance(const std::string& dir, const DurabilityOptions& options)
      : sql(&catalog) {
    DurabilityEngines engines;
    engines.catalog = &catalog;
    engines.sql = &sql;
    engines.strabon = &strabon;
    db = std::make_unique<DurabilityManager>(engines, dir, options);
  }

  storage::Catalog catalog;
  relational::SqlEngine sql;
  strabon::Strabon strabon;
  std::unique_ptr<DurabilityManager> db;
};

class RecoverySweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = stdfs::temp_directory_path() /
           ("recovery_sweep_" + std::to_string(::getpid()));
    stdfs::create_directories(dir_);
    faulty_ = std::make_unique<io::FaultInjectingFileSystem>(&posix_);
    prev_ = io::SetFileSystem(faulty_.get());
  }
  void TearDown() override {
    io::SetFileSystem(prev_);
    stdfs::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  static constexpr int kInserts = 8;

  // Runs the workload, counting how many mutations were acknowledged
  // (an OK return means the record was fsync-durable before applying).
  // Stops at the first failure: a real client would not keep issuing
  // mutations into a dead instance.
  static int RunWorkload(Instance* instance) {
    int acked = 0;
    if (!instance->db->SqlMutation("CREATE TABLE log (id INT)").ok()) {
      return acked;
    }
    ++acked;
    for (int i = 0; i < kInserts; ++i) {
      if (!instance->db
               ->SqlMutation("INSERT INTO log VALUES (" + std::to_string(i) +
                             ")")
               .ok()) {
        return acked;
      }
      ++acked;
    }
    return acked;
  }

  // The recovered table must hold exactly 0..R-1 for some R — a strict
  // prefix of the issued mutations — with every acked one present.
  static void CheckPrefix(Instance* instance, int acked, uint64_t k) {
    auto rows = instance->sql.Execute("SELECT id FROM log");
    int recovered = 0;
    if (rows.ok()) {
      recovered = 1;  // CREATE TABLE itself is mutation #1
      std::set<int64_t> ids;
      for (size_t r = 0; r < rows->num_rows(); ++r) {
        ids.insert(rows->column(0).GetInt64(r));
      }
      ASSERT_EQ(ids.size(), rows->num_rows())
          << "duplicate replay at op " << k;
      int64_t expect = 0;
      for (int64_t id : ids) {
        ASSERT_EQ(id, expect) << "hole in recovered prefix at op " << k;
        ++expect;
      }
      recovered += static_cast<int>(ids.size());
    }
    EXPECT_GE(recovered, acked)
        << "acked mutation lost at op " << k << " (recovered " << recovered
        << ")";
    EXPECT_LE(recovered, 1 + kInserts) << "phantom mutation at op " << k;
  }

  void SweepKillAtEveryOp(io::FaultKind kind, uint64_t checkpoint_bytes,
                          const std::string& tag) {
    DurabilityOptions options;
    options.checkpoint_bytes = checkpoint_bytes;

    // Baseline run to learn the op count of recover + workload.
    io::FaultSpec probe;
    probe.inject_at = 0;
    faulty_->Arm(probe);
    {
      Instance baseline(Path(tag + "_probe"), options);
      ASSERT_TRUE(baseline.db->Recover().ok());
      ASSERT_EQ(RunWorkload(&baseline), 1 + kInserts);
    }
    uint64_t total_ops = faulty_->ops();
    faulty_->Disarm();
    ASSERT_GT(total_ops, 10u);

    for (uint64_t k = 1; k <= total_ops; ++k) {
      const std::string dir = Path(tag + "_" + std::to_string(k));
      int acked = 0;
      {
        io::FaultSpec spec;
        spec.kind = kind;
        spec.inject_at = k;
        spec.crash = true;
        faulty_->Arm(spec);
        Instance victim(dir, options);
        if (victim.db->Recover().ok()) {
          acked = RunWorkload(&victim);
        }
        faulty_->Disarm();
      }
      // Restart: recovery must succeed cleanly at every crash point.
      Instance restarted(dir, options);
      Status recovered = restarted.db->Recover();
      ASSERT_TRUE(recovered.ok())
          << "crash at op " << k << ": " << recovered.ToString();
      ASSERT_NE(recovered.code(), StatusCode::kDataLoss);
      RecoveryReport report = restarted.db->recovery_report();
      EXPECT_TRUE(report.recovered);
      EXPECT_EQ(report.replay_errors, 0u) << "crash at op " << k;
      CheckPrefix(&restarted, acked, k);
    }
    std::cout << "[ sweep    ] " << tag << ": " << total_ops
              << " crash points, every restart recovered\n";
  }

  stdfs::path dir_;
  io::PosixFileSystem posix_;
  std::unique_ptr<io::FaultInjectingFileSystem> faulty_;
  io::FileSystem* prev_ = nullptr;
};

TEST_F(RecoverySweepTest, KillAtEveryOpCleanIoError) {
  SweepKillAtEveryOp(io::FaultKind::kIoError, /*checkpoint_bytes=*/0, "io");
}

TEST_F(RecoverySweepTest, KillAtEveryOpTornWrite) {
  SweepKillAtEveryOp(io::FaultKind::kShortWrite, /*checkpoint_bytes=*/0,
                     "torn");
}

// Same sweep with a tiny checkpoint threshold, so snapshots, log
// rotations, carry-forward records, and truncations all land inside the
// kill window.
TEST_F(RecoverySweepTest, KillAtEveryOpAcrossCheckpoints) {
  SweepKillAtEveryOp(io::FaultKind::kShortWrite, /*checkpoint_bytes=*/128,
                     "ckpt");
}

// No faults: state accumulates across restarts, checkpoints truncate
// the log, and a post-checkpoint reopen replays only the tail.
TEST_F(RecoverySweepTest, CheckpointTruncatesAndStateAccumulates) {
  const std::string dir = Path("accumulate");
  DurabilityOptions options;
  options.checkpoint_bytes = 0;  // explicit checkpoints only
  {
    Instance a(dir, options);
    ASSERT_TRUE(a.db->Recover().ok());
    ASSERT_EQ(RunWorkload(&a), 1 + kInserts);
    ASSERT_GT(a.db->stats().wal.total_bytes, 0u);
    uint64_t seq_before = a.db->stats().wal.segment_seq;
    ASSERT_TRUE(a.db->Checkpoint().ok());
    EXPECT_EQ(a.db->stats().checkpoints, 1u);
    // The pre-checkpoint segments are gone; only the rotated-to segment
    // (holding the carry-forward records) remains.
    auto segments = io::ListWalSegments(dir + "/wal");
    ASSERT_TRUE(segments.ok());
    ASSERT_EQ(segments->size(), 1u);
    EXPECT_GT(a.db->stats().wal.segment_seq, seq_before);
    ASSERT_TRUE(
        a.db->SqlMutation("INSERT INTO log VALUES (100)").ok());
  }
  {
    Instance b(dir, options);
    ASSERT_TRUE(b.db->Recover().ok());
    RecoveryReport report = b.db->recovery_report();
    EXPECT_TRUE(report.snapshot_loaded);
    EXPECT_GT(report.snapshot_lsn, 0u);
    // The nine pre-checkpoint mutations live in the snapshot (their
    // records were truncated); the log replays only the carry-forward
    // semantic-store snapshot plus the post-checkpoint insert.
    EXPECT_EQ(report.records_applied, 2u);
    EXPECT_EQ(report.records_skipped, 0u);
    auto rows = b.sql.Execute("SELECT id FROM log");
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->num_rows(), static_cast<size_t>(kInserts) + 1);
  }
}

// Semantic-store durability: updates, linked-data loads, and annotation
// publications replay across restarts (via WAL tail and, after a
// checkpoint, via the carry-forward snapshot record).
TEST_F(RecoverySweepTest, StrabonStateSurvivesRestart) {
  const std::string dir = Path("strabon");
  DurabilityOptions options;
  options.checkpoint_bytes = 0;
  size_t loaded_size = 0;
  {
    Instance a(dir, options);
    ASSERT_TRUE(a.db->Recover().ok());
    ASSERT_TRUE(a.db
                    ->LoadTurtle("<http://e/s> <http://e/p> <http://e/o> .\n"
                                 "<http://e/s> <http://e/p> <http://e/o2> .")
                    .ok());
    ASSERT_TRUE(
        a.db->StrabonUpdate("INSERT DATA { <http://e/s2> <http://e/p> "
                            "<http://e/o> . }")
            .ok());
    loaded_size = a.strabon.size();
    ASSERT_EQ(loaded_size, 3u);
  }
  {
    Instance b(dir, options);
    ASSERT_TRUE(b.db->Recover().ok());
    EXPECT_EQ(b.strabon.size(), loaded_size);
    // Checkpoint, then restart again: the store now comes back from the
    // carry-forward record alone.
    ASSERT_TRUE(b.db->Checkpoint().ok());
  }
  {
    Instance c(dir, options);
    ASSERT_TRUE(c.db->Recover().ok());
    EXPECT_EQ(c.strabon.size(), loaded_size);
  }
}

// A torn tail (simulating a crash mid-append without fault injection:
// truncate the last segment mid-record) is dropped, counted, and not an
// error; flipping a byte in the MIDDLE of the log is data loss.
TEST_F(RecoverySweepTest, TornTailToleratedMidLogCorruptionFatal) {
  const std::string dir = Path("tail");
  DurabilityOptions options;
  options.checkpoint_bytes = 0;
  {
    Instance a(dir, options);
    ASSERT_TRUE(a.db->Recover().ok());
    ASSERT_EQ(RunWorkload(&a), 1 + kInserts);
  }
  auto segments = io::ListWalSegments(dir + "/wal");
  ASSERT_TRUE(segments.ok());
  ASSERT_FALSE(segments->empty());
  const std::string segment = segments->back();
  auto original = io::GetFileSystem()->ReadFile(segment);
  ASSERT_TRUE(original.ok());

  // Torn tail: chop into the last record's frame.
  ASSERT_TRUE(io::GetFileSystem()
                  ->WriteFileAtomic(segment,
                                    original->substr(0, original->size() - 3))
                  .ok());
  {
    Instance b(dir, options);
    ASSERT_TRUE(b.db->Recover().ok());
    RecoveryReport report = b.db->recovery_report();
    EXPECT_EQ(report.tail_records_dropped, 1u);
    EXPECT_EQ(report.records_applied, static_cast<uint64_t>(kInserts));
    auto rows = b.sql.Execute("SELECT id FROM log");
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->num_rows(), static_cast<size_t>(kInserts) - 1);
  }

  // Mid-log corruption: flip a byte inside the FIRST record's payload
  // (offset 16 = segment header + frame header), so the CRC mismatch is
  // followed by further records — corruption, not a torn tail.
  std::string corrupt = *original;
  corrupt[20] ^= 0x40;
  ASSERT_TRUE(io::GetFileSystem()->WriteFileAtomic(segment, corrupt).ok());
  {
    Instance c(dir, options);
    Status st = c.db->Recover();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.ToString();
  }
}

// The facade end to end: Open() recovers, Sql() routes mutations
// through the WAL, sys.wal reports the durability state, and a reopened
// observatory sees the acked mutations.
TEST_F(RecoverySweepTest, ObservatoryOpenRoutesAndReports) {
  const std::string dir = Path("veo");
  {
    core::VirtualEarthObservatory veo;
    DurabilityOptions options;
    options.checkpoint_bytes = 0;
    ASSERT_TRUE(veo.Open(dir, options).ok());
    ASSERT_TRUE(veo.durable());
    ASSERT_TRUE(veo.Sql("CREATE TABLE fires (id INT)").ok());
    ASSERT_TRUE(veo.Sql("INSERT INTO fires VALUES (7)").ok());
    ASSERT_TRUE(
        veo.LoadLinkedData("<http://e/f7> <http://e/sev> \"high\" .").ok());

    auto wal = veo.Sql("SELECT appends_total, recovered FROM sys.wal");
    ASSERT_TRUE(wal.ok());
    ASSERT_EQ(wal->num_rows(), 1u);
    EXPECT_GE(wal->column(0).GetInt64(0), 2);
    EXPECT_EQ(wal->column(1).GetInt64(0), 1);
    EXPECT_EQ(veo.Open(dir).code(), StatusCode::kInternal);  // once only
  }
  {
    core::VirtualEarthObservatory veo;
    size_t ontology_triples = veo.strabon().size();
    ASSERT_TRUE(veo.Open(dir).ok());
    auto rows = veo.Sql("SELECT id FROM fires");
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->num_rows(), 1u);
    EXPECT_EQ(rows->column(0).GetInt64(0), 7);
    EXPECT_EQ(veo.strabon().size(), ontology_triples + 1);
    RecoveryReport report = veo.recovery_report();
    EXPECT_TRUE(report.recovered);
    EXPECT_EQ(report.records_applied, 3u);
  }
}

}  // namespace
}  // namespace teleios
