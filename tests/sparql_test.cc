#include <gtest/gtest.h>

#include <filesystem>

#include "strabon/sparql_parser.h"
#include "strabon/strabon.h"

namespace teleios::strabon {
namespace {

using rdf::Term;

const char* kData = R"(
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:f1 a ex:Hotspot ; ex:conf 0.9 ; ex:in ex:laconia .
ex:f2 a ex:Hotspot ; ex:conf 0.4 ; ex:in ex:arcadia .
ex:f3 a ex:Hotspot ; ex:conf 0.7 .
ex:t1 a ex:Town ; ex:name "Sparta" ; ex:in ex:laconia .
ex:t2 a ex:Town ; ex:name "Tripoli" ; ex:in ex:arcadia .
ex:laconia ex:name "Laconia" .
)";

class SparqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto loaded = strabon_.LoadTurtle(kData);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  }

  SolutionSet Run(const std::string& q) {
    auto r = strabon_.Select("PREFIX ex: <http://example.org/> " + q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status().ToString();
    return r.ok() ? *r : SolutionSet{};
  }

  Strabon strabon_;
};

TEST_F(SparqlTest, ParserRecognizesForms) {
  EXPECT_TRUE(std::holds_alternative<SparqlQuery>(
      *ParseSparql("SELECT * WHERE { ?s ?p ?o }")));
  EXPECT_TRUE(std::holds_alternative<SparqlQuery>(
      *ParseSparql("ASK { ?s ?p ?o }")));
  EXPECT_TRUE(std::holds_alternative<SparqlUpdate>(*ParseSparql(
      "INSERT DATA { <http://x/a> <http://x/b> <http://x/c> }")));
  EXPECT_FALSE(ParseSparql("SELECT WHERE").ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x }").ok());
}

TEST_F(SparqlTest, BasicGraphPattern) {
  SolutionSet s = Run("SELECT ?f WHERE { ?f a ex:Hotspot }");
  EXPECT_EQ(s.rows.size(), 3u);
}

TEST_F(SparqlTest, MultiPatternJoin) {
  SolutionSet s = Run(
      "SELECT ?f ?t WHERE { ?f a ex:Hotspot ; ex:in ?r . "
      "?t a ex:Town ; ex:in ?r . }");
  EXPECT_EQ(s.rows.size(), 2u);  // (f1,t1) and (f2,t2)
}

TEST_F(SparqlTest, FilterNumericComparison) {
  SolutionSet s = Run(
      "SELECT ?f WHERE { ?f a ex:Hotspot ; ex:conf ?c . FILTER(?c > 0.5) }");
  EXPECT_EQ(s.rows.size(), 2u);
}

TEST_F(SparqlTest, FilterBooleanConnectives) {
  SolutionSet s = Run(
      "SELECT ?f WHERE { ?f a ex:Hotspot ; ex:conf ?c . "
      "FILTER(?c > 0.8 || ?c < 0.5) }");
  EXPECT_EQ(s.rows.size(), 2u);
  s = Run(
      "SELECT ?f WHERE { ?f a ex:Hotspot ; ex:conf ?c . "
      "FILTER(!(?c > 0.5)) }");
  EXPECT_EQ(s.rows.size(), 1u);
}

TEST_F(SparqlTest, OptionalKeepsUnmatched) {
  SolutionSet s = Run(
      "SELECT ?f ?r WHERE { ?f a ex:Hotspot . OPTIONAL { ?f ex:in ?r } }");
  EXPECT_EQ(s.rows.size(), 3u);
  int r_idx = s.VarIndex("r");
  ASSERT_GE(r_idx, 0);
  int unbound = 0;
  for (const auto& row : s.rows) {
    if (row[static_cast<size_t>(r_idx)] == rdf::kNoTerm) ++unbound;
  }
  EXPECT_EQ(unbound, 1);  // f3 has no region
}

TEST_F(SparqlTest, BoundFilterOverOptional) {
  SolutionSet s = Run(
      "SELECT ?f WHERE { ?f a ex:Hotspot . OPTIONAL { ?f ex:in ?r } "
      "FILTER(!bound(?r)) }");
  ASSERT_EQ(s.rows.size(), 1u);
}

TEST_F(SparqlTest, Union) {
  SolutionSet s = Run(
      "SELECT ?x WHERE { { ?x a ex:Hotspot } UNION { ?x a ex:Town } }");
  EXPECT_EQ(s.rows.size(), 5u);
}

TEST_F(SparqlTest, BindComputesValues) {
  SolutionSet s = Run(
      "SELECT ?f ?double WHERE { ?f ex:conf ?c . "
      "BIND(?c * 2 AS ?double) } ORDER BY ?double");
  ASSERT_EQ(s.rows.size(), 3u);
  int idx = s.VarIndex("double");
  const Term& smallest = strabon_.store().dict().At(
      s.rows[0][static_cast<size_t>(idx)]);
  EXPECT_DOUBLE_EQ(std::stod(smallest.lexical), 0.8);
}

TEST_F(SparqlTest, OrderLimitOffsetDistinct) {
  SolutionSet s = Run(
      "SELECT DISTINCT ?r WHERE { ?x ex:in ?r } ORDER BY ?r LIMIT 1");
  ASSERT_EQ(s.rows.size(), 1u);
  SolutionSet s2 = Run(
      "SELECT DISTINCT ?r WHERE { ?x ex:in ?r } ORDER BY ?r LIMIT 1 "
      "OFFSET 1");
  ASSERT_EQ(s2.rows.size(), 1u);
  EXPECT_NE(s.rows[0][0], s2.rows[0][0]);
}

TEST_F(SparqlTest, OrderByDescExpression) {
  SolutionSet s = Run(
      "SELECT ?f ?c WHERE { ?f ex:conf ?c } ORDER BY DESC(?c)");
  ASSERT_EQ(s.rows.size(), 3u);
  const Term& top = strabon_.store().dict().At(s.rows[0][1]);
  EXPECT_DOUBLE_EQ(std::stod(top.lexical), 0.9);
}

TEST_F(SparqlTest, StringBuiltins) {
  SolutionSet s = Run(
      "SELECT ?t WHERE { ?t ex:name ?n . FILTER(strstarts(?n, \"Spar\")) }");
  EXPECT_EQ(s.rows.size(), 1u);
  s = Run("SELECT ?t WHERE { ?t ex:name ?n . FILTER(regex(?n, \"^tri\", "
          "\"i\")) }");
  EXPECT_EQ(s.rows.size(), 1u);
  s = Run("SELECT ?t WHERE { ?t ex:name ?n . FILTER(strlen(?n) = 6) }");
  EXPECT_EQ(s.rows.size(), 1u);  // Sparta
}

TEST_F(SparqlTest, AskQueries) {
  auto yes = strabon_.Ask(
      "PREFIX ex: <http://example.org/> ASK { ex:f1 a ex:Hotspot }");
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  auto no = strabon_.Ask(
      "PREFIX ex: <http://example.org/> ASK { ex:t1 a ex:Hotspot }");
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
}

TEST_F(SparqlTest, QueryReturnsTable) {
  auto table = strabon_.Query(
      "PREFIX ex: <http://example.org/> SELECT ?n WHERE { ?t ex:name ?n } "
      "ORDER BY ?n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 3u);
  EXPECT_EQ(table->Get(0, 0), Value("Laconia"));
}

TEST_F(SparqlTest, InsertDataUpdate) {
  size_t before = strabon_.store().Match(rdf::TriplePattern{}).size();
  auto n = strabon_.Update(
      "PREFIX ex: <http://example.org/> "
      "INSERT DATA { ex:f4 a ex:Hotspot ; ex:conf 0.2 . }");
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(strabon_.store().Match(rdf::TriplePattern{}).size(), before + 2);
}

TEST_F(SparqlTest, DeleteDataUpdate) {
  auto n = strabon_.Update(
      "PREFIX ex: <http://example.org/> "
      "DELETE DATA { ex:f3 a ex:Hotspot . }");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  SolutionSet s = Run("SELECT ?f WHERE { ?f a ex:Hotspot }");
  EXPECT_EQ(s.rows.size(), 2u);
}

TEST_F(SparqlTest, DeleteInsertWhere) {
  // Reclassify low-confidence hotspots.
  auto n = strabon_.Update(
      "PREFIX ex: <http://example.org/> "
      "DELETE { ?f a ex:Hotspot } INSERT { ?f a ex:Candidate } "
      "WHERE { ?f a ex:Hotspot ; ex:conf ?c . FILTER(?c < 0.5) }");
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);  // one delete + one insert
  EXPECT_EQ(Run("SELECT ?f WHERE { ?f a ex:Hotspot }").rows.size(), 2u);
  EXPECT_EQ(Run("SELECT ?f WHERE { ?f a ex:Candidate }").rows.size(), 1u);
}

TEST_F(SparqlTest, DeleteWhereShorthand) {
  auto n = strabon_.Update(
      "PREFIX ex: <http://example.org/> "
      "DELETE WHERE { ?f ex:conf ?c }");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  EXPECT_EQ(Run("SELECT ?f WHERE { ?f ex:conf ?c }").rows.size(), 0u);
}

TEST_F(SparqlTest, RepeatedVariableInPattern) {
  ASSERT_TRUE(strabon_
                  .Update("PREFIX ex: <http://example.org/> INSERT DATA { "
                          "ex:self ex:links ex:self }")
                  .ok());
  SolutionSet s = Run("SELECT ?x WHERE { ?x ex:links ?x }");
  ASSERT_EQ(s.rows.size(), 1u);
}

TEST_F(SparqlTest, EmptyResultNotError) {
  SolutionSet s = Run("SELECT ?x WHERE { ?x a ex:Volcano }");
  EXPECT_TRUE(s.rows.empty());
}

TEST_F(SparqlTest, CountStarGlobal) {
  SolutionSet s = Run(
      "SELECT (count(*) AS ?n) WHERE { ?f a ex:Hotspot }");
  ASSERT_EQ(s.rows.size(), 1u);
  ASSERT_EQ(s.vars.size(), 1u);
  EXPECT_EQ(s.vars[0], "n");
  EXPECT_EQ(strabon_.store().dict().At(s.rows[0][0]).lexical, "3");
}

TEST_F(SparqlTest, CountStarEmptyMatchIsZero) {
  SolutionSet s = Run("SELECT (count(*) AS ?n) WHERE { ?f a ex:Volcano }");
  ASSERT_EQ(s.rows.size(), 1u);
  EXPECT_EQ(strabon_.store().dict().At(s.rows[0][0]).lexical, "0");
}

TEST_F(SparqlTest, GroupByWithAggregates) {
  SolutionSet s = Run(
      "SELECT ?r (count(*) AS ?n) (max(?c) AS ?top) WHERE { "
      "?f a ex:Hotspot ; ex:in ?r ; ex:conf ?c } GROUP BY ?r "
      "ORDER BY ?r");
  ASSERT_EQ(s.rows.size(), 2u);
  ASSERT_EQ(s.vars.size(), 3u);
  const auto& dict = strabon_.store().dict();
  // arcadia first alphabetically... IRIs compare lexically.
  EXPECT_NE(dict.At(s.rows[0][0]).lexical.find("arcadia"),
            std::string::npos);
  EXPECT_EQ(dict.At(s.rows[0][1]).lexical, "1");
  EXPECT_DOUBLE_EQ(std::stod(dict.At(s.rows[0][2]).lexical), 0.4);
  EXPECT_EQ(dict.At(s.rows[1][1]).lexical, "1");
  EXPECT_DOUBLE_EQ(std::stod(dict.At(s.rows[1][2]).lexical), 0.9);
}

TEST_F(SparqlTest, SumAvgAggregates) {
  SolutionSet s = Run(
      "SELECT (sum(?c) AS ?total) (avg(?c) AS ?mean) WHERE { "
      "?f ex:conf ?c }");
  ASSERT_EQ(s.rows.size(), 1u);
  const auto& dict = strabon_.store().dict();
  EXPECT_NEAR(std::stod(dict.At(s.rows[0][0]).lexical), 2.0, 1e-9);
  EXPECT_NEAR(std::stod(dict.At(s.rows[0][1]).lexical), 2.0 / 3, 1e-9);
}

TEST_F(SparqlTest, NonGroupedVariableRejected) {
  auto r = strabon_.Select(
      "PREFIX ex: <http://example.org/> "
      "SELECT ?f (count(*) AS ?n) WHERE { ?f a ex:Hotspot }");
  EXPECT_FALSE(r.ok());
}

TEST_F(SparqlTest, ComputedProjectionWithoutAggregate) {
  SolutionSet s = Run(
      "SELECT ?f (?c * 10 AS ?scaled) WHERE { ?f ex:conf ?c } "
      "ORDER BY DESC(?scaled) LIMIT 1");
  ASSERT_EQ(s.rows.size(), 1u);
  EXPECT_NEAR(
      std::stod(strabon_.store().dict().At(s.rows[0][1]).lexical), 9.0,
      1e-9);
}

TEST_F(SparqlTest, TurtleExportReloads) {
  std::string turtle = strabon_.ToTurtle();
  Strabon reloaded;
  auto n = reloaded.LoadTurtle(turtle);
  ASSERT_TRUE(n.ok()) << n.status().ToString() << "\n" << turtle;
  EXPECT_EQ(reloaded.store().Match(rdf::TriplePattern{}).size(),
            strabon_.store().Match(rdf::TriplePattern{}).size());
}

TEST_F(SparqlTest, TurtleFileSaveAndLoad) {
  std::string path =
      (std::filesystem::temp_directory_path() /
       ("strabon_export_" + std::to_string(::getpid()) + ".ttl"))
          .string();
  ASSERT_TRUE(strabon_.SaveTurtleFile(path).ok());
  Strabon reloaded;
  auto n = reloaded.LoadTurtleFile(path);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(reloaded.store().Match(rdf::TriplePattern{}).size(),
            strabon_.store().Match(rdf::TriplePattern{}).size());
  std::filesystem::remove(path);
  EXPECT_FALSE(reloaded.LoadTurtleFile(path).ok());  // gone
}

}  // namespace
}  // namespace teleios::strabon
