#include <gtest/gtest.h>

#include "array/array.h"
#include "array/array_ops.h"

namespace teleios::array {
namespace {

using storage::ColumnType;

ArrayPtr MakeRamp(int64_t h, int64_t w) {
  auto arr = Array::Create("ramp", {{"y", 0, h}, {"x", 0, w}},
                           {{"v", ColumnType::kFloat64}}, {Value(0.0)});
  EXPECT_TRUE(arr.ok());
  double* data = *(*arr)->MutableDoubles(0);
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      data[y * w + x] = static_cast<double>(y * 100 + x);
    }
  }
  return *arr;
}

TEST(ArrayTest, CreateValidation) {
  EXPECT_FALSE(Array::Create("a", {}, {{"v", ColumnType::kFloat64}}).ok());
  EXPECT_FALSE(Array::Create("a", {{"x", 0, 4}}, {}).ok());
  EXPECT_FALSE(
      Array::Create("a", {{"x", 0, 0}}, {{"v", ColumnType::kFloat64}}).ok());
}

TEST(ArrayTest, DefaultsFillCells) {
  auto arr = Array::Create("a", {{"x", 0, 3}},
                           {{"v", ColumnType::kFloat64},
                            {"n", ColumnType::kInt64}},
                           {Value(1.5), Value(int64_t{7})});
  ASSERT_TRUE(arr.ok());
  EXPECT_EQ((*arr)->num_cells(), 3u);
  EXPECT_DOUBLE_EQ((*arr)->GetLinear(2, 0).AsFloat64(), 1.5);
  EXPECT_EQ((*arr)->GetLinear(0, 1).AsInt64(), 7);
}

TEST(ArrayTest, LinearIndexRowMajor) {
  ArrayPtr arr = MakeRamp(4, 5);
  EXPECT_EQ(*arr->LinearIndex({0, 0}), 0u);
  EXPECT_EQ(*arr->LinearIndex({1, 0}), 5u);
  EXPECT_EQ(*arr->LinearIndex({3, 4}), 19u);
  EXPECT_FALSE(arr->LinearIndex({4, 0}).ok());
  EXPECT_FALSE(arr->LinearIndex({0, -1}).ok());
  EXPECT_FALSE(arr->LinearIndex({0}).ok());
}

TEST(ArrayTest, CoordsRoundTrip) {
  ArrayPtr arr = MakeRamp(3, 7);
  for (size_t i = 0; i < arr->num_cells(); ++i) {
    auto coords = arr->CoordsOf(i);
    EXPECT_EQ(*arr->LinearIndex(coords), i);
  }
}

TEST(ArrayTest, NonZeroOrigin) {
  auto arr = Array::Create("a", {{"x", 10, 5}},
                           {{"v", ColumnType::kFloat64}}, {Value(0.0)});
  ASSERT_TRUE(arr.ok());
  EXPECT_TRUE((*arr)->LinearIndex({10}).ok());
  EXPECT_TRUE((*arr)->LinearIndex({14}).ok());
  EXPECT_FALSE((*arr)->LinearIndex({9}).ok());
  EXPECT_FALSE((*arr)->LinearIndex({15}).ok());
  EXPECT_EQ((*arr)->CoordsOf(0)[0], 10);
}

TEST(ArrayTest, SetAndGet) {
  ArrayPtr arr = MakeRamp(2, 2);
  ASSERT_TRUE(arr->Set({1, 1}, 0, Value(99.0)).ok());
  EXPECT_DOUBLE_EQ(arr->Get({1, 1}, 0).AsFloat64(), 99.0);
  EXPECT_FALSE(arr->Set({5, 5}, 0, Value(1.0)).ok());
}

TEST(ArrayTest, MutableDoublesTypeChecked) {
  auto arr = Array::Create("a", {{"x", 0, 2}},
                           {{"n", ColumnType::kInt64}}, {Value(int64_t{0})});
  ASSERT_TRUE(arr.ok());
  EXPECT_FALSE((*arr)->MutableDoubles(0).ok());
}

TEST(ArrayTest, ToTableLaysOutDims) {
  ArrayPtr arr = MakeRamp(2, 3);
  storage::Table t = arr->ToTable();
  ASSERT_EQ(t.num_rows(), 6u);
  ASSERT_EQ(t.num_columns(), 3u);  // y, x, v
  // Row-major: row 4 = (y=1, x=1).
  EXPECT_EQ(t.Get(4, 0), Value(int64_t{1}));
  EXPECT_EQ(t.Get(4, 1), Value(int64_t{1}));
  EXPECT_DOUBLE_EQ(t.Get(4, 2).AsFloat64(), 101.0);
}

TEST(ArrayOpsTest, SliceKeepsCoordinates) {
  ArrayPtr arr = MakeRamp(8, 8);
  auto sliced = Slice(*arr, {{2, 5}, {3, 6}});
  ASSERT_TRUE(sliced.ok());
  EXPECT_EQ((*sliced)->dims()[0].start, 2);
  EXPECT_EQ((*sliced)->dims()[0].size, 3);
  EXPECT_DOUBLE_EQ((*sliced)->Get({2, 3}, 0).AsFloat64(), 203.0);
  EXPECT_DOUBLE_EQ((*sliced)->Get({4, 5}, 0).AsFloat64(), 405.0);
}

TEST(ArrayOpsTest, SliceClampsAndRejectsEmpty) {
  ArrayPtr arr = MakeRamp(4, 4);
  auto clamped = Slice(*arr, {{-5, 2}, {0, 99}});
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ((*clamped)->dims()[0].size, 2);
  EXPECT_EQ((*clamped)->dims()[1].size, 4);
  EXPECT_FALSE(Slice(*arr, {{5, 9}, {0, 4}}).ok());
}

TEST(ArrayOpsTest, ResampleNearestDownscale) {
  ArrayPtr arr = MakeRamp(4, 4);
  auto small = Resample2D(*arr, 2, 2, ResampleKernel::kNearest);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ((*small)->num_cells(), 4u);
  // Each output samples near the center of a 2x2 block.
  double v = (*small)->GetLinear(0, 0).AsFloat64();
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 101.0);
}

TEST(ArrayOpsTest, ResampleBilinearConstantFieldIsExact) {
  auto arr = Array::Create("c", {{"y", 0, 5}, {"x", 0, 5}},
                           {{"v", ColumnType::kFloat64}}, {Value(3.25)});
  ASSERT_TRUE(arr.ok());
  auto big = Resample2D(**arr, 10, 10, ResampleKernel::kBilinear);
  ASSERT_TRUE(big.ok());
  for (size_t i = 0; i < (*big)->num_cells(); ++i) {
    EXPECT_DOUBLE_EQ((*big)->GetLinear(i, 0).AsFloat64(), 3.25);
  }
}

TEST(ArrayOpsTest, ConvolveIdentity) {
  ArrayPtr arr = MakeRamp(5, 5);
  std::vector<double> identity = {0, 0, 0, 0, 1, 0, 0, 0, 0};
  auto out = Convolve2D(*arr, 0, identity, 3);
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < arr->num_cells(); ++i) {
    EXPECT_DOUBLE_EQ((*out)->GetLinear(i, 0).AsFloat64(),
                     arr->GetLinear(i, 0).AsFloat64());
  }
}

TEST(ArrayOpsTest, ConvolveBoxBlursInterior) {
  auto arr = Array::Create("c", {{"y", 0, 3}, {"x", 0, 3}},
                           {{"v", ColumnType::kFloat64}}, {Value(9.0)});
  ASSERT_TRUE(arr.ok());
  std::vector<double> box(9, 1.0 / 9.0);
  auto out = Convolve2D(**arr, 0, box, 3);
  ASSERT_TRUE(out.ok());
  // Center cell sees all 9 neighbours.
  EXPECT_NEAR((*out)->Get({1, 1}, 0).AsFloat64(), 9.0, 1e-9);
  // Corner cell sees only 4 (zero padding).
  EXPECT_NEAR((*out)->Get({0, 0}, 0).AsFloat64(), 4.0, 1e-9);
}

TEST(ArrayOpsTest, ConvolveRejectsBadKernel) {
  ArrayPtr arr = MakeRamp(3, 3);
  EXPECT_FALSE(Convolve2D(*arr, 0, {1, 2, 3, 4}, 2).ok());
}

TEST(ArrayOpsTest, MapCells) {
  ArrayPtr arr = MakeRamp(2, 2);
  ASSERT_TRUE(MapCells(arr.get(), 0, [](const std::vector<Value>& cell) {
                return Value(cell[0].AsFloat64() * 2);
              }).ok());
  EXPECT_DOUBLE_EQ(arr->Get({1, 1}, 0).AsFloat64(), 202.0);
}

TEST(ArrayOpsTest, Stats) {
  ArrayPtr arr = MakeRamp(2, 2);  // values 0, 1, 100, 101
  auto stats = ComputeStats(*arr, 0);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->min, 0.0);
  EXPECT_DOUBLE_EQ(stats->max, 101.0);
  EXPECT_DOUBLE_EQ(stats->mean, 50.5);
  EXPECT_EQ(stats->count, 4u);
}

TEST(ArrayOpsTest, TileAggregate) {
  ArrayPtr arr = MakeRamp(4, 4);
  auto tiles = TileAggregate2D(*arr, 0, 2, 2, "max");
  ASSERT_TRUE(tiles.ok());
  EXPECT_EQ((*tiles)->num_cells(), 4u);
  // Max of top-left 2x2 tile = value at (1,1) = 101.
  EXPECT_DOUBLE_EQ((*tiles)->Get({0, 0}, 0).AsFloat64(), 101.0);
  EXPECT_DOUBLE_EQ((*tiles)->Get({1, 1}, 0).AsFloat64(), 303.0);
  EXPECT_FALSE(TileAggregate2D(*arr, 0, 2, 2, "median").ok());
}

TEST(ArrayOpsTest, TileAggregateRaggedEdges) {
  ArrayPtr arr = MakeRamp(5, 5);
  auto tiles = TileAggregate2D(*arr, 0, 2, 2, "count");
  ASSERT_TRUE(tiles.ok());
  EXPECT_EQ((*tiles)->dims()[0].size, 3);
  // Bottom-right ragged tile has a single cell.
  EXPECT_DOUBLE_EQ((*tiles)->Get({2, 2}, 0).AsFloat64(), 1.0);
}

/// Property: slicing then ToTable equals filtering the full table by the
/// slab bounds, for several slab shapes.
struct SlabCase {
  int64_t y0, y1, x0, x1;
};

class SlabSweep : public ::testing::TestWithParam<SlabCase> {};

TEST_P(SlabSweep, SliceMatchesTableFilter) {
  SlabCase c = GetParam();
  ArrayPtr arr = MakeRamp(6, 6);
  auto sliced = Slice(*arr, {{c.y0, c.y1}, {c.x0, c.x1}});
  ASSERT_TRUE(sliced.ok());
  storage::Table full = arr->ToTable();
  size_t expected = 0;
  for (size_t r = 0; r < full.num_rows(); ++r) {
    int64_t y = full.Get(r, 0).AsInt64();
    int64_t x = full.Get(r, 1).AsInt64();
    if (y >= c.y0 && y < c.y1 && x >= c.x0 && x < c.x1) ++expected;
  }
  EXPECT_EQ((*sliced)->num_cells(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SlabSweep,
    ::testing::Values(SlabCase{0, 6, 0, 6}, SlabCase{1, 2, 1, 2},
                      SlabCase{0, 3, 3, 6}, SlabCase{5, 6, 0, 1}));

}  // namespace
}  // namespace teleios::array
