#include <gtest/gtest.h>

#include <cmath>

#include "geo/crs.h"
#include "geo/wkt.h"

namespace teleios::geo {
namespace {

TEST(WebMercatorTest, OriginMapsToOrigin) {
  Point m = Wgs84ToWebMercator({0, 0});
  EXPECT_NEAR(m.x, 0.0, 1e-6);
  EXPECT_NEAR(m.y, 0.0, 1e-6);
}

TEST(WebMercatorTest, RoundTrip) {
  for (double lon : {-170.0, -21.0, 0.0, 22.5, 179.0}) {
    for (double lat : {-80.0, -37.0, 0.0, 38.0, 80.0}) {
      Point m = Wgs84ToWebMercator({lon, lat});
      Point back = WebMercatorToWgs84(m);
      EXPECT_NEAR(back.x, lon, 1e-9);
      EXPECT_NEAR(back.y, lat, 1e-9);
    }
  }
}

TEST(WebMercatorTest, ClampsPolarLatitudes) {
  Point m = Wgs84ToWebMercator({0, 89.9});
  EXPECT_LT(std::fabs(m.y), 20037509.0);
}

TEST(HaversineTest, KnownDistances) {
  // Athens (23.73, 37.98) to Sparta (22.43, 37.07): ~150 km.
  double d = HaversineMeters({23.73, 37.98}, {22.43, 37.07});
  EXPECT_NEAR(d, 151000, 5000);
  // One degree of latitude ~ 111.2 km.
  EXPECT_NEAR(HaversineMeters({0, 0}, {0, 1}), 111195, 200);
  EXPECT_NEAR(HaversineMeters({10, 50}, {10, 50}), 0.0, 1e-6);
}

TEST(HaversineTest, SymmetricAndPositive) {
  Point a{21.5, 37.0};
  Point b{23.0, 38.2};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
  EXPECT_GT(HaversineMeters(a, b), 0.0);
}

TEST(GeodesicDistanceTest, ApproximatesHaversineForPoints) {
  Geometry a = Geometry::MakePoint(22.0, 37.0);
  Geometry b = Geometry::MakePoint(22.5, 37.4);
  double approx = GeodesicDistanceMeters(a, b);
  double exact = HaversineMeters({22.0, 37.0}, {22.5, 37.4});
  EXPECT_NEAR(approx, exact, exact * 0.1);  // within 10%
}

TEST(GeodesicDistanceTest, ZeroWhenIntersecting) {
  Geometry box = Geometry::MakeBox(22, 37, 23, 38);
  Geometry point = Geometry::MakePoint(22.5, 37.5);
  EXPECT_DOUBLE_EQ(GeodesicDistanceMeters(box, point), 0.0);
}

TEST(GeoTransformTest, NorthUpMapping) {
  // 0.01 degree pixels anchored at (21.0, 38.5), north-up.
  GeoTransform t{21.0, 38.5, 0.01, -0.01, 0, 0};
  Point w = t.PixelToWorld(0, 0);
  EXPECT_DOUBLE_EQ(w.x, 21.0);
  EXPECT_DOUBLE_EQ(w.y, 38.5);
  Point w2 = t.PixelToWorld(100, 50);
  EXPECT_DOUBLE_EQ(w2.x, 22.0);
  EXPECT_DOUBLE_EQ(w2.y, 38.0);
}

TEST(GeoTransformTest, InverseRoundTrip) {
  GeoTransform t{21.0, 38.5, 0.02, -0.015, 0.001, -0.002};
  for (double col : {0.0, 10.5, 99.0}) {
    for (double row : {0.0, 7.25, 50.0}) {
      Point w = t.PixelToWorld(col, row);
      auto back = t.WorldToPixel(w);
      ASSERT_TRUE(back.ok());
      EXPECT_NEAR(back->x, col, 1e-9);
      EXPECT_NEAR(back->y, row, 1e-9);
    }
  }
}

TEST(GeoTransformTest, SingularTransformRejected) {
  GeoTransform t{0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(t.WorldToPixel({1, 1}).ok());
}

TEST(TransformGeometryTest, AllKinds) {
  GeoTransform t{100, 200, 2, -2, 0, 0};
  Geometry p = TransformGeometry(Geometry::MakePoint(1, 1), t);
  EXPECT_DOUBLE_EQ(p.AsPoint().x, 102);
  EXPECT_DOUBLE_EQ(p.AsPoint().y, 198);

  Geometry line = TransformGeometry(
      Geometry::MakeLineString({{0, 0}, {1, 0}}), t);
  EXPECT_DOUBLE_EQ(line.lines()[0].points[1].x, 102);

  Geometry box = TransformGeometry(Geometry::MakeBox(0, 0, 2, 2), t);
  EXPECT_DOUBLE_EQ(box.Area(), 4 * 4.0);  // scaled by |2 * -2|

  Polygon holed;
  holed.outer = {{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  holed.holes.push_back({{2, 2}, {4, 2}, {4, 4}, {2, 4}});
  Geometry hp = TransformGeometry(Geometry::MakePolygon(holed), t);
  ASSERT_EQ(hp.polygons()[0].holes.size(), 1u);
  EXPECT_DOUBLE_EQ(hp.Area(), 96 * 4.0);
}

}  // namespace
}  // namespace teleios::geo
