#include <gtest/gtest.h>

#include <set>

#include "eo/scene.h"
#include "mining/annotation.h"
#include "mining/annotation_service.h"
#include "mining/features.h"
#include "mining/kmeans.h"
#include "mining/knn.h"

namespace teleios::mining {
namespace {

eo::Scene TestScene() {
  eo::SceneSpec spec;
  spec.width = 64;
  spec.height = 64;
  spec.seed = 7;
  spec.num_fires = 3;
  auto scene = eo::GenerateScene(spec);
  EXPECT_TRUE(scene.ok());
  return *scene;
}

TEST(FeaturesTest, PatchGridCoversImage) {
  eo::Scene scene = TestScene();
  auto patches = CutPatches(scene, 8);
  ASSERT_TRUE(patches.ok());
  EXPECT_EQ(patches->size(), 64u);  // 8x8 grid of 8x8 patches
  for (const Patch& p : *patches) {
    EXPECT_EQ(p.features.size(), FeatureNames().size());
    EXPECT_EQ(p.size, 8);
    EXPECT_EQ(p.footprint.outer.size(), 4u);
  }
}

TEST(FeaturesTest, RejectsBadPatchSize) {
  eo::Scene scene = TestScene();
  EXPECT_FALSE(CutPatches(scene, 0).ok());
  EXPECT_FALSE(CutPatches(scene, 1000).ok());
}

TEST(FeaturesTest, LandFractionFeatureIsMeaningful) {
  eo::Scene scene = TestScene();
  auto patches = CutPatches(scene, 8);
  ASSERT_TRUE(patches.ok());
  int land_idx = 10;  // land_frac per FeatureNames()
  bool saw_land = false, saw_sea = false;
  for (const Patch& p : *patches) {
    EXPECT_GE(p.features[land_idx], 0.0);
    EXPECT_LE(p.features[land_idx], 1.0);
    if (p.features[land_idx] > 0.9) saw_land = true;
    if (p.features[land_idx] < 0.1) saw_sea = true;
  }
  EXPECT_TRUE(saw_land);
  EXPECT_TRUE(saw_sea);
}

TEST(FeaturesTest, NormalizationZeroMeanUnitVariance) {
  eo::Scene scene = TestScene();
  auto patches = CutPatches(scene, 8);
  ASSERT_TRUE(patches.ok());
  FeatureScaling scaling = NormalizeFeatures(&*patches);
  size_t dims = FeatureNames().size();
  ASSERT_EQ(scaling.mean.size(), dims);
  for (size_t d = 0; d < dims; ++d) {
    double sum = 0;
    for (const Patch& p : *patches) sum += p.features[d];
    EXPECT_NEAR(sum / static_cast<double>(patches->size()), 0.0, 1e-9);
  }
  // ApplyScaling projects a raw vector identically.
  std::vector<double> raw(dims, 0.0);
  for (size_t d = 0; d < dims; ++d) raw[d] = scaling.mean[d];
  std::vector<double> scaled = ApplyScaling(raw, scaling);
  for (double v : scaled) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(KMeansTest, SeparatesObviousClusters) {
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 20; ++i) {
    data.push_back({0.0 + i * 0.01, 0.0});
    data.push_back({10.0 + i * 0.01, 10.0});
  }
  auto result = KMeans(data, 2, 50, 3);
  ASSERT_TRUE(result.ok());
  // All even rows (cluster A) share one assignment, odd rows the other.
  int a = result->assignments[0];
  int b = result->assignments[1];
  EXPECT_NE(a, b);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(result->assignments[i], i % 2 == 0 ? a : b);
  }
  EXPECT_LT(result->inertia, 1.0);
}

TEST(KMeansTest, DeterministicUnderSeed) {
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 50; ++i) {
    data.push_back({static_cast<double>(i % 13), static_cast<double>(i % 7)});
  }
  auto a = KMeans(data, 4, 30, 11);
  auto b = KMeans(data, 4, 30, 11);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
}

TEST(KMeansTest, Validation) {
  EXPECT_FALSE(KMeans({}, 2).ok());
  EXPECT_FALSE(KMeans({{1.0}}, 2).ok());  // k > n
  EXPECT_FALSE(KMeans({{1.0}, {1.0, 2.0}}, 1).ok());  // ragged
}

TEST(KMeansTest, InertiaDecreasesWithK) {
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 60; ++i) {
    data.push_back({static_cast<double>(i % 10), static_cast<double>(i / 10)});
  }
  auto k2 = KMeans(data, 2, 50, 5);
  auto k6 = KMeans(data, 6, 50, 5);
  ASSERT_TRUE(k2.ok());
  ASSERT_TRUE(k6.ok());
  EXPECT_LT(k6->inertia, k2->inertia);
}

TEST(KnnTest, PredictsNearestLabels) {
  KnnClassifier knn;
  ASSERT_TRUE(knn.Fit({{0, 0}, {0, 1}, {10, 10}, {10, 11}},
                      {"sea", "sea", "fire", "fire"})
                  .ok());
  EXPECT_EQ(*knn.Predict({0.2, 0.3}, 3), "sea");
  EXPECT_EQ(*knn.Predict({9.8, 10.4}, 3), "fire");
  auto score = knn.Score({{0, 0}, {10, 10}}, {"sea", "fire"}, 1);
  ASSERT_TRUE(score.ok());
  EXPECT_DOUBLE_EQ(*score, 1.0);
}

TEST(KnnTest, Validation) {
  KnnClassifier knn;
  EXPECT_FALSE(knn.Fit({{1.0}}, {"a", "b"}).ok());
  EXPECT_FALSE(knn.Predict({1.0}).ok());  // not fit
  ASSERT_TRUE(knn.Fit({{1.0, 2.0}}, {"a"}).ok());
  EXPECT_FALSE(knn.Predict({1.0}).ok());  // dimension mismatch
}

TEST(ConceptRulesTest, CentroidSignatures) {
  std::string ns = "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#";
  // Feature order per FeatureNames().
  std::vector<double> sea(13, 0.0);
  sea[10] = 0.0;  // land_frac
  EXPECT_EQ(ConceptForCentroid(sea), ns + "Sea");
  std::vector<double> fire(13, 0.0);
  fire[10] = 1.0;
  fire[9] = 30.0;  // t_diff
  EXPECT_EQ(ConceptForCentroid(fire), ns + "Hotspot");
  std::vector<double> forest(13, 0.0);
  forest[10] = 1.0;
  forest[8] = 0.5;  // ndvi
  EXPECT_EQ(ConceptForCentroid(forest), ns + "Forest");
  std::vector<double> cloud(13, 0.0);
  cloud[11] = 0.9;
  EXPECT_EQ(ConceptForCentroid(cloud), ns + "Cloud");
}

TEST(AnnotationTest, AnnotatesScenePatches) {
  eo::Scene scene = TestScene();
  auto patches = CutPatches(scene, 8);
  ASSERT_TRUE(patches.ok());
  auto annotations = AnnotatePatches(*patches, 6, 3);
  ASSERT_TRUE(annotations.ok()) << annotations.status().ToString();
  EXPECT_EQ(annotations->size(), patches->size());
  std::set<std::string> concepts;
  for (const Annotation& a : *annotations) {
    concepts.insert(a.concept_iri);
    EXPECT_GT(a.confidence, 0.0);
    EXPECT_LE(a.confidence, 1.0);
  }
  // Several distinct concepts appear (the scene has land, sea, clouds).
  EXPECT_GE(concepts.size(), 2u);
}

TEST(AnnotationTest, SeaPatchesLabeledSea) {
  eo::Scene scene = TestScene();
  auto patches = CutPatches(scene, 8);
  ASSERT_TRUE(patches.ok());
  auto annotations = AnnotatePatches(*patches, 6, 3);
  ASSERT_TRUE(annotations.ok());
  std::string ns = "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#";
  size_t sea_right = 0, sea_total = 0;
  for (const Annotation& a : *annotations) {
    if (a.patch.features[10] < 0.05 && a.patch.features[11] < 0.3) {
      ++sea_total;
      if (a.concept_iri == ns + "Sea") ++sea_right;
    }
  }
  ASSERT_GT(sea_total, 0u);
  EXPECT_GT(static_cast<double>(sea_right) / sea_total, 0.7);
}

TEST(AnnotationTest, PublishesToStrabon) {
  eo::Scene scene = TestScene();
  auto patches = CutPatches(scene, 16);
  ASSERT_TRUE(patches.ok());
  auto annotations = AnnotatePatches(*patches, 4, 3);
  ASSERT_TRUE(annotations.ok());
  strabon::Strabon strabon;
  auto added = PublishAnnotations(*annotations, "prod1", &strabon);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, annotations->size() * 5);
  auto found = strabon.Select(
      "SELECT ?p ?c WHERE { ?p a noa:Patch ; noa:hasConcept ?c ; "
      "noa:derivedFromProduct ?prod }");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->rows.size(), annotations->size());
}

TEST(AnnotationServiceTest, InteractiveCorrectionPropagates) {
  eo::Scene scene = TestScene();
  auto patches = *CutPatches(scene, 8);
  AnnotationService service;
  ASSERT_TRUE(service.Annotate(patches, 6, 3).ok());
  ASSERT_EQ(service.annotations().size(), patches.size());
  // Find two patches with very similar features (same cluster likely):
  // correct one, propagation should relabel similar uncorrected ones.
  std::string custom =
      "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#BurnedArea";
  // Correct three sea-ish patches to the custom concept.
  size_t corrected = 0;
  for (size_t i = 0; i < patches.size() && corrected < 3; ++i) {
    if (patches[i].features[10] < 0.05) {  // land_frac ~ 0: open sea
      ASSERT_TRUE(service.Correct(i, custom).ok());
      ++corrected;
    }
  }
  ASSERT_EQ(corrected, 3u);
  EXPECT_EQ(service.corrections(), 3u);
  auto changed = service.Propagate(1);
  ASSERT_TRUE(changed.ok()) << changed.status().ToString();
  // With k=1 every uncorrected patch snaps to its nearest feedback label,
  // so all remaining patches change to the custom concept.
  EXPECT_GT(*changed, 0u);
  size_t custom_count = 0;
  for (const Annotation& a : service.annotations()) {
    if (a.concept_iri == custom) ++custom_count;
  }
  EXPECT_GT(custom_count, 3u);
}

TEST(AnnotationServiceTest, CorrectValidation) {
  AnnotationService service;
  EXPECT_FALSE(service.Correct(0, "x").ok());        // nothing annotated
  EXPECT_FALSE(service.Propagate().ok());            // no corrections
  eo::Scene scene = TestScene();
  auto patches = *CutPatches(scene, 16);
  ASSERT_TRUE(service.Annotate(patches, 4, 3).ok());
  EXPECT_FALSE(service.Correct(patches.size(), "x").ok());  // out of range
}

TEST(AnnotationServiceTest, RepublishReplacesOldAnnotations) {
  eo::Scene scene = TestScene();
  auto patches = *CutPatches(scene, 16);
  AnnotationService service;
  ASSERT_TRUE(service.Annotate(patches, 4, 3).ok());
  strabon::Strabon strabon;
  ASSERT_TRUE(service.Publish("p1", &strabon).ok());
  size_t first = strabon.size();
  // Correct one and publish again: total patch count must not grow.
  ASSERT_TRUE(service
                  .Correct(0,
                           "http://teleios.di.uoa.gr/ontologies/"
                           "noaOntology.owl#Sea")
                  .ok());
  ASSERT_TRUE(service.Publish("p1", &strabon).ok());
  auto count = strabon.Select(
      "SELECT (count(*) AS ?n) WHERE { ?p a noa:Patch }");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(strabon.store().dict().At(count->rows[0][0]).lexical,
            std::to_string(patches.size()));
  EXPECT_GE(strabon.size(), first);
}

TEST(AnnotationServiceTest, PublishPropagatesDeleteFailure) {
  // Regression: Publish used to drop the Status of the DELETE that
  // clears the previous annotation set. A product id that breaks the
  // SPARQL IRI (the space below) makes the DELETE unparseable; before
  // the fix Publish still reported OK while stale annotations survived
  // alongside the fresh ones.
  eo::Scene scene = TestScene();
  auto patches = *CutPatches(scene, 16);
  AnnotationService service;
  ASSERT_TRUE(service.Annotate(patches, 4, 3).ok());
  strabon::Strabon strabon;
  auto published = service.Publish("p 1", &strabon);
  EXPECT_FALSE(published.ok());
}

/// k sweep: annotation never crashes and confidence stays sane.
class KSweep : public ::testing::TestWithParam<int> {};

TEST_P(KSweep, AnnotateAcrossK) {
  eo::Scene scene = TestScene();
  auto patches = CutPatches(scene, 8);
  ASSERT_TRUE(patches.ok());
  auto annotations = AnnotatePatches(*patches, GetParam(), 3);
  ASSERT_TRUE(annotations.ok());
  EXPECT_EQ(annotations->size(), patches->size());
}

INSTANTIATE_TEST_SUITE_P(Ks, KSweep, ::testing::Values(2, 4, 8, 12));

}  // namespace
}  // namespace teleios::mining
