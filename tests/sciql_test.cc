#include <gtest/gtest.h>

#include "sciql/sciql_engine.h"
#include "sciql/sciql_parser.h"

namespace teleios::sciql {
namespace {

using storage::Table;

TEST(SciQlParserTest, CreateArray) {
  auto stmt = ParseSciQl(
      "CREATE ARRAY img (y INT DIMENSION [0:64], x INT DIMENSION [0:128], "
      "v DOUBLE DEFAULT 0.0, m INT)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& c = std::get<CreateArrayStatement>(*stmt);
  EXPECT_EQ(c.name, "img");
  ASSERT_EQ(c.dims.size(), 2u);
  EXPECT_EQ(c.dims[1].size, 128);
  ASSERT_EQ(c.attributes.size(), 2u);
  EXPECT_DOUBLE_EQ(c.defaults[0].AsFloat64(), 0.0);
  EXPECT_TRUE(c.defaults[1].is_null());
}

TEST(SciQlParserTest, RejectsNonIntegerDimension) {
  EXPECT_FALSE(
      ParseSciQl("CREATE ARRAY a (x DOUBLE DIMENSION [0:4], v DOUBLE)").ok());
  EXPECT_FALSE(
      ParseSciQl("CREATE ARRAY a (x INT DIMENSION [4:4], v DOUBLE)").ok());
}

TEST(SciQlParserTest, UpdateWithSlab) {
  auto stmt = ParseSciQl("UPDATE img[0:10, 20:30] SET v = v * 2 WHERE v > 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& u = std::get<UpdateArrayStatement>(*stmt);
  ASSERT_EQ(u.slab.size(), 2u);
  EXPECT_EQ(u.slab[1].first, 20);
  ASSERT_EQ(u.assignments.size(), 1u);
  EXPECT_NE(u.where, nullptr);
}

class SciQlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<SciQlEngine>(&tables_);
    Exec("CREATE ARRAY img (y INT DIMENSION [0:4], x INT DIMENSION [0:4], "
         "v DOUBLE DEFAULT 0.0)");
    // Paint a ramp: v = y*10 + x.
    Exec("UPDATE img SET v = y * 10 + x");
  }

  Table Exec(const std::string& stmt) {
    auto r = engine_->Execute(stmt);
    EXPECT_TRUE(r.ok()) << stmt << " -> " << r.status().ToString();
    return r.ok() ? *r : Table();
  }

  storage::Catalog tables_;
  std::unique_ptr<SciQlEngine> engine_;
};

TEST_F(SciQlEngineTest, CreateRegistersArray) {
  EXPECT_TRUE(engine_->HasArray("img"));
  auto arr = engine_->GetArray("img");
  ASSERT_TRUE(arr.ok());
  EXPECT_EQ((*arr)->num_cells(), 16u);
}

TEST_F(SciQlEngineTest, CellwiseUpdateSeesDims) {
  auto arr = engine_->GetArray("img");
  EXPECT_DOUBLE_EQ((*arr)->Get({2, 3}, 0).AsFloat64(), 23.0);
}

TEST_F(SciQlEngineTest, SelectOverCells) {
  Table t = Exec("SELECT y, x, v FROM img WHERE v > 25 ORDER BY v DESC");
  ASSERT_GT(t.num_rows(), 0u);
  EXPECT_DOUBLE_EQ(t.Get(0, 2).AsFloat64(), 33.0);
}

TEST_F(SciQlEngineTest, SlabSelect) {
  Table t = Exec("SELECT v FROM img[1:3, 1:3]");
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST_F(SciQlEngineTest, StructuralTilingViaGroupBy) {
  // SciQL structural grouping: 2x2 tiles via integer division on dims.
  Table t = Exec(
      "SELECT y / 2 AS ty, x / 2 AS tx, max(v) AS m FROM img "
      "GROUP BY y / 2, x / 2 ORDER BY ty, tx");
  ASSERT_EQ(t.num_rows(), 4u);
  EXPECT_DOUBLE_EQ(t.Get(0, 2).AsFloat64(), 11.0);
  EXPECT_DOUBLE_EQ(t.Get(3, 2).AsFloat64(), 33.0);
}

TEST_F(SciQlEngineTest, UpdateSlabOnly) {
  Exec("UPDATE img[0:1, 0:4] SET v = -1");
  auto arr = engine_->GetArray("img");
  EXPECT_DOUBLE_EQ((*arr)->Get({0, 2}, 0).AsFloat64(), -1.0);
  EXPECT_DOUBLE_EQ((*arr)->Get({1, 2}, 0).AsFloat64(), 12.0);
}

TEST_F(SciQlEngineTest, UpdateWhere) {
  Table affected = Exec("UPDATE img SET v = 0 WHERE v > 30");
  EXPECT_EQ(affected.Get(0, 0), Value(int64_t{3}));  // 31, 32, 33
}

TEST_F(SciQlEngineTest, SimultaneousAssignmentSemantics) {
  Exec("CREATE ARRAY two (x INT DIMENSION [0:2], a DOUBLE DEFAULT 1.0, "
       "b DOUBLE DEFAULT 2.0)");
  // a and b must swap using the OLD values of each other.
  Exec("UPDATE two SET a = b, b = a");
  auto arr = engine_->GetArray("two");
  EXPECT_DOUBLE_EQ((*arr)->Get({0}, 0).AsFloat64(), 2.0);
  EXPECT_DOUBLE_EQ((*arr)->Get({0}, 1).AsFloat64(), 1.0);
}

TEST_F(SciQlEngineTest, JoinArrayWithRelationalTable) {
  // The SciQL symbiosis claim: arrays and tables mixed in one query.
  {
    auto table = std::make_shared<Table>(storage::Schema(
        {{"y", storage::ColumnType::kInt64},
         {"label", storage::ColumnType::kString}}));
    ASSERT_TRUE(
        table->AppendRow({Value(int64_t{0}), Value("north")}).ok());
    ASSERT_TRUE(
        table->AppendRow({Value(int64_t{3}), Value("south")}).ok());
    ASSERT_TRUE(tables_.CreateTable("rows", table).ok());
  }
  Table t = Exec(
      "SELECT label, max(v) AS m FROM img JOIN rows ON img.y = rows.y "
      "GROUP BY label ORDER BY label");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.Get(0, 0), Value("north"));
  EXPECT_DOUBLE_EQ(t.Get(0, 1).AsFloat64(), 3.0);
  EXPECT_DOUBLE_EQ(t.Get(1, 1).AsFloat64(), 33.0);
}

TEST_F(SciQlEngineTest, DropArray) {
  Exec("DROP ARRAY img");
  EXPECT_FALSE(engine_->HasArray("img"));
  EXPECT_FALSE(engine_->Execute("SELECT v FROM img").ok());
}

TEST_F(SciQlEngineTest, ErrorsSurface) {
  EXPECT_FALSE(engine_->Execute("SELECT v FROM missing").ok());
  EXPECT_FALSE(engine_->Execute("UPDATE img SET nope = 1").ok());
  EXPECT_FALSE(
      engine_->Execute("CREATE ARRAY img (x INT DIMENSION [0:2], v DOUBLE)")
          .ok());  // duplicate name
}

/// Image-processing flavored sweep: thresholding via SciQL counts match a
/// direct scan for several thresholds.
class ThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweep, SciQlCountMatchesDirect) {
  storage::Catalog tables;
  SciQlEngine engine(&tables);
  ASSERT_TRUE(engine
                  .Execute("CREATE ARRAY a (y INT DIMENSION [0:8], x INT "
                           "DIMENSION [0:8], v DOUBLE DEFAULT 0.0)")
                  .ok());
  ASSERT_TRUE(engine.Execute("UPDATE a SET v = (y * 8 + x) % 13").ok());
  double threshold = GetParam();
  auto out = engine.Execute("SELECT count(*) AS n FROM a WHERE v > " +
                            std::to_string(threshold));
  ASSERT_TRUE(out.ok());
  auto arr = engine.GetArray("a");
  int64_t expected = 0;
  for (size_t i = 0; i < (*arr)->num_cells(); ++i) {
    if ((*arr)->GetLinear(i, 0).AsFloat64() > threshold) ++expected;
  }
  EXPECT_EQ(out->Get(0, 0), Value(expected));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(-1.0, 0.0, 5.5, 12.0, 99.0));

}  // namespace
}  // namespace teleios::sciql
