// Unit tests for the I/O layer: CRC32C, checksummed block framing,
// atomic durable writes, the deterministic fault-injecting filesystem
// and the bounded retry helper.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "io/fault_injection.h"
#include "io/filesystem.h"
#include "io/retry.h"
#include "io/wal.h"

namespace teleios::io {
namespace {

namespace stdfs = std::filesystem;

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vectors for CRC32C (Castagnoli).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
  EXPECT_EQ(Crc32c(std::string_view()), 0u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, Crc32c(data)) << "split=" << split;
  }
}

TEST(Crc32cTest, DetectsEverySingleBitFlip) {
  std::string data = "payload under test 0123456789";
  const uint32_t good = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32c(data), good);
      data[i] ^= static_cast<char>(1 << bit);
    }
  }
}

class FileSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = stdfs::temp_directory_path() /
           ("io_test_" + std::to_string(::getpid()));
    stdfs::create_directories(dir_);
  }
  void TearDown() override { stdfs::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  stdfs::path dir_;
};

TEST_F(FileSystemTest, WriteReadRoundTrip) {
  FileSystem* fs = GetFileSystem();
  std::string body(200000, 'x');  // > one 64 KiB chunk
  body += "tail";
  ASSERT_TRUE(fs->WriteFileAtomic(Path("f.bin"), body).ok());
  auto back = fs->ReadFile(Path("f.bin"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, body);
  // No tmp residue after a successful atomic write.
  EXPECT_FALSE(*fs->FileExists(Path("f.bin.tmp")));
}

TEST_F(FileSystemTest, ListDirectoryIsSorted) {
  FileSystem* fs = GetFileSystem();
  ASSERT_TRUE(fs->WriteFileAtomic(Path("c.ter"), "c").ok());
  ASSERT_TRUE(fs->WriteFileAtomic(Path("a.ter"), "a").ok());
  ASSERT_TRUE(fs->WriteFileAtomic(Path("b.vec"), "b").ok());
  auto listing = fs->ListDirectory(dir_.string());
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 3u);
  EXPECT_LT((*listing)[0], (*listing)[1]);
  EXPECT_LT((*listing)[1], (*listing)[2]);
  EXPECT_EQ(fs->ListDirectory(Path("missing")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(FileSystemTest, BlockRoundTripAndCorruption) {
  FileSystem* fs = GetFileSystem();
  std::string image;
  AppendBlockTo(&image, "first payload");
  AppendBlockTo(&image, std::string(100000, 'y'));
  ASSERT_TRUE(fs->WriteFileAtomic(Path("blocks"), image).ok());
  {
    auto file = fs->NewReadableFile(Path("blocks"));
    ASSERT_TRUE(file.ok());
    FileReader reader(std::move(*file));
    auto b1 = ReadBlock(&reader);
    ASSERT_TRUE(b1.ok());
    EXPECT_EQ(*b1, "first payload");
    auto b2 = ReadBlock(&reader);
    ASSERT_TRUE(b2.ok());
    EXPECT_EQ(b2->size(), 100000u);
  }
  // Flip one payload byte: kDataLoss, not garbage.
  std::string corrupt = image;
  corrupt[sizeof(uint64_t) + sizeof(uint32_t) + 3] ^= 0x10;
  ASSERT_TRUE(fs->WriteFileAtomic(Path("bad"), corrupt).ok());
  auto file = fs->NewReadableFile(Path("bad"));
  ASSERT_TRUE(file.ok());
  FileReader reader(std::move(*file));
  EXPECT_EQ(ReadBlock(&reader).status().code(), StatusCode::kDataLoss);
}

TEST_F(FileSystemTest, BlockRejectsImplausibleLength) {
  FileSystem* fs = GetFileSystem();
  std::string image;
  uint64_t bogus = ~0ull;  // 16 EiB
  uint32_t crc = 0;
  image.append(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  image.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  ASSERT_TRUE(fs->WriteFileAtomic(Path("huge"), image).ok());
  auto file = fs->NewReadableFile(Path("huge"));
  ASSERT_TRUE(file.ok());
  FileReader reader(std::move(*file));
  EXPECT_EQ(ReadBlock(&reader).status().code(), StatusCode::kDataLoss);
}

TEST_F(FileSystemTest, CrcTrailerRoundTripAndCorruption) {
  std::string content = "line one\nline two\n";
  std::string stamped = content;
  AppendCrcTrailer(&stamped);
  auto back = VerifyCrcTrailer(stamped);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, content);
  // Any flip in the body is caught.
  std::string corrupt = stamped;
  corrupt[5] ^= 0x01;
  EXPECT_EQ(VerifyCrcTrailer(corrupt).status().code(), StatusCode::kDataLoss);
  // Truncation (trailer gone) is a ParseError.
  EXPECT_EQ(VerifyCrcTrailer(content).status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(VerifyCrcTrailer("").status().code(), StatusCode::kParseError);
}

// --- fault injection -------------------------------------------------------

class FaultTest : public FileSystemTest {};

TEST_F(FaultTest, FailsExactlyTheKthOp) {
  FaultInjectingFileSystem faulty(GetFileSystem());
  FaultSpec spec;
  spec.inject_at = 2;  // op 1 = NewWritableFile, op 2 = first Append
  faulty.Arm(spec);
  auto file = faulty.NewWritableFile(Path("f"));
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->Append("hello").code(), StatusCode::kIoError);
  EXPECT_EQ(faulty.faults_injected(), 1u);
  // Not periodic: the next op goes through.
  EXPECT_TRUE((*file)->Append("hello").ok());
  EXPECT_TRUE((*file)->Close().ok());
}

TEST_F(FaultTest, CrashModeFailsEverythingAfterTrigger) {
  FaultInjectingFileSystem faulty(GetFileSystem());
  FaultSpec spec;
  spec.inject_at = 2;
  spec.crash = true;
  faulty.Arm(spec);
  auto file = faulty.NewWritableFile(Path("f"));
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->Append("x").ok());
  EXPECT_FALSE((*file)->Append("x").ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_FALSE(faulty.Rename(Path("a"), Path("b")).ok());
  faulty.Disarm();
  EXPECT_TRUE(faulty.CreateDir(Path("sub")).ok());
}

TEST_F(FaultTest, ShortWriteTearsTheFile) {
  FaultInjectingFileSystem faulty(GetFileSystem());
  FaultSpec spec;
  spec.kind = FaultKind::kShortWrite;
  spec.inject_at = 2;
  faulty.Arm(spec);
  auto file = faulty.NewWritableFile(Path("torn"));
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->Append("0123456789").ok());
  ASSERT_TRUE((*file)->Close().ok());
  faulty.Disarm();
  auto back = faulty.ReadFile(Path("torn"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "01234");  // first half only
}

TEST_F(FaultTest, EnospcWritesNothing) {
  FaultInjectingFileSystem faulty(GetFileSystem());
  FaultSpec spec;
  spec.kind = FaultKind::kEnospc;
  spec.inject_at = 2;
  faulty.Arm(spec);
  auto file = faulty.NewWritableFile(Path("full"));
  ASSERT_TRUE(file.ok());
  Status st = (*file)->Append("0123456789");
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("no space"), std::string::npos);
  ASSERT_TRUE((*file)->Close().ok());
  faulty.Disarm();
  EXPECT_EQ(*faulty.ReadFile(Path("full")), "");
}

TEST_F(FaultTest, BitFlipCorruptsExactlyOneBit) {
  FaultInjectingFileSystem faulty(GetFileSystem());
  std::string body(64, 'A');
  ASSERT_TRUE(faulty.WriteFileAtomic(Path("f"), body).ok());
  FaultSpec spec;
  spec.kind = FaultKind::kBitFlip;
  spec.reads_only = true;
  spec.inject_at = 1;
  spec.seed = 42;
  faulty.Arm(spec);
  auto back = faulty.ReadFile(Path("f"));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), body.size());
  size_t diff_bits = 0;
  for (size_t i = 0; i < body.size(); ++i) {
    uint8_t x = static_cast<uint8_t>((*back)[i] ^ body[i]);
    while (x) {
      diff_bits += x & 1;
      x >>= 1;
    }
  }
  EXPECT_EQ(diff_bits, 1u);
}

TEST_F(FaultTest, EveryNRepeatsTheFault) {
  FaultInjectingFileSystem faulty(GetFileSystem());
  FaultSpec spec;
  spec.inject_at = 2;
  spec.every_n = 2;
  faulty.Arm(spec);
  auto file = faulty.NewWritableFile(Path("f"));  // op 1: ok
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->Append("a").ok());  // op 2: fault
  EXPECT_TRUE((*file)->Append("b").ok());   // op 3: ok
  EXPECT_FALSE((*file)->Append("c").ok());  // op 4: fault
  EXPECT_TRUE((*file)->Close().ok());       // op 5: ok
  EXPECT_EQ(faulty.faults_injected(), 2u);
}

TEST_F(FaultTest, AtomicWriteLeavesOldOrNewFileOnFault) {
  FaultInjectingFileSystem faulty(GetFileSystem());
  ScopedFileSystem scoped(&faulty);
  ASSERT_TRUE(GetFileSystem()->WriteFileAtomic(Path("f"), "old").ok());
  // Fail every op in turn; after each failed write the content must be
  // the complete old or complete new file (a fault at the post-rename
  // directory fsync leaves the new file with a non-OK status) — never a
  // hybrid, never missing.
  for (uint64_t k = 1; k <= 9; ++k) {
    FaultSpec spec;
    spec.inject_at = k;
    spec.crash = true;
    faulty.Arm(spec);
    Status st = GetFileSystem()->WriteFileAtomic(Path("f"), "replacement!");
    faulty.Disarm();
    auto back = GetFileSystem()->ReadFile(Path("f"));
    ASSERT_TRUE(back.ok()) << "fault at op " << k;
    if (st.ok()) {
      EXPECT_EQ(*back, "replacement!") << "fault at op " << k;
    } else {
      EXPECT_TRUE(*back == "old" || *back == "replacement!")
          << "hybrid after fault at op " << k << ": '" << *back << "'";
    }
    if (*back != "old") {
      ASSERT_TRUE(GetFileSystem()->WriteFileAtomic(Path("f"), "old").ok());
    }
  }
}

TEST_F(FaultTest, DirFsyncFaultSurfacesAfterRename) {
  FaultInjectingFileSystem faulty(GetFileSystem());
  ScopedFileSystem scoped(&faulty);
  ASSERT_TRUE(GetFileSystem()->WriteFileAtomic(Path("f"), "old").ok());
  // The directory fsync is the last counted op of WriteFileAtomic.
  FaultSpec probe;
  probe.inject_at = 0;
  faulty.Arm(probe);
  ASSERT_TRUE(GetFileSystem()->WriteFileAtomic(Path("f"), "old").ok());
  uint64_t last_op = faulty.ops();
  FaultSpec spec;
  spec.kind = FaultKind::kSyncFail;
  spec.inject_at = last_op;
  faulty.Arm(spec);
  Status st = GetFileSystem()->WriteFileAtomic(Path("f"), "new");
  faulty.Disarm();
  // The rename happened but its durability is unknown: error surfaced,
  // new content visible.
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("directory fsync"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(*GetFileSystem()->ReadFile(Path("f")), "new");

  // A dropped (lying) directory fsync reports success.
  spec.kind = FaultKind::kSyncDrop;
  faulty.Arm(spec);
  EXPECT_TRUE(GetFileSystem()->WriteFileAtomic(Path("f"), "newer").ok());
  faulty.Disarm();
  EXPECT_EQ(faulty.faults_injected(), 1u);
}

// --- retry -----------------------------------------------------------------

TEST(RetryTest, RetriesTransientFailuresUpToBudget) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  Status st = WithRetry(policy, "test", [&] {
    ++calls;
    return calls < 3 ? Status::IoError("flaky") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);

  calls = 0;
  st = WithRetry(policy, "test", [&] {
    ++calls;
    return Status::IoError("always");
  });
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, DoesNotRetryLogicErrors) {
  RetryPolicy policy;
  int calls = 0;
  Status st = WithRetry(policy, "test", [&] {
    ++calls;
    return Status::ParseError("bad format");
  });
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, WorksWithResultReturns) {
  RetryPolicy policy;
  int calls = 0;
  Result<int> r = WithRetry(policy, "test", [&]() -> Result<int> {
    ++calls;
    if (calls == 1) return Status::DataLoss("flip");
    return 41 + calls;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 43);
}

TEST(RetryTest, DeterministicBackoffSchedule) {
  RetryPolicy policy;
  policy.base_backoff_ms = 8;
  policy.multiplier = 2.0;
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(2), 8.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(3), 16.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(4), 32.0);
}

TEST(RetryTest, DecorrelatedJitterIsDeterministicUnderSeed) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10;
  policy.decorrelated_jitter = true;
  policy.max_backoff_ms = 500;
  policy.jitter_seed = 42;

  auto schedule = [&](uint64_t seed) {
    RetryPolicy p = policy;
    p.jitter_seed = seed;
    uint64_t rng = p.jitter_seed;
    std::vector<double> out;
    double prev = 0;
    for (int attempt = 2; attempt <= 8; ++attempt) {
      prev = p.NextBackoffMillis(attempt, prev, &rng);
      out.push_back(prev);
    }
    return out;
  };
  EXPECT_EQ(schedule(42), schedule(42));     // reproducible
  EXPECT_NE(schedule(42), schedule(43));     // seed actually matters
}

TEST(RetryTest, DecorrelatedJitterStaysInEnvelope) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10;
  policy.decorrelated_jitter = true;
  policy.max_backoff_ms = 120;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    uint64_t rng = seed;
    double prev = 0;
    for (int attempt = 2; attempt <= 12; ++attempt) {
      double next = policy.NextBackoffMillis(attempt, prev, &rng);
      // AWS decorrelated jitter: uniform in [base, min(cap, 3*prev)].
      EXPECT_GE(next, 10.0) << "seed " << seed << " attempt " << attempt;
      EXPECT_LE(next, 120.0) << "seed " << seed << " attempt " << attempt;
      double upper = std::min(120.0, 3.0 * std::max(prev, 10.0));
      EXPECT_LE(next, upper) << "seed " << seed << " attempt " << attempt;
      prev = next;
    }
  }
}

TEST(RetryTest, JitterOffKeepsExponentialScheduleUnderCap) {
  RetryPolicy policy;
  policy.base_backoff_ms = 8;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 20;
  uint64_t rng = 1;
  EXPECT_DOUBLE_EQ(policy.NextBackoffMillis(2, 0, &rng), 8.0);
  EXPECT_DOUBLE_EQ(policy.NextBackoffMillis(3, 8, &rng), 16.0);
  EXPECT_DOUBLE_EQ(policy.NextBackoffMillis(4, 16, &rng), 20.0);  // capped
}

class WalTest : public FileSystemTest {
 protected:
  std::string WalDir() { return Path("wal"); }

  // Appends `n` records ("record-<i>") through a writer, synced.
  Result<std::unique_ptr<WalWriter>> OpenAndAppend(int n,
                                                   uint64_t first_lsn = 1) {
    TELEIOS_ASSIGN_OR_RETURN(
        auto writer, WalWriter::Open(WalDir(), first_lsn, 0, {}));
    for (int i = 0; i < n; ++i) {
      TELEIOS_RETURN_IF_ERROR(
          writer->Append(7, "record-" + std::to_string(i)).status());
    }
    TELEIOS_RETURN_IF_ERROR(writer->Sync());
    return writer;
  }

  Result<std::vector<WalRecord>> ReplayAll(WalReplayStats* stats = nullptr) {
    std::vector<WalRecord> records;
    TELEIOS_ASSIGN_OR_RETURN(
        WalReplayStats s, ReplayWal(WalDir(), [&](const WalRecord& r) {
          records.push_back(r);
          return Status::OK();
        }));
    if (stats != nullptr) *stats = s;
    return records;
  }
};

TEST_F(WalTest, AppendSyncReplayRoundTrip) {
  auto writer = OpenAndAppend(5);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ((*writer)->stats().synced_lsn, 5u);

  WalReplayStats stats;
  auto records = ReplayAll(&stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 5u);
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ((*records)[i].lsn, i + 1);
    EXPECT_EQ((*records)[i].type, 7u);
    EXPECT_EQ((*records)[i].payload, "record-" + std::to_string(i));
  }
  EXPECT_EQ(stats.tail_dropped, 0u);
  EXPECT_EQ(stats.last_lsn, 5u);
}

TEST_F(WalTest, UnsyncedRecordsAreNotDurable) {
  auto writer = WalWriter::Open(WalDir(), 1, 0, {});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(1, "synced").ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  ASSERT_TRUE((*writer)->Append(1, "buffered-only").ok());
  // No sync: the second record must not replay.
  auto records = ReplayAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].payload, "synced");
}

TEST_F(WalTest, ReopenNeverAppendsIntoOldSegmentAndLsnsContinue) {
  { ASSERT_TRUE(OpenAndAppend(3).ok()); }
  auto writer = WalWriter::Open(WalDir(), /*next_lsn=*/4, 0, {});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(7, "after-restart").ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  auto segments = ListWalSegments(WalDir());
  ASSERT_TRUE(segments.ok());
  EXPECT_EQ(segments->size(), 2u);  // fresh segment, old left inert
  auto records = ReplayAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 4u);
  EXPECT_EQ((*records)[3].lsn, 4u);
  EXPECT_EQ((*records)[3].payload, "after-restart");
}

TEST_F(WalTest, TornTailIsDroppedNotFatal) {
  { ASSERT_TRUE(OpenAndAppend(4).ok()); }
  auto segments = ListWalSegments(WalDir());
  ASSERT_TRUE(segments.ok());
  const std::string segment = segments->back();
  auto bytes = GetFileSystem()->ReadFile(segment);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(GetFileSystem()
                  ->WriteFileAtomic(segment,
                                    bytes->substr(0, bytes->size() - 5))
                  .ok());
  WalReplayStats stats;
  auto records = ReplayAll(&stats);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ(records->size(), 3u);
  EXPECT_EQ(stats.tail_dropped, 1u);
}

TEST_F(WalTest, MidSegmentCorruptionIsDataLoss) {
  { ASSERT_TRUE(OpenAndAppend(4).ok()); }
  auto segments = ListWalSegments(WalDir());
  ASSERT_TRUE(segments.ok());
  const std::string segment = segments->back();
  auto bytes = GetFileSystem()->ReadFile(segment);
  ASSERT_TRUE(bytes.ok());
  std::string corrupt = *bytes;
  corrupt[20] ^= 0x01;  // first record's payload: CRC mismatch mid-log
  ASSERT_TRUE(GetFileSystem()->WriteFileAtomic(segment, corrupt).ok());
  auto records = ReplayAll();
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kDataLoss);
}

TEST_F(WalTest, NewerFormatVersionIsRejected) {
  { ASSERT_TRUE(OpenAndAppend(1).ok()); }
  auto segments = ListWalSegments(WalDir());
  ASSERT_TRUE(segments.ok());
  const std::string segment = segments->back();
  auto bytes = GetFileSystem()->ReadFile(segment);
  ASSERT_TRUE(bytes.ok());
  std::string future = *bytes;
  future[4] = 2;  // version field right after the magic
  ASSERT_TRUE(GetFileSystem()->WriteFileAtomic(segment, future).ok());
  auto records = ReplayAll();
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(records.status().message().find("newer"), std::string::npos)
      << records.status().ToString();
}

TEST_F(WalTest, RotateStartsNewSegmentAndTruncateDropsOld) {
  auto writer = OpenAndAppend(3);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Rotate().ok());
  ASSERT_TRUE((*writer)->Append(7, "fresh").ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  auto segments = ListWalSegments(WalDir());
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 2u);
  ASSERT_TRUE((*writer)->TruncateBefore((*writer)->segment_seq()).ok());
  segments = ListWalSegments(WalDir());
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 1u);
  auto records = ReplayAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].payload, "fresh");
}

TEST_F(WalTest, SyncFailurePoisonsSegmentAndDropsUnacked) {
  PosixFileSystem posix;
  FaultInjectingFileSystem faulty(&posix);
  FileSystem* prev = SetFileSystem(&faulty);
  auto writer = WalWriter::Open(WalDir(), 1, 0, {});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(7, "durable").ok());
  ASSERT_TRUE((*writer)->Sync().ok());

  // Fail the next sync: the buffered record is dropped (never acked)
  // and the segment is poisoned.
  ASSERT_TRUE((*writer)->Append(7, "lost").ok());
  FaultSpec spec;
  spec.kind = FaultKind::kSyncFail;
  spec.inject_at = 1;
  faulty.Arm(spec);
  Status failed = (*writer)->Sync();
  faulty.Disarm();
  ASSERT_FALSE(failed.ok());

  // The next append rotates to a fresh segment and syncs cleanly.
  ASSERT_TRUE((*writer)->Append(7, "after-poison").ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  writer->reset();
  SetFileSystem(prev);

  auto records = ReplayAll();
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  std::vector<std::string> payloads;
  for (const WalRecord& r : *records) payloads.push_back(r.payload);
  EXPECT_EQ(payloads,
            (std::vector<std::string>{"durable", "after-poison"}));
}

TEST_F(WalTest, EmptyDirectoryReplaysNothing) {
  WalReplayStats stats;
  auto records = ReplayAll(&stats);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
  EXPECT_EQ(stats.segments, 0u);
}

}  // namespace
}  // namespace teleios::io
