// Unit tests for the I/O layer: CRC32C, checksummed block framing,
// atomic durable writes, the deterministic fault-injecting filesystem
// and the bounded retry helper.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/crc32c.h"
#include "io/fault_injection.h"
#include "io/filesystem.h"
#include "io/retry.h"

namespace teleios::io {
namespace {

namespace stdfs = std::filesystem;

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vectors for CRC32C (Castagnoli).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
  EXPECT_EQ(Crc32c(std::string_view()), 0u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, Crc32c(data)) << "split=" << split;
  }
}

TEST(Crc32cTest, DetectsEverySingleBitFlip) {
  std::string data = "payload under test 0123456789";
  const uint32_t good = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32c(data), good);
      data[i] ^= static_cast<char>(1 << bit);
    }
  }
}

class FileSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = stdfs::temp_directory_path() /
           ("io_test_" + std::to_string(::getpid()));
    stdfs::create_directories(dir_);
  }
  void TearDown() override { stdfs::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  stdfs::path dir_;
};

TEST_F(FileSystemTest, WriteReadRoundTrip) {
  FileSystem* fs = GetFileSystem();
  std::string body(200000, 'x');  // > one 64 KiB chunk
  body += "tail";
  ASSERT_TRUE(fs->WriteFileAtomic(Path("f.bin"), body).ok());
  auto back = fs->ReadFile(Path("f.bin"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, body);
  // No tmp residue after a successful atomic write.
  EXPECT_FALSE(*fs->FileExists(Path("f.bin.tmp")));
}

TEST_F(FileSystemTest, ListDirectoryIsSorted) {
  FileSystem* fs = GetFileSystem();
  ASSERT_TRUE(fs->WriteFileAtomic(Path("c.ter"), "c").ok());
  ASSERT_TRUE(fs->WriteFileAtomic(Path("a.ter"), "a").ok());
  ASSERT_TRUE(fs->WriteFileAtomic(Path("b.vec"), "b").ok());
  auto listing = fs->ListDirectory(dir_.string());
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 3u);
  EXPECT_LT((*listing)[0], (*listing)[1]);
  EXPECT_LT((*listing)[1], (*listing)[2]);
  EXPECT_EQ(fs->ListDirectory(Path("missing")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(FileSystemTest, BlockRoundTripAndCorruption) {
  FileSystem* fs = GetFileSystem();
  std::string image;
  AppendBlockTo(&image, "first payload");
  AppendBlockTo(&image, std::string(100000, 'y'));
  ASSERT_TRUE(fs->WriteFileAtomic(Path("blocks"), image).ok());
  {
    auto file = fs->NewReadableFile(Path("blocks"));
    ASSERT_TRUE(file.ok());
    FileReader reader(std::move(*file));
    auto b1 = ReadBlock(&reader);
    ASSERT_TRUE(b1.ok());
    EXPECT_EQ(*b1, "first payload");
    auto b2 = ReadBlock(&reader);
    ASSERT_TRUE(b2.ok());
    EXPECT_EQ(b2->size(), 100000u);
  }
  // Flip one payload byte: kDataLoss, not garbage.
  std::string corrupt = image;
  corrupt[sizeof(uint64_t) + sizeof(uint32_t) + 3] ^= 0x10;
  ASSERT_TRUE(fs->WriteFileAtomic(Path("bad"), corrupt).ok());
  auto file = fs->NewReadableFile(Path("bad"));
  ASSERT_TRUE(file.ok());
  FileReader reader(std::move(*file));
  EXPECT_EQ(ReadBlock(&reader).status().code(), StatusCode::kDataLoss);
}

TEST_F(FileSystemTest, BlockRejectsImplausibleLength) {
  FileSystem* fs = GetFileSystem();
  std::string image;
  uint64_t bogus = ~0ull;  // 16 EiB
  uint32_t crc = 0;
  image.append(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  image.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  ASSERT_TRUE(fs->WriteFileAtomic(Path("huge"), image).ok());
  auto file = fs->NewReadableFile(Path("huge"));
  ASSERT_TRUE(file.ok());
  FileReader reader(std::move(*file));
  EXPECT_EQ(ReadBlock(&reader).status().code(), StatusCode::kDataLoss);
}

TEST_F(FileSystemTest, CrcTrailerRoundTripAndCorruption) {
  std::string content = "line one\nline two\n";
  std::string stamped = content;
  AppendCrcTrailer(&stamped);
  auto back = VerifyCrcTrailer(stamped);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, content);
  // Any flip in the body is caught.
  std::string corrupt = stamped;
  corrupt[5] ^= 0x01;
  EXPECT_EQ(VerifyCrcTrailer(corrupt).status().code(), StatusCode::kDataLoss);
  // Truncation (trailer gone) is a ParseError.
  EXPECT_EQ(VerifyCrcTrailer(content).status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(VerifyCrcTrailer("").status().code(), StatusCode::kParseError);
}

// --- fault injection -------------------------------------------------------

class FaultTest : public FileSystemTest {};

TEST_F(FaultTest, FailsExactlyTheKthOp) {
  FaultInjectingFileSystem faulty(GetFileSystem());
  FaultSpec spec;
  spec.inject_at = 2;  // op 1 = NewWritableFile, op 2 = first Append
  faulty.Arm(spec);
  auto file = faulty.NewWritableFile(Path("f"));
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->Append("hello").code(), StatusCode::kIoError);
  EXPECT_EQ(faulty.faults_injected(), 1u);
  // Not periodic: the next op goes through.
  EXPECT_TRUE((*file)->Append("hello").ok());
  EXPECT_TRUE((*file)->Close().ok());
}

TEST_F(FaultTest, CrashModeFailsEverythingAfterTrigger) {
  FaultInjectingFileSystem faulty(GetFileSystem());
  FaultSpec spec;
  spec.inject_at = 2;
  spec.crash = true;
  faulty.Arm(spec);
  auto file = faulty.NewWritableFile(Path("f"));
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->Append("x").ok());
  EXPECT_FALSE((*file)->Append("x").ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_FALSE(faulty.Rename(Path("a"), Path("b")).ok());
  faulty.Disarm();
  EXPECT_TRUE(faulty.CreateDir(Path("sub")).ok());
}

TEST_F(FaultTest, ShortWriteTearsTheFile) {
  FaultInjectingFileSystem faulty(GetFileSystem());
  FaultSpec spec;
  spec.kind = FaultKind::kShortWrite;
  spec.inject_at = 2;
  faulty.Arm(spec);
  auto file = faulty.NewWritableFile(Path("torn"));
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->Append("0123456789").ok());
  ASSERT_TRUE((*file)->Close().ok());
  faulty.Disarm();
  auto back = faulty.ReadFile(Path("torn"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "01234");  // first half only
}

TEST_F(FaultTest, EnospcWritesNothing) {
  FaultInjectingFileSystem faulty(GetFileSystem());
  FaultSpec spec;
  spec.kind = FaultKind::kEnospc;
  spec.inject_at = 2;
  faulty.Arm(spec);
  auto file = faulty.NewWritableFile(Path("full"));
  ASSERT_TRUE(file.ok());
  Status st = (*file)->Append("0123456789");
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("no space"), std::string::npos);
  ASSERT_TRUE((*file)->Close().ok());
  faulty.Disarm();
  EXPECT_EQ(*faulty.ReadFile(Path("full")), "");
}

TEST_F(FaultTest, BitFlipCorruptsExactlyOneBit) {
  FaultInjectingFileSystem faulty(GetFileSystem());
  std::string body(64, 'A');
  ASSERT_TRUE(faulty.WriteFileAtomic(Path("f"), body).ok());
  FaultSpec spec;
  spec.kind = FaultKind::kBitFlip;
  spec.reads_only = true;
  spec.inject_at = 1;
  spec.seed = 42;
  faulty.Arm(spec);
  auto back = faulty.ReadFile(Path("f"));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), body.size());
  size_t diff_bits = 0;
  for (size_t i = 0; i < body.size(); ++i) {
    uint8_t x = static_cast<uint8_t>((*back)[i] ^ body[i]);
    while (x) {
      diff_bits += x & 1;
      x >>= 1;
    }
  }
  EXPECT_EQ(diff_bits, 1u);
}

TEST_F(FaultTest, EveryNRepeatsTheFault) {
  FaultInjectingFileSystem faulty(GetFileSystem());
  FaultSpec spec;
  spec.inject_at = 2;
  spec.every_n = 2;
  faulty.Arm(spec);
  auto file = faulty.NewWritableFile(Path("f"));  // op 1: ok
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->Append("a").ok());  // op 2: fault
  EXPECT_TRUE((*file)->Append("b").ok());   // op 3: ok
  EXPECT_FALSE((*file)->Append("c").ok());  // op 4: fault
  EXPECT_TRUE((*file)->Close().ok());       // op 5: ok
  EXPECT_EQ(faulty.faults_injected(), 2u);
}

TEST_F(FaultTest, AtomicWriteLeavesOldOrNewFileOnFault) {
  FaultInjectingFileSystem faulty(GetFileSystem());
  ScopedFileSystem scoped(&faulty);
  ASSERT_TRUE(GetFileSystem()->WriteFileAtomic(Path("f"), "old").ok());
  // Fail every op in turn; after each failed write the content must be
  // the complete old or complete new file (a fault at the post-rename
  // directory fsync leaves the new file with a non-OK status) — never a
  // hybrid, never missing.
  for (uint64_t k = 1; k <= 9; ++k) {
    FaultSpec spec;
    spec.inject_at = k;
    spec.crash = true;
    faulty.Arm(spec);
    Status st = GetFileSystem()->WriteFileAtomic(Path("f"), "replacement!");
    faulty.Disarm();
    auto back = GetFileSystem()->ReadFile(Path("f"));
    ASSERT_TRUE(back.ok()) << "fault at op " << k;
    if (st.ok()) {
      EXPECT_EQ(*back, "replacement!") << "fault at op " << k;
    } else {
      EXPECT_TRUE(*back == "old" || *back == "replacement!")
          << "hybrid after fault at op " << k << ": '" << *back << "'";
    }
    if (*back != "old") {
      ASSERT_TRUE(GetFileSystem()->WriteFileAtomic(Path("f"), "old").ok());
    }
  }
}

TEST_F(FaultTest, DirFsyncFaultSurfacesAfterRename) {
  FaultInjectingFileSystem faulty(GetFileSystem());
  ScopedFileSystem scoped(&faulty);
  ASSERT_TRUE(GetFileSystem()->WriteFileAtomic(Path("f"), "old").ok());
  // The directory fsync is the last counted op of WriteFileAtomic.
  FaultSpec probe;
  probe.inject_at = 0;
  faulty.Arm(probe);
  ASSERT_TRUE(GetFileSystem()->WriteFileAtomic(Path("f"), "old").ok());
  uint64_t last_op = faulty.ops();
  FaultSpec spec;
  spec.kind = FaultKind::kSyncFail;
  spec.inject_at = last_op;
  faulty.Arm(spec);
  Status st = GetFileSystem()->WriteFileAtomic(Path("f"), "new");
  faulty.Disarm();
  // The rename happened but its durability is unknown: error surfaced,
  // new content visible.
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("directory fsync"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(*GetFileSystem()->ReadFile(Path("f")), "new");

  // A dropped (lying) directory fsync reports success.
  spec.kind = FaultKind::kSyncDrop;
  faulty.Arm(spec);
  EXPECT_TRUE(GetFileSystem()->WriteFileAtomic(Path("f"), "newer").ok());
  faulty.Disarm();
  EXPECT_EQ(faulty.faults_injected(), 1u);
}

// --- retry -----------------------------------------------------------------

TEST(RetryTest, RetriesTransientFailuresUpToBudget) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  Status st = WithRetry(policy, "test", [&] {
    ++calls;
    return calls < 3 ? Status::IoError("flaky") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);

  calls = 0;
  st = WithRetry(policy, "test", [&] {
    ++calls;
    return Status::IoError("always");
  });
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, DoesNotRetryLogicErrors) {
  RetryPolicy policy;
  int calls = 0;
  Status st = WithRetry(policy, "test", [&] {
    ++calls;
    return Status::ParseError("bad format");
  });
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, WorksWithResultReturns) {
  RetryPolicy policy;
  int calls = 0;
  Result<int> r = WithRetry(policy, "test", [&]() -> Result<int> {
    ++calls;
    if (calls == 1) return Status::DataLoss("flip");
    return 41 + calls;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 43);
}

TEST(RetryTest, DeterministicBackoffSchedule) {
  RetryPolicy policy;
  policy.base_backoff_ms = 8;
  policy.multiplier = 2.0;
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(2), 8.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(3), 16.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(4), 32.0);
}

}  // namespace
}  // namespace teleios::io
