#include <gtest/gtest.h>

#include <filesystem>

#include "core/observatory.h"
#include "eo/scene.h"
#include "linkeddata/generators.h"

namespace teleios::core {
namespace {

namespace fs = std::filesystem;

class ObservatoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("observatory_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    eo::SceneSpec spec;
    spec.width = 96;
    spec.height = 96;
    spec.num_fires = 4;
    spec.name = "msg";
    scene_ = *eo::GenerateScene(spec);
    ASSERT_TRUE(vault::WriteTer(scene_.ToTerRaster(),
                                (dir_ / "msg.ter").string())
                    .ok());
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  eo::Scene scene_;
  VirtualEarthObservatory veo_;
};

TEST_F(ObservatoryTest, OntologyPreloaded) {
  auto classes = veo_.StSparql(
      "SELECT ?c WHERE { ?c a <http://www.w3.org/2002/07/owl#Class> }");
  ASSERT_TRUE(classes.ok());
  EXPECT_GT(classes->num_rows(), 10u);
}

TEST_F(ObservatoryTest, AttachAndQueryMetadata) {
  auto n = veo_.AttachArchive(dir_.string());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  auto meta = veo_.Sql("SELECT name FROM vault_rasters");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->num_rows(), 1u);
}

TEST_F(ObservatoryTest, SciQlAfterRegister) {
  ASSERT_TRUE(veo_.AttachArchive(dir_.string()).ok());
  ASSERT_TRUE(veo_.RegisterRaster("msg").ok());
  ASSERT_TRUE(veo_.RegisterRaster("msg").ok());  // idempotent
  auto r = veo_.SciQl("SELECT count(*) AS n FROM msg WHERE LANDMASK > 0.5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->Get(0, 0).AsInt64(), 0);
}

TEST_F(ObservatoryTest, FullScenarioThroughFacade) {
  ASSERT_TRUE(veo_.AttachArchive(dir_.string()).ok());
  ASSERT_TRUE(
      veo_.LoadLinkedData(*linkeddata::GenerateCoastline(scene_)).ok());
  noa::ChainConfig config;
  config.classifier.kind = noa::ClassifierKind::kThreshold;
  config.classifier.threshold_kelvin = 315.0;
  auto result = veo_.RunFireChain("msg", config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto report = veo_.Refine(result->product_id);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->hotspots_examined, result->hotspots.size());
  // Products visible to SQL and stSPARQL.
  auto sql_products = veo_.Sql("SELECT id FROM products");
  ASSERT_TRUE(sql_products.ok());
  EXPECT_EQ(sql_products->num_rows(), 1u);
  auto rdf_products =
      veo_.StSparql("SELECT ?p WHERE { ?p a noa:Product }");
  ASSERT_TRUE(rdf_products.ok());
  EXPECT_EQ(rdf_products->num_rows(), 1u);
  // A map over the same store renders.
  auto mapper = veo_.MakeMapper();
  ASSERT_TRUE(mapper
                  .AddQueryLayer("hotspots", "#dd2200", '#',
                                 "SELECT ?g WHERE { ?h a noa:Hotspot ; "
                                 "noa:hasGeometry ?g }")
                  .ok());
  EXPECT_NE(mapper.RenderSvg().find("<svg"), std::string::npos);
}

TEST_F(ObservatoryTest, UpdateThroughFacade) {
  auto n = veo_.StSparqlUpdate(
      "INSERT DATA { <http://x/a> a noa:Hotspot }");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  auto hot = veo_.StSparql("SELECT ?h WHERE { ?h a noa:Hotspot }");
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot->num_rows(), 1u);
}

TEST_F(ObservatoryTest, ErrorsSurface) {
  EXPECT_FALSE(veo_.RegisterRaster("missing").ok());
  EXPECT_FALSE(veo_.Sql("SELECT * FROM nope").ok());
  EXPECT_FALSE(veo_.Refine("no-such-product").ok());
}

}  // namespace
}  // namespace teleios::core
