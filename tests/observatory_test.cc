#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>

#include "core/observatory.h"
#include "eo/scene.h"
#include "linkeddata/generators.h"
#include "obs/metrics.h"

namespace teleios::core {
namespace {

namespace fs = std::filesystem;

/// Span names of a PROFILE result table (column 0).
std::set<std::string> SpanNames(const storage::Table& profile) {
  std::set<std::string> names;
  for (size_t r = 0; r < profile.num_rows(); ++r) {
    names.insert(profile.Get(r, 0).AsString());
  }
  return names;
}

/// Value of the first `name value` line in a text exposition ("-1" when
/// the series is absent).
int64_t ExpositionValue(const std::string& text, const std::string& series) {
  size_t pos = 0;
  while ((pos = text.find(series + " ", pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n') {
      return std::stoll(text.substr(pos + series.size() + 1));
    }
    pos += series.size();
  }
  return -1;
}

class ObservatoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("observatory_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    eo::SceneSpec spec;
    spec.width = 96;
    spec.height = 96;
    spec.num_fires = 4;
    spec.name = "msg";
    scene_ = *eo::GenerateScene(spec);
    ASSERT_TRUE(vault::WriteTer(scene_.ToTerRaster(),
                                (dir_ / "msg.ter").string())
                    .ok());
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  eo::Scene scene_;
  VirtualEarthObservatory veo_;
};

TEST_F(ObservatoryTest, OntologyPreloaded) {
  auto classes = veo_.StSparql(
      "SELECT ?c WHERE { ?c a <http://www.w3.org/2002/07/owl#Class> }");
  ASSERT_TRUE(classes.ok());
  EXPECT_GT(classes->num_rows(), 10u);
}

TEST_F(ObservatoryTest, OntologyLoadOutcomeIsObservable) {
  // Regression: the constructor used to drop the Status of the
  // compiled-in ontology load entirely; it is now kept sticky so a
  // failure would be visible to callers instead of manifesting as
  // mysteriously empty taxonomy queries.
  EXPECT_TRUE(veo_.ontology_status().ok());
}

TEST_F(ObservatoryTest, AttachAndQueryMetadata) {
  auto n = veo_.AttachArchive(dir_.string());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  auto meta = veo_.Sql("SELECT name FROM vault_rasters");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->num_rows(), 1u);
}

TEST_F(ObservatoryTest, SciQlAfterRegister) {
  ASSERT_TRUE(veo_.AttachArchive(dir_.string()).ok());
  ASSERT_TRUE(veo_.RegisterRaster("msg").ok());
  ASSERT_TRUE(veo_.RegisterRaster("msg").ok());  // idempotent
  auto r = veo_.SciQl("SELECT count(*) AS n FROM msg WHERE LANDMASK > 0.5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->Get(0, 0).AsInt64(), 0);
}

TEST_F(ObservatoryTest, FullScenarioThroughFacade) {
  ASSERT_TRUE(veo_.AttachArchive(dir_.string()).ok());
  ASSERT_TRUE(
      veo_.LoadLinkedData(*linkeddata::GenerateCoastline(scene_)).ok());
  noa::ChainConfig config;
  config.classifier.kind = noa::ClassifierKind::kThreshold;
  config.classifier.threshold_kelvin = 315.0;
  auto result = veo_.RunFireChain("msg", config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto report = veo_.Refine(result->product_id);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->hotspots_examined, result->hotspots.size());
  // Products visible to SQL and stSPARQL.
  auto sql_products = veo_.Sql("SELECT id FROM products");
  ASSERT_TRUE(sql_products.ok());
  EXPECT_EQ(sql_products->num_rows(), 1u);
  auto rdf_products =
      veo_.StSparql("SELECT ?p WHERE { ?p a noa:Product }");
  ASSERT_TRUE(rdf_products.ok());
  EXPECT_EQ(rdf_products->num_rows(), 1u);
  // A map over the same store renders.
  auto mapper = veo_.MakeMapper();
  ASSERT_TRUE(mapper
                  .AddQueryLayer("hotspots", "#dd2200", '#',
                                 "SELECT ?g WHERE { ?h a noa:Hotspot ; "
                                 "noa:hasGeometry ?g }")
                  .ok());
  EXPECT_NE(mapper.RenderSvg().find("<svg"), std::string::npos);
}

TEST_F(ObservatoryTest, UpdateThroughFacade) {
  auto n = veo_.StSparqlUpdate(
      "INSERT DATA { <http://x/a> a noa:Hotspot }");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  auto hot = veo_.StSparql("SELECT ?h WHERE { ?h a noa:Hotspot }");
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot->num_rows(), 1u);
}

TEST_F(ObservatoryTest, ErrorsSurface) {
  EXPECT_FALSE(veo_.RegisterRaster("missing").ok());
  EXPECT_FALSE(veo_.Sql("SELECT * FROM nope").ok());
  EXPECT_FALSE(veo_.Refine("no-such-product").ok());
}

TEST_F(ObservatoryTest, ProfileSqlReturnsSpanTree) {
  ASSERT_TRUE(veo_.AttachArchive(dir_.string()).ok());
  auto profile = veo_.Sql("PROFILE SELECT name FROM vault_rasters");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  ASSERT_EQ(profile->schema().field(0).name, "span");
  std::set<std::string> names = SpanNames(*profile);
  EXPECT_TRUE(names.count("sql"));
  EXPECT_TRUE(names.count("parse"));
  EXPECT_TRUE(names.count("plan"));
  EXPECT_TRUE(names.count("execute"));
  // Root row: depth 0, result cardinality in the detail column.
  EXPECT_EQ(profile->Get(0, 0).AsString(), "sql");
  EXPECT_EQ(profile->Get(0, 1).AsInt64(), 0);
  EXPECT_NE(profile->Get(0, 3).AsString().find("rows=1"), std::string::npos);
  // PROFILE is case-insensitive; errors still surface as errors.
  EXPECT_TRUE(veo_.Sql("profile SELECT name FROM vault_rasters").ok());
  EXPECT_FALSE(veo_.Sql("PROFILE SELECT * FROM nope").ok());
}

TEST_F(ObservatoryTest, ProfileSciQlReturnsSpanTree) {
  ASSERT_TRUE(veo_.AttachArchive(dir_.string()).ok());
  ASSERT_TRUE(veo_.RegisterRaster("msg").ok());
  auto profile =
      veo_.SciQl("PROFILE SELECT y, x FROM \"msg\"[0:8, 0:8] WHERE IR039 > 0");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  std::set<std::string> names = SpanNames(*profile);
  EXPECT_TRUE(names.count("sciql"));
  EXPECT_TRUE(names.count("parse"));
  EXPECT_TRUE(names.count("materialize"));
  EXPECT_TRUE(names.count("plan"));
  EXPECT_TRUE(names.count("execute"));
}

TEST_F(ObservatoryTest, ProfileStSparqlReturnsSpanTree) {
  auto profile = veo_.StSparql(
      "PROFILE SELECT ?c WHERE { ?c a <http://www.w3.org/2002/07/owl#Class> "
      "}");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  std::set<std::string> names = SpanNames(*profile);
  EXPECT_TRUE(names.count("stsparql"));
  EXPECT_TRUE(names.count("parse"));
  EXPECT_TRUE(names.count("plan"));
  EXPECT_TRUE(names.count("execute"));
}

TEST_F(ObservatoryTest, FireChainPopulatesMetrics) {
  obs::MetricsRegistry::Global().Reset();
  ASSERT_TRUE(veo_.AttachArchive(dir_.string()).ok());
  noa::ChainConfig config;
  config.classifier.kind = noa::ClassifierKind::kThreshold;
  config.classifier.threshold_kelvin = 315.0;
  auto result = veo_.RunFireChain("msg", config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The chain trace drives the timings and records the tier spans.
  EXPECT_EQ(result->trace.name, "noa.chain");
  ASSERT_EQ(result->timings.size(), 4u);
  EXPECT_EQ(result->timings[0].step, "ingestion");
  EXPECT_EQ(result->timings[1].step, "crop+classify (SciQL)");
  EXPECT_NE(result->trace.Find("vault.ingest"), nullptr);
  EXPECT_NE(result->trace.Find("sciql.statement"), nullptr);
  // MetricsText() reports nonzero ingest/classification/extraction work.
  std::string text = veo_.MetricsText();
  EXPECT_GT(ExpositionValue(text, "teleios_vault_rasters_ingested_total"), 0);
  EXPECT_GT(ExpositionValue(text, "teleios_noa_fire_pixels_total"), 0);
  EXPECT_GT(ExpositionValue(text, "teleios_noa_hotspots_extracted_total"), 0);
  EXPECT_GT(ExpositionValue(text, "teleios_noa_chain_runs_total"), 0);
  EXPECT_GT(
      ExpositionValue(
          text, "teleios_noa_stage_millis_count{stage=\"classification\"}"),
      0);
  EXPECT_NE(text.find("teleios_noa_chain_millis"), std::string::npos);
  // And the JSON exposition carries the same counter.
  EXPECT_NE(veo_.MetricsJson().find("\"teleios_noa_chain_runs_total\": "),
            std::string::npos);
}

}  // namespace
}  // namespace teleios::core
