// The headline robustness harness: for every k, inject a fault at the
// k-th I/O operation during each end-to-end scenario (table write,
// archive attach, raster ingest, NOA chain run) and require that the
// system (a) never crashes, (b) surfaces a clean error Status, and
// (c) recovers to a consistent state once the fault clears — for
// crash-mode write faults, the file on disk is always the complete old
// or complete new version, never a hybrid.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "eo/scene.h"
#include "io/fault_injection.h"
#include "io/filesystem.h"
#include "storage/catalog.h"
#include "storage/persistence.h"
#include "vault/formats.h"
#include "vault/vault.h"

namespace teleios {
namespace {

namespace stdfs = std::filesystem;

class FaultSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = stdfs::temp_directory_path() /
           ("fault_sweep_" + std::to_string(::getpid()));
    stdfs::create_directories(dir_);
    faulty_ = std::make_unique<io::FaultInjectingFileSystem>(&posix_);
    prev_ = io::SetFileSystem(faulty_.get());
  }
  void TearDown() override {
    io::SetFileSystem(prev_);
    stdfs::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  static storage::Table MakeTable(int64_t tag) {
    storage::Table t{storage::Schema({{"id", storage::ColumnType::kInt64},
                                      {"name", storage::ColumnType::kString}})};
    for (int64_t i = 0; i < 50; ++i) {
      t.column(0).AppendInt64(i + tag);
      t.column(1).AppendString("row-" + std::to_string(i + tag));
    }
    return t;
  }

  static vault::TerRaster MakeRaster(const std::string& name) {
    vault::TerRaster r;
    r.name = name;
    r.satellite = "Meteosat-9";
    r.sensor = "SEVIRI";
    r.width = 16;
    r.height = 12;
    r.acquisition_time = 1187997600;
    r.transform = {21.0, 38.5, 0.01, -0.01, 0, 0};
    r.band_names = {"IR039", "IR108"};
    r.bands.assign(2, std::vector<double>(16 * 12, 300.0));
    return r;
  }

  stdfs::path dir_;
  io::PosixFileSystem posix_;
  std::unique_ptr<io::FaultInjectingFileSystem> faulty_;
  io::FileSystem* prev_ = nullptr;
};

// Crash at every possible I/O op during a checksummed table write: the
// previous version must stay intact and loadable.
TEST_F(FaultSweepTest, TeltWriteSweepNeverLeavesHybrid) {
  const std::string path = Path("t.telt");
  ASSERT_TRUE(storage::WriteTable(MakeTable(0), path).ok());

  // Baseline run to learn the op count.
  io::FaultSpec probe;
  probe.inject_at = 0;
  faulty_->Arm(probe);
  ASSERT_TRUE(storage::WriteTable(MakeTable(1000), path).ok());
  uint64_t total_ops = faulty_->ops();
  ASSERT_GT(total_ops, 3u);
  ASSERT_TRUE(storage::WriteTable(MakeTable(0), path).ok());

  for (uint64_t k = 1; k <= total_ops; ++k) {
    io::FaultSpec spec;
    spec.inject_at = k;
    spec.crash = true;
    faulty_->Arm(spec);
    Status st = storage::WriteTable(MakeTable(1000), path);
    faulty_->Disarm();
    auto back = storage::ReadTable(path);
    ASSERT_TRUE(back.ok()) << "fault at op " << k << ": "
                           << back.status().ToString();
    int64_t first = back->column(0).GetInt64(0);
    if (st.ok()) {
      EXPECT_EQ(first, 1000) << "fault at op " << k;
    } else {
      // A fault at or after the rename (the post-rename directory fsync)
      // can leave the new file with a non-OK status; either complete
      // version is consistent, a hybrid is not.
      EXPECT_TRUE(first == 0 || first == 1000) << "fault at op " << k;
    }
    if (first != 0 || st.ok()) {
      ASSERT_TRUE(storage::WriteTable(MakeTable(0), path).ok());
    }
  }
}

// Read-side bit flips: every single-bit corruption of any read during a
// TELT load is detected (DataLoss/ParseError), never silently parsed.
TEST_F(FaultSweepTest, TeltReadBitFlipSweepAlwaysDetected) {
  const std::string path = Path("t.telt");
  ASSERT_TRUE(storage::WriteTable(MakeTable(0), path).ok());

  io::FaultSpec probe;
  probe.inject_at = 0;
  probe.reads_only = true;
  faulty_->Arm(probe);
  ASSERT_TRUE(storage::ReadTable(path).ok());
  uint64_t read_ops = faulty_->ops();
  ASSERT_GT(read_ops, 0u);

  for (uint64_t k = 1; k <= read_ops; ++k) {
    for (uint64_t seed : {1u, 99u}) {
      io::FaultSpec spec;
      spec.kind = io::FaultKind::kBitFlip;
      spec.reads_only = true;
      spec.inject_at = k;
      spec.seed = seed;
      faulty_->Arm(spec);
      auto r = storage::ReadTable(path);
      uint64_t flipped = faulty_->bits_flipped();
      faulty_->Disarm();
      if (r.ok()) {
        // Only tolerable when the fault landed on a zero-byte EOF probe
        // and so had nothing to corrupt.
        EXPECT_EQ(flipped, 0u)
            << "flip at read op " << k << " seed " << seed
            << " was not detected";
        continue;
      }
      EXPECT_TRUE(r.status().code() == StatusCode::kDataLoss ||
                  r.status().code() == StatusCode::kParseError)
          << r.status().ToString();
    }
  }
}

// Crash sweep over WriteTer + bit-flip sweep over ReadTer.
TEST_F(FaultSweepTest, TerWriteAndReadSweep) {
  const std::string path = Path("scene.ter");
  ASSERT_TRUE(vault::WriteTer(MakeRaster("old"), path).ok());

  io::FaultSpec probe;
  probe.inject_at = 0;
  faulty_->Arm(probe);
  ASSERT_TRUE(vault::WriteTer(MakeRaster("new"), path).ok());
  uint64_t write_ops = faulty_->ops();
  ASSERT_TRUE(vault::WriteTer(MakeRaster("old"), path).ok());

  for (uint64_t k = 1; k <= write_ops; ++k) {
    io::FaultSpec spec;
    spec.inject_at = k;
    spec.crash = true;
    faulty_->Arm(spec);
    Status st = vault::WriteTer(MakeRaster("new"), path);
    faulty_->Disarm();
    auto back = vault::ReadTer(path);
    ASSERT_TRUE(back.ok()) << "fault at op " << k;
    if (st.ok()) {
      EXPECT_EQ(back->name, "new") << "fault at op " << k;
    } else {
      EXPECT_TRUE(back->name == "old" || back->name == "new")
          << "fault at op " << k;
    }
    if (back->name == "new") {
      ASSERT_TRUE(vault::WriteTer(MakeRaster("old"), path).ok());
    }
  }

  probe.reads_only = true;
  faulty_->Arm(probe);
  ASSERT_TRUE(vault::ReadTer(path).ok());
  uint64_t read_ops = faulty_->ops();
  for (uint64_t k = 1; k <= read_ops; ++k) {
    io::FaultSpec spec;
    spec.kind = io::FaultKind::kBitFlip;
    spec.reads_only = true;
    spec.inject_at = k;
    spec.seed = 7 * k + 1;
    faulty_->Arm(spec);
    auto r = vault::ReadTer(path);
    uint64_t flipped = faulty_->bits_flipped();
    faulty_->Disarm();
    if (r.ok()) {
      EXPECT_EQ(flipped, 0u)
          << "flip at read op " << k << " was not detected";
      continue;
    }
    EXPECT_TRUE(r.status().code() == StatusCode::kDataLoss ||
                r.status().code() == StatusCode::kParseError)
        << r.status().ToString();
  }
}

// Crash at every possible I/O op while replacing a catalog snapshot
// whose table SET changed between saves: the recovered snapshot must be
// entirely the old or entirely the new one. (Regression: table files
// used to be overwritten in place, so a crash before the manifest
// rename could leave the old MANIFEST pointing at new-generation data —
// all checksums pass, wrong tables load.)
TEST_F(FaultSweepTest, CatalogSnapshotSweepNeverMixesGenerations) {
  const std::string dir = Path("snap");
  storage::Catalog old_cat;
  ASSERT_TRUE(old_cat.CreateTable(
      "alpha", std::make_shared<storage::Table>(MakeTable(0))).ok());
  ASSERT_TRUE(old_cat.CreateTable(
      "beta", std::make_shared<storage::Table>(MakeTable(100))).ok());
  storage::Catalog new_cat;
  ASSERT_TRUE(new_cat.CreateTable(
      "beta", std::make_shared<storage::Table>(MakeTable(1000))).ok());
  ASSERT_TRUE(new_cat.CreateTable(
      "zeta", std::make_shared<storage::Table>(MakeTable(2000))).ok());
  ASSERT_TRUE(storage::SaveCatalog(old_cat, dir).ok());

  io::FaultSpec probe;
  probe.inject_at = 0;
  faulty_->Arm(probe);
  ASSERT_TRUE(storage::SaveCatalog(new_cat, dir).ok());
  uint64_t total_ops = faulty_->ops();
  ASSERT_GT(total_ops, 6u);
  ASSERT_TRUE(storage::SaveCatalog(old_cat, dir).ok());

  auto first_id = [](const storage::Catalog& c, const std::string& name) {
    auto t = c.GetTable(name);
    return t.ok() ? (*t)->column(0).GetInt64(0) : int64_t{-1};
  };
  for (uint64_t k = 1; k <= total_ops; ++k) {
    io::FaultSpec spec;
    spec.inject_at = k;
    spec.crash = true;
    faulty_->Arm(spec);
    Status st = storage::SaveCatalog(new_cat, dir);
    faulty_->Disarm();
    storage::Catalog loaded;
    auto n = storage::LoadCatalog(dir, &loaded);
    ASSERT_TRUE(n.ok()) << "fault at op " << k << ": "
                        << n.status().ToString();
    ASSERT_EQ(*n, 2u) << "fault at op " << k;
    bool is_old = loaded.HasTable("alpha");
    if (st.ok()) EXPECT_FALSE(is_old) << "fault at op " << k;
    if (is_old) {
      EXPECT_EQ(first_id(loaded, "alpha"), 0) << "fault at op " << k;
      EXPECT_EQ(first_id(loaded, "beta"), 100) << "fault at op " << k;
    } else {
      EXPECT_EQ(first_id(loaded, "beta"), 1000) << "fault at op " << k;
      EXPECT_EQ(first_id(loaded, "zeta"), 2000) << "fault at op " << k;
      ASSERT_TRUE(storage::SaveCatalog(old_cat, dir).ok());
    }
  }
}

// Fault at every op during an archive attach + full ingest: clean Status,
// and once the fault clears the same vault instance can still serve what
// it attached (retry/quarantine must not wedge it).
TEST_F(FaultSweepTest, AttachAndIngestSweepSurvives) {
  ASSERT_TRUE(vault::WriteTer(MakeRaster("a"), Path("a.ter")).ok());
  ASSERT_TRUE(vault::WriteTer(MakeRaster("b"), Path("b.ter")).ok());

  io::FaultSpec probe;
  probe.inject_at = 0;
  faulty_->Arm(probe);
  {
    storage::Catalog catalog;
    vault::DataVault vault(&catalog);
    ASSERT_TRUE(vault.Attach(dir_.string()).ok());
    ASSERT_TRUE(vault.IngestAll().ok());
  }
  uint64_t total_ops = faulty_->ops();
  ASSERT_GT(total_ops, 4u);

  for (uint64_t k = 1; k <= total_ops; ++k) {
    io::FaultSpec spec;
    spec.inject_at = k;
    faulty_->Arm(spec);
    storage::Catalog catalog;
    vault::DataVault vault(&catalog);
    vault.set_ingest_retry({/*max_attempts=*/1});
    auto attached = vault.Attach(dir_.string());
    Status ingest = attached.ok() ? vault.IngestAll() : attached.status();
    faulty_->Disarm();
    // Whatever happened, it was a clean Status; after the fault clears,
    // healing + re-ingest must fully recover.
    (void)ingest;
    if (attached.ok() && *attached == 2) {
      vault.Heal();
      vault.EvictCache();
      EXPECT_TRUE(vault.IngestAll().ok()) << "fault at op " << k;
    }
  }
}

}  // namespace
}  // namespace teleios
