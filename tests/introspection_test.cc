#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/observatory.h"
#include "obs/event_log.h"
#include "obs/trace_export.h"

namespace teleios::core {
namespace {

/// Collects column `col` of every row as strings.
std::vector<std::string> ColumnStrings(const storage::Table& table,
                                       size_t col) {
  std::vector<std::string> out;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    out.push_back(table.Get(r, col).AsString());
  }
  return out;
}

class IntrospectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto table = std::make_shared<storage::Table>(
        storage::Schema({{"x", storage::ColumnType::kInt64}}));
    for (int64_t i = 0; i < 8; ++i) table->column(0).AppendInt64(i);
    ASSERT_TRUE(veo_.catalog().CreateTable("t8", table).ok());
  }

  /// Registers an int64 table of `n` rows named `name`.
  void MakeBigTable(const std::string& name, size_t n) {
    auto table = std::make_shared<storage::Table>(
        storage::Schema({{"x", storage::ColumnType::kInt64}}));
    for (size_t i = 0; i < n; ++i) {
      table->column(0).AppendInt64(static_cast<int64_t>(i));
    }
    ASSERT_TRUE(veo_.catalog().CreateTable(name, table).ok());
  }

  VirtualEarthObservatory veo_;
};

// ---------------------------------------------------------------------------
// sys.* virtual tables through the SQL surface
// ---------------------------------------------------------------------------

TEST_F(IntrospectionTest, SysQueriesObservesTheObservingStatement) {
  // The snapshot is taken while the statement runs, so a SELECT over
  // sys.queries always contains at least itself, in state running.
  auto q = veo_.Sql("SELECT statement, state FROM sys.queries");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_GE(q->num_rows(), 1u);
  bool found_self = false;
  for (size_t r = 0; r < q->num_rows(); ++r) {
    if (q->Get(r, 0).AsString().find("sys.queries") != std::string::npos) {
      found_self = true;
      EXPECT_EQ(q->Get(r, 1).AsString(), "running");
    }
  }
  EXPECT_TRUE(found_self);
}

TEST_F(IntrospectionTest, SysTablesMaterializeLiveState) {
  auto pools = veo_.Sql("SELECT name, workers FROM sys.pools");
  ASSERT_TRUE(pools.ok()) << pools.status().ToString();
  EXPECT_EQ(pools->num_rows(), 1u);

  auto metrics = veo_.Sql("SELECT name, kind, value FROM sys.metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_GT(metrics->num_rows(), 0u);

  // The running statement's own per-query budget is live in sys.budgets.
  auto budgets = veo_.Sql("SELECT name FROM sys.budgets");
  ASSERT_TRUE(budgets.ok()) << budgets.status().ToString();
  std::vector<std::string> names = ColumnStrings(*budgets, 0);
  EXPECT_NE(std::find(names.begin(), names.end(), "sql-query"), names.end());

  // The observatory's vault carries an ingest breaker; the registry is
  // process-global so at least that one is visible.
  auto breakers = veo_.Sql("SELECT name, state FROM sys.breakers");
  ASSERT_TRUE(breakers.ok()) << breakers.status().ToString();
  EXPECT_GT(breakers->num_rows(), 0u);
}

TEST_F(IntrospectionTest, SysTablesComposeWithTheRelationalSurface) {
  // Virtual tables are plain snapshots: WHERE and aggregates apply.
  auto q = veo_.Sql(
      "SELECT count(*) AS n FROM sys.metrics WHERE kind = 'counter'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->num_rows(), 1u);
  EXPECT_GT(q->Get(0, 0).AsInt64(), 0);
}

TEST_F(IntrospectionTest, QueryLogRecordsCompletionsWithCardinality) {
  ASSERT_TRUE(veo_.Sql("SELECT x FROM t8 WHERE x > 3").ok());
  auto log = veo_.Sql(
      "SELECT statement, status, rows FROM sys.query_log");
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  bool found = false;
  for (size_t r = 0; r < log->num_rows(); ++r) {
    if (log->Get(r, 0).AsString() != "SELECT x FROM t8 WHERE x > 3") continue;
    found = true;
    EXPECT_EQ(log->Get(r, 1).AsString(), "OK");
    EXPECT_EQ(log->Get(r, 2).AsInt64(), 4);
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Completion ring semantics
// ---------------------------------------------------------------------------

TEST_F(IntrospectionTest, QueryLogRingWraparoundIsExact) {
  obs::IntrospectionConfig config = veo_.introspection().config();
  config.query_log_capacity = 4;
  veo_.introspection().Reconfigure(config);
  uint64_t dropped_before = veo_.introspection().log_dropped_total();
  size_t logged_before = veo_.introspection().Log().size();

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        veo_.Sql("SELECT x FROM t8 WHERE x > " + std::to_string(i)).ok());
  }

  std::vector<obs::QueryCompletion> log = veo_.introspection().Log();
  ASSERT_EQ(log.size(), 4u);
  // The survivors are exactly the newest four, ids contiguous ascending.
  for (size_t i = 1; i < log.size(); ++i) {
    EXPECT_EQ(log[i].id, log[i - 1].id + 1);
  }
  EXPECT_EQ(log.back().statement, "SELECT x FROM t8 WHERE x > 9");
  // Every displaced record is accounted for: 10 new completions plus
  // whatever was retained before, minus the 4 kept.
  EXPECT_EQ(veo_.introspection().log_dropped_total() - dropped_before,
            logged_before + 10 - 4);
}

TEST_F(IntrospectionTest, SlowQueryThresholdFires) {
  obs::IntrospectionConfig config = veo_.introspection().config();
  config.slow_query_millis = 0;  // every completion is "slow"
  veo_.introspection().Reconfigure(config);

  ASSERT_TRUE(veo_.Sql("SELECT x FROM t8 WHERE x > 6").ok());
  uint64_t id = veo_.introspection().Log().back().id;

  bool fired = false;
  for (const obs::Event& event : obs::EventLog::Global().Snapshot()) {
    if (event.type == "query.slow" &&
        event.Field("id") == std::to_string(id)) {
      fired = true;
      EXPECT_EQ(event.Field("statement"), "SELECT x FROM t8 WHERE x > 6");
    }
  }
  EXPECT_TRUE(fired);

  // The same events are queryable as a table.
  auto events = veo_.Sql(
      "SELECT count(*) AS n FROM sys.events WHERE type = 'query.slow'");
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  EXPECT_GT(events->Get(0, 0).AsInt64(), 0);
}

// ---------------------------------------------------------------------------
// KillQuery
// ---------------------------------------------------------------------------

TEST_F(IntrospectionTest, KillUnknownIdIsNotFound) {
  EXPECT_EQ(veo_.KillQuery(99999999).code(), StatusCode::kNotFound);
}

TEST_F(IntrospectionTest, KillAbandonsAQueuedStatement) {
  // One slot, held externally: the victim statement must sit in the
  // admission queue, observable as state=queued, until killed.
  governor::AdmissionConfig one;
  one.max_concurrent = 1;
  one.max_queue = 4;
  one.max_wait = std::chrono::milliseconds(30000);
  veo_.SetAdmissionConfig(one);
  auto held = veo_.admission().Admit(nullptr);
  ASSERT_TRUE(held.ok());

  Result<storage::Table> victim = Status::Internal("never ran");
  std::thread worker(
      [&] { victim = veo_.Sql("SELECT x FROM t8 WHERE x > 0"); });

  uint64_t id = 0;
  for (int spin = 0; spin < 20000 && id == 0; ++spin) {
    for (const obs::ActiveQuery& q : veo_.introspection().Active()) {
      if (q.state == obs::QueryState::kQueued) id = q.id;
    }
    if (id == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(id, 0u) << "victim never showed up in sys.queries";
  EXPECT_TRUE(veo_.KillQuery(id).ok());

  worker.join();
  ASSERT_FALSE(victim.ok());
  EXPECT_EQ(victim.status().code(), StatusCode::kCancelled);
  held->reset();
  veo_.SetAdmissionConfig(governor::AdmissionConfig{});
}

TEST_F(IntrospectionTest, KillStopsALongScanObservedFromAnotherThread) {
  // The ISSUE's acceptance scenario, end to end: a long morsel-driven
  // scan on one thread, observed via SELECT over sys.queries from this
  // one, killed by id, and its kCancelled completion record — with a
  // sampled trace — found in sys.query_log. The modulo predicate never
  // compiles to a vectorized filter, so the scan stays on the
  // interpreted per-row path (slow by design) and polls cancellation at
  // every morsel boundary.
  MakeBigTable("big", 6u << 20);
  obs::IntrospectionConfig config = veo_.introspection().config();
  config.trace_sample_every = 1;  // trace the victim without PROFILE
  veo_.introspection().Reconfigure(config);

  const std::string scan = "SELECT x FROM big WHERE (x * 37 + x) % 1013 = 5";
  Result<storage::Table> victim = Status::Internal("never ran");
  std::thread worker([&] { victim = veo_.Sql(scan); });

  // Observe the scan from this thread, through the SQL surface.
  uint64_t id = 0;
  for (int spin = 0; spin < 60000 && id == 0; ++spin) {
    auto active = veo_.Sql("SELECT id, statement, state FROM sys.queries");
    ASSERT_TRUE(active.ok()) << active.status().ToString();
    for (size_t r = 0; r < active->num_rows(); ++r) {
      if (active->Get(r, 1).AsString().find("FROM big") ==
          std::string::npos) {
        continue;
      }
      if (active->Get(r, 2).AsString() == "running") {
        id = static_cast<uint64_t>(active->Get(r, 0).AsInt64());
      }
    }
    if (id == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(id, 0u) << "scan never showed up running in sys.queries";

  EXPECT_TRUE(veo_.KillQuery(id).ok());
  worker.join();
  ASSERT_FALSE(victim.ok());
  EXPECT_EQ(victim.status().code(), StatusCode::kCancelled)
      << victim.status().ToString();

  // The completion record: killed, latency measured, budget accounted
  // (the filter charged its selection vectors before scanning), trace
  // attached.
  auto log = veo_.Sql(
      "SELECT id, status, latency_millis, peak_budget_bytes, trace_json "
      "FROM sys.query_log");
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  std::string trace_json;
  bool found = false;
  for (size_t r = 0; r < log->num_rows(); ++r) {
    if (static_cast<uint64_t>(log->Get(r, 0).AsInt64()) != id) continue;
    found = true;
    EXPECT_EQ(log->Get(r, 1).AsString(), "Cancelled");
    EXPECT_GT(log->Get(r, 2).AsFloat64(), 0.0);
    EXPECT_GT(log->Get(r, 3).AsInt64(), 0);
    trace_json = log->Get(r, 4).AsString();
  }
  ASSERT_TRUE(found) << "killed query left no sys.query_log record";

  // The sampled trace is valid Chrome trace-event JSON, carries the
  // outcome on its root span, and round-trips through the codec.
  ASSERT_FALSE(trace_json.empty());
  auto tree = obs::FromChromeTraceJson(trace_json);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->name, "sql");
  EXPECT_EQ(tree->Attr("status"), "Cancelled");
  EXPECT_EQ(obs::ToChromeTraceJson(*tree), trace_json);
}

// ---------------------------------------------------------------------------
// Traces: PROFILE, sampling, error paths
// ---------------------------------------------------------------------------

TEST_F(IntrospectionTest, ProfileTraceRoundTripsThroughChromeJson) {
  auto profile = veo_.Sql("PROFILE SELECT x FROM t8 WHERE x > 3");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();

  obs::QueryCompletion last = veo_.introspection().Log().back();
  ASSERT_EQ(last.statement, "SELECT x FROM t8 WHERE x > 3");
  ASSERT_FALSE(last.trace_json.empty());
  auto tree = obs::FromChromeTraceJson(last.trace_json);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->name, "sql");
  EXPECT_EQ(tree->Attr("status"), "OK");
  EXPECT_EQ(tree->Attr("rows"), "4");
  EXPECT_NE(tree->Find("governor.admit"), nullptr);
  EXPECT_EQ(obs::ToChromeTraceJson(*tree), last.trace_json);
}

TEST_F(IntrospectionTest, FailingStatementStillLandsItsTrace) {
  auto bad = veo_.Sql("PROFILE SELECT missing FROM nope");
  ASSERT_FALSE(bad.ok());

  obs::QueryCompletion last = veo_.introspection().Log().back();
  EXPECT_EQ(last.statement, "SELECT missing FROM nope");
  EXPECT_EQ(last.status, "NotFound");
  ASSERT_FALSE(last.trace_json.empty());
  auto tree = obs::FromChromeTraceJson(last.trace_json);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->Attr("status"), "NotFound");
}

TEST_F(IntrospectionTest, SamplingTracesEveryNthQuery) {
  obs::IntrospectionConfig config = veo_.introspection().config();
  config.trace_sample_every = 2;
  veo_.introspection().Reconfigure(config);

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(veo_.Sql("SELECT x FROM t8 WHERE x > 1").ok());
  }
  int traced = 0;
  for (const obs::QueryCompletion& c : veo_.introspection().Log()) {
    if (c.trace_json.empty()) continue;
    ++traced;
    EXPECT_EQ(c.id % 2, 0u) << "only even ids are sampled at N=2";
  }
  EXPECT_EQ(traced, 3);
}

// ---------------------------------------------------------------------------
// Concurrency (exercised under TSan by scripts/check.sh)
// ---------------------------------------------------------------------------

TEST_F(IntrospectionTest, ConcurrentIntrospectionReadsStayCoherent) {
  constexpr int kIters = 40;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  // Readers hammer the sys.* surface while writers run real statements
  // and a killer cancels arbitrary ids — every combination must stay a
  // clean result (OK, or Cancelled when the killer won the race), never
  // a crash or a torn snapshot.
  auto clean = [](const Result<storage::Table>& r) {
    return r.ok() || r.status().code() == StatusCode::kCancelled;
  };
  for (const char* statement :
       {"SELECT id, state FROM sys.queries",
        "SELECT status FROM sys.query_log",
        "SELECT name FROM sys.metrics WHERE kind = 'counter'"}) {
    threads.emplace_back([this, statement, &failed, &clean] {
      for (int i = 0; i < kIters; ++i) {
        if (!clean(veo_.Sql(statement))) failed = true;
      }
    });
  }
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([this, &failed, &clean] {
      for (int i = 0; i < kIters; ++i) {
        if (!clean(veo_.Sql("SELECT x FROM t8 WHERE x % 2 = 1"))) {
          failed = true;
        }
      }
    });
  }
  threads.emplace_back([this] {
    for (uint64_t id = 1; id <= 2 * kIters; ++id) {
      // Racing real completions: OK and NotFound are both legitimate.
      Status s = veo_.KillQuery(id);
      if (!s.ok() && s.code() != StatusCode::kNotFound) std::abort();
    }
  });
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  // Everything that started also finished; no phantom rows survive.
  EXPECT_TRUE(veo_.introspection().Active().empty());
  EXPECT_EQ(veo_.introspection().started_total(),
            veo_.introspection().finished_total());
}

}  // namespace
}  // namespace teleios::core
