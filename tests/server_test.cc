// End-to-end tests for the network service layer (src/server/): wire
// protocol framing, sessions, governed execution, streamed results,
// cancellation, shedding, the HTTP facade, and graceful drain.
//
// The central acceptance invariant: results streamed over a socket are
// BYTE-IDENTICAL to in-process execution (compared through
// EncodeTable's canonical image), and a connection that dies — cleanly
// or mid-stream — leaks nothing: no sys.sessions row, no sys.queries
// entry, no budget residue.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/observatory.h"
#include "eo/scene.h"
#include "governor/memory_budget.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/http.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/socket.h"
#include "vault/vault.h"

namespace teleios::server {
namespace {

namespace fs = std::filesystem;
using core::VirtualEarthObservatory;

/// Waits until `pred` holds or ~5s elapse; returns its final value.
template <typename Pred>
bool Eventually(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("server_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    eo::SceneSpec spec;
    spec.width = 64;
    spec.height = 64;
    spec.num_fires = 2;
    spec.name = "msg";
    auto scene = eo::GenerateScene(spec);
    ASSERT_TRUE(scene.ok());
    ASSERT_TRUE(
        vault::WriteTer(scene->ToTerRaster(), (dir_ / "msg.ter").string())
            .ok());
    ASSERT_TRUE(veo_.AttachArchive(dir_.string()).ok());
    ASSERT_TRUE(veo_.RegisterRaster("msg").ok());
    MakeBigTable("big", 4096);
    // Roomy queue so dozens of wire statements line up rather than
    // shed; shedding has its own dedicated test.
    governor::AdmissionConfig admission;
    admission.max_concurrent = 8;
    admission.max_queue = 128;
    veo_.SetAdmissionConfig(admission);
  }

  void TearDown() override {
    if (server_ != nullptr) {
      ASSERT_TRUE(server_->Shutdown().ok());
    }
    server_.reset();
    fs::remove_all(dir_);
  }

  void MakeBigTable(const std::string& name, size_t n) {
    auto table = std::make_shared<storage::Table>(
        storage::Schema({{"x", storage::ColumnType::kInt64}}));
    for (size_t i = 0; i < n; ++i) {
      table->column(0).AppendInt64(static_cast<int64_t>(i));
    }
    ASSERT_TRUE(veo_.catalog().CreateTable(name, table).ok());
  }

  /// Starts the fixture server (chunk_rows deliberately small so even
  /// modest results stream as several ROWS frames).
  void StartServer(ServerConfig config = {}) {
    config.port = 0;
    if (config.chunk_rows == 1024) config.chunk_rows = 128;
    server_ = std::make_unique<TeleiosServer>(&veo_, config);
    ASSERT_TRUE(server_->Start().ok());
  }

  Client MustConnect(const ClientOptions& options = {}) {
    auto client = Client::Connect("127.0.0.1", server_->port(), options);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  fs::path dir_;
  VirtualEarthObservatory veo_;
  std::unique_ptr<TeleiosServer> server_;
};

// ---------------------------------------------------------------------------
// protocol unit coverage (no server needed)
// ---------------------------------------------------------------------------

TEST(ProtocolTest, TableRoundTripsThroughSchemaAndRowChunks) {
  storage::Table table(
      storage::Schema({{"id", storage::ColumnType::kInt64},
                       {"name", storage::ColumnType::kString},
                       {"score", storage::ColumnType::kFloat64},
                       {"ok", storage::ColumnType::kBool}}));
  for (int64_t i = 0; i < 10; ++i) {
    table.column(0).AppendInt64(i);
    table.column(1).AppendString("row-" + std::to_string(i));
    table.column(2).AppendFloat64(i * 0.5);
    table.column(3).AppendBool(i % 2 == 0);
  }
  auto decoded = DecodeSchema(EncodeSchema(table));
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(DecodeRowChunk(EncodeRowChunk(table, 0, 4), &*decoded).ok());
  ASSERT_TRUE(DecodeRowChunk(EncodeRowChunk(table, 4, 10), &*decoded).ok());
  EXPECT_EQ(EncodeTable(table, 7), EncodeTable(*decoded, 7));
}

TEST(ProtocolTest, FrameLengthBoundsAreEnforcedBeforeAllocation) {
  std::string frame;
  AppendFrame(&frame, Opcode::kGoodbye, "");
  uint32_t crc = 0;
  auto ok_len = DecodeFrameLength(std::string_view(frame).substr(0, 8), &crc);
  ASSERT_TRUE(ok_len.ok());
  EXPECT_EQ(*ok_len, 1u);

  // A hostile 4-GiB length must be rejected from the 8 header bytes
  // alone — no allocation, no read of a body that will never arrive.
  std::string hostile(8, '\0');
  hostile[0] = '\xff';
  hostile[1] = '\xff';
  hostile[2] = '\xff';
  hostile[3] = '\xff';
  auto bad = DecodeFrameLength(hostile, &crc);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kDataLoss);
}

TEST(ProtocolTest, CrcMismatchIsDataLoss) {
  std::string frame;
  AppendFrame(&frame, Opcode::kQuery, "payload");
  uint32_t crc = 0;
  auto length = DecodeFrameLength(std::string_view(frame).substr(0, 8), &crc);
  ASSERT_TRUE(length.ok());
  std::string body = frame.substr(8);
  body.back() ^= 0x01;  // flip one payload bit
  auto decoded = DecodeFrameBody(body, crc);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(ProtocolTest, BindParametersSubstitutesOutsideLiterals) {
  auto bound = BindParameters(
      "SELECT * FROM t WHERE a = ? AND b = '?' AND c = ?",
      {Value(int64_t{42}), Value(std::string("it's"))});
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(*bound,
            "SELECT * FROM t WHERE a = 42 AND b = '?' AND c = 'it''s'");

  auto too_few = BindParameters("SELECT ?", {});
  EXPECT_FALSE(too_few.ok());
  auto too_many =
      BindParameters("SELECT 1", {Value(int64_t{1})});
  EXPECT_FALSE(too_many.ok());
}

// ---------------------------------------------------------------------------
// query streaming
// ---------------------------------------------------------------------------

TEST_F(ServerTest, StreamedResultIsByteIdenticalToInProcess) {
  StartServer();
  Client client = MustConnect();
  const std::string sql = "SELECT x FROM big WHERE x % 7 = 3";
  auto streamed = client.Query(Lang::kSql, sql);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  auto in_process = veo_.Sql(sql);
  ASSERT_TRUE(in_process.ok());
  EXPECT_EQ(EncodeTable(*streamed, 128), EncodeTable(*in_process, 128));
  // 4096/7 ≈ 585 matching rows over chunk_rows=128: a genuinely chunked
  // stream, not one frame.
  EXPECT_GT(client.last_chunks(), 1u);
  EXPECT_EQ(client.last_total_rows(), streamed->num_rows());
  ASSERT_TRUE(client.Goodbye().ok());
}

TEST_F(ServerTest, SixtyFourConcurrentMixedLanguageClients) {
  StartServer();
  struct Case {
    Lang lang;
    std::string statement;
  };
  const std::vector<Case> cases = {
      {Lang::kSql, "SELECT x FROM big WHERE x % 5 = 1"},
      {Lang::kSciQl, "SELECT count(*) AS n FROM msg WHERE LANDMASK > 0.5"},
      {Lang::kStSparql,
       "SELECT ?c WHERE { ?c a <http://www.w3.org/2002/07/owl#Class> }"},
  };
  // Expected canonical bytes per language, from in-process execution.
  std::vector<std::string> expected;
  for (const Case& c : cases) {
    Result<storage::Table> table = Status::Internal("not run");
    switch (c.lang) {
      case Lang::kSql:
        table = veo_.Sql(c.statement);
        break;
      case Lang::kSciQl:
        table = veo_.SciQl(c.statement);
        break;
      case Lang::kStSparql:
        table = veo_.StSparql(c.statement);
        break;
    }
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    expected.push_back(EncodeTable(*table, 64));
  }

  constexpr int kClients = 64;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      const Case& c = cases[i % cases.size()];
      auto client = Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      auto result = client->Query(c.lang, c.statement);
      if (!result.ok() ||
          EncodeTable(*result, 64) != expected[i % cases.size()]) {
        ++failures;
        return;
      }
      (void)client->Goodbye();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Every connection unwound: no session rows left behind.
  EXPECT_TRUE(Eventually([&] { return server_->sessions().live() == 0; }));
  EXPECT_GE(server_->sessions().opened_total(), 64u);
}

TEST_F(ServerTest, EngineErrorKeepsConnectionUsable) {
  StartServer();
  Client client = MustConnect();
  auto bad = client.Query(Lang::kSql, "SELECT FROM WHERE");
  EXPECT_FALSE(bad.ok());
  auto good = client.Query(Lang::kSql, "SELECT count(*) AS n FROM big");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->Get(0, 0).AsInt64(), 4096);
  ASSERT_TRUE(client.Goodbye().ok());
}

TEST_F(ServerTest, StSparqlUpdateStreamsCountTable) {
  StartServer();
  Client client = MustConnect();
  auto count = client.Query(
      Lang::kStSparql,
      "INSERT DATA { <http://ex.org/s> <http://ex.org/p> <http://ex.org/o> }");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  ASSERT_EQ(count->num_rows(), 1u);
  EXPECT_GE(count->Get(0, 0).AsInt64(), 1);
  ASSERT_TRUE(client.Goodbye().ok());
}

// ---------------------------------------------------------------------------
// prepared statements
// ---------------------------------------------------------------------------

TEST_F(ServerTest, PrepareExecuteBindsPositionalParameters) {
  StartServer();
  Client client = MustConnect();
  auto stmt = client.Prepare(Lang::kSql,
                             "SELECT x FROM big WHERE x < ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();

  auto five = client.Execute(*stmt, {Value(int64_t{5})});
  ASSERT_TRUE(five.ok()) << five.status().ToString();
  EXPECT_EQ(five->num_rows(), 5u);

  auto three = client.Execute(*stmt, {Value(int64_t{3})});
  ASSERT_TRUE(three.ok());
  EXPECT_EQ(three->num_rows(), 3u);

  // Wrong arity is the client's error, reported without killing the
  // connection.
  auto wrong = client.Execute(*stmt, {});
  EXPECT_FALSE(wrong.ok());

  ASSERT_TRUE(client.CloseStmt(*stmt).ok());
  auto gone = client.Execute(*stmt, {Value(int64_t{5})});
  EXPECT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(client.Goodbye().ok());
}

// ---------------------------------------------------------------------------
// cancellation & deadlines
// ---------------------------------------------------------------------------

TEST_F(ServerTest, CancelFrameStopsARunningStatement) {
  MakeBigTable("huge", 4u << 20);
  StartServer();
  Client victim = MustConnect();
  // Slow by construction: the modulo predicate stays on the interpreted
  // per-row path, polling cancellation at every morsel boundary.
  const std::string slow =
      "SELECT x FROM huge WHERE (x * 37 + x) % 1013 = 5";
  Result<storage::Table> outcome = Status::Internal("never ran");
  std::thread runner([&] { outcome = victim.Query(Lang::kSql, slow); });

  Client controller = MustConnect();
  ASSERT_TRUE(Eventually([&] {
    for (const SessionStats& s : server_->sessions().Snapshot()) {
      if (s.id == victim.session_id() && s.state != "idle" &&
          s.state != "handshake") {
        return true;
      }
    }
    return false;
  }));
  // A wrong key must not kill someone else's statement.
  auto refused =
      controller.Cancel(victim.session_id(), victim.cancel_key() + 1);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(
      controller.Cancel(victim.session_id(), victim.cancel_key()).ok());
  runner.join();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled)
      << outcome.status().ToString();

  // The victim's connection survived its statement's death.
  auto after = victim.Query(Lang::kSql, "SELECT count(*) AS n FROM big");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_TRUE(victim.Goodbye().ok());
  ASSERT_TRUE(controller.Goodbye().ok());
}

TEST_F(ServerTest, PerStatementDeadlineCancelsCooperatively) {
  MakeBigTable("huge2", 4u << 20);
  StartServer();
  Client client = MustConnect();
  auto result = client.Query(
      Lang::kSql, "SELECT x FROM huge2 WHERE (x * 37 + x) % 1013 = 5",
      /*deadline_millis=*/30);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
  ASSERT_TRUE(client.Goodbye().ok());
}

// ---------------------------------------------------------------------------
// failure modes: dead sockets, sheds, auth
// ---------------------------------------------------------------------------

TEST_F(ServerTest, KilledSocketMidStreamLeaksNothing) {
  MakeBigTable("wide", 512u << 10);
  ServerConfig config;
  config.chunk_rows = 64;
  StartServer(config);
  const size_t live_budgets_before = governor::AllBudgetStats().size();
  {
    Client client = MustConnect();
    ASSERT_TRUE(
        client.SendQuery(Lang::kSql, "SELECT x FROM wide").ok());
    // Take only the schema frame, then vanish mid-stream.
    auto schema = client.ReadFrame();
    ASSERT_TRUE(schema.ok());
    ASSERT_EQ(schema->opcode, Opcode::kSchema);
    client.connection().Close();
  }
  // The handler notices the dead socket (EPIPE on a ROWS write), the
  // session closes, its budget unregisters, and sys.queries drains.
  EXPECT_TRUE(Eventually([&] { return server_->sessions().live() == 0; }));
  EXPECT_TRUE(Eventually([&] {
    return governor::AllBudgetStats().size() == live_budgets_before;
  }));
  // sys.queries holds exactly the introspecting statement itself.
  auto queries = veo_.Sql("SELECT id FROM sys.queries");
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(queries->num_rows(), 1u);
  // And the server still serves.
  Client again = MustConnect();
  auto result = again.Query(Lang::kSql, "SELECT count(*) AS n FROM big");
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(again.Goodbye().ok());
}

TEST_F(ServerTest, OverflowConnectionsAreShedInProtocol) {
  ServerConfig config;
  config.max_sessions = 2;
  StartServer(config);
  Client first = MustConnect();
  Client second = MustConnect();
  // Binary client: refused with a framed kUnavailable ERROR.
  auto third = Client::Connect("127.0.0.1", server_->port());
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kUnavailable)
      << third.status().ToString();
  // HTTP client: refused with a 503.
  auto http = Socket::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(http.ok());
  ASSERT_TRUE(http->WriteAll("GET /healthz HTTP/1.1\r\n\r\n").ok());
  char buf[256] = {0};
  auto got = http->ReadSome(buf, sizeof(buf), 5000);
  ASSERT_TRUE(got.ok());
  EXPECT_NE(std::string(buf, *got).find("503"), std::string::npos);
  // Freeing a slot restores service.
  ASSERT_TRUE(first.Goodbye().ok());
  EXPECT_TRUE(Eventually([&] { return server_->sessions().live() == 1; }));
  Client fourth = MustConnect();
  ASSERT_TRUE(fourth.Goodbye().ok());
  ASSERT_TRUE(second.Goodbye().ok());
}

TEST_F(ServerTest, AuthTokenGatesBothProtocols) {
  ServerConfig config;
  config.auth_token = "hunter2";
  StartServer(config);
  auto anonymous = Client::Connect("127.0.0.1", server_->port());
  ASSERT_FALSE(anonymous.ok());

  ClientOptions options;
  options.auth_token = "hunter2";
  Client authed = MustConnect(options);
  auto result = authed.Query(Lang::kSql, "SELECT count(*) AS n FROM big");
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(authed.Goodbye().ok());

  auto http = Socket::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(http.ok());
  std::string body = "SELECT 1";
  ASSERT_TRUE(http->WriteAll("POST /query HTTP/1.1\r\nContent-Length: " +
                             std::to_string(body.size()) + "\r\n\r\n" + body)
                  .ok());
  char buf[512] = {0};
  auto got = http->ReadSome(buf, sizeof(buf), 5000);
  ASSERT_TRUE(got.ok());
  EXPECT_NE(std::string(buf, *got).find("401"), std::string::npos);
}

// ---------------------------------------------------------------------------
// sys.sessions & metrics
// ---------------------------------------------------------------------------

TEST_F(ServerTest, SysSessionsIsQueryableOverTheWire) {
  StartServer();
  Client client = MustConnect();
  auto sessions =
      client.Query(Lang::kSql,
                   "SELECT id, protocol, state FROM sys.sessions");
  ASSERT_TRUE(sessions.ok()) << sessions.status().ToString();
  // At minimum the asking session itself, in state executing/streaming.
  bool found_self = false;
  for (size_t r = 0; r < sessions->num_rows(); ++r) {
    if (sessions->Get(r, 0).AsInt64() ==
        static_cast<int64_t>(client.session_id())) {
      found_self = true;
      EXPECT_EQ(sessions->Get(r, 1).AsString(), "binary");
    }
  }
  EXPECT_TRUE(found_self);
  ASSERT_TRUE(client.Goodbye().ok());

  std::string metrics = veo_.MetricsText();
  EXPECT_NE(metrics.find("teleios_server_connections_total"),
            std::string::npos);
  EXPECT_NE(metrics.find("teleios_server_frames_total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// HTTP facade
// ---------------------------------------------------------------------------

TEST_F(ServerTest, HttpFacadeServesQueryHealthAndMetrics) {
  StartServer();
  auto fetch = [&](const std::string& request) {
    auto sock = Socket::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(sock.ok());
    EXPECT_TRUE(sock->WriteAll(request).ok());
    std::string response;
    char buf[4096];
    for (;;) {
      auto got = sock->ReadSome(buf, sizeof(buf), 5000);
      if (!got.ok() || *got == 0) break;
      response.append(buf, *got);
    }
    return response;
  };

  EXPECT_NE(fetch("GET /healthz HTTP/1.1\r\n\r\n").find("ok"),
            std::string::npos);
  EXPECT_NE(fetch("GET /metrics HTTP/1.1\r\n\r\n")
                .find("teleios_server_sessions"),
            std::string::npos);

  std::string body = "SELECT count(*) AS n FROM big";
  std::string response =
      fetch("POST /query?lang=sql HTTP/1.1\r\nContent-Length: " +
            std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"rows\":[[4096]]"), std::string::npos);

  // Parse errors map to 400, unknown routes to 404.
  std::string bad_body = "SELECT FROM";
  EXPECT_NE(fetch("POST /query HTTP/1.1\r\nContent-Length: " +
                  std::to_string(bad_body.size()) + "\r\n\r\n" + bad_body)
                .find("400"),
            std::string::npos);
  EXPECT_NE(fetch("GET /nope HTTP/1.1\r\n\r\n").find("404"),
            std::string::npos);
  EXPECT_TRUE(Eventually([&] { return server_->sessions().live() == 0; }));
}

// ---------------------------------------------------------------------------
// graceful drain
// ---------------------------------------------------------------------------

TEST_F(ServerTest, ShutdownDrainsInFlightStatements) {
  StartServer();
  Client client = MustConnect();
  std::atomic<bool> done{false};
  Result<storage::Table> outcome = Status::Internal("never ran");
  std::thread runner([&] {
    outcome = client.Query(Lang::kSql, "SELECT x FROM big WHERE x % 3 = 0");
    done = true;
  });
  // Wait for the statement to be in flight, so the drain below actually
  // has something to let finish.
  ASSERT_TRUE(Eventually([&] {
    for (const SessionStats& s : server_->sessions().Snapshot()) {
      if (s.id == client.session_id() && s.queries_run >= 1) return true;
    }
    return false;
  }));
  // Shutdown must let the in-flight statement finish streaming (the
  // result is small and fast: well inside the drain window).
  ASSERT_TRUE(server_->Shutdown().ok());
  runner.join();
  ASSERT_TRUE(done.load());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->num_rows(), 4096u / 3 + 1);
  // After shutdown the port no longer accepts.
  auto refused = Client::Connect("127.0.0.1", server_->port());
  EXPECT_FALSE(refused.ok());
  server_.reset();
}

TEST_F(ServerTest, ShutdownOfDurableObservatoryCheckpoints) {
  fs::path wal_dir = dir_ / "durable";
  VirtualEarthObservatory durable;
  ASSERT_TRUE(durable.Open(wal_dir.string()).ok());
  TeleiosServer server(&durable, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto inserted = client->Query(
      Lang::kStSparql,
      "INSERT DATA { <http://ex.org/a> <http://ex.org/b> <http://ex.org/c> }");
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  (void)client->Goodbye();

  const uint64_t checkpoints_before = durable.durability_stats().checkpoints;
  ASSERT_TRUE(server.Shutdown().ok());
  // The SIGTERM contract: shutting down leaves a fresh checkpoint, so a
  // restart replays no WAL tail.
  EXPECT_EQ(durable.durability_stats().checkpoints, checkpoints_before + 1);
}

}  // namespace
}  // namespace teleios::server
