#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "geo/rtree.h"

namespace teleios::geo {
namespace {

/// Deterministic pseudo-random boxes.
std::vector<RTree::Entry> MakeBoxes(size_t n, uint64_t seed) {
  std::vector<RTree::Entry> entries;
  uint64_t state = seed ? seed : 1;
  auto next = [&]() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return static_cast<double>((state * 0x2545f4914f6cdd1dull) >> 11) /
           9007199254740992.0;
  };
  for (size_t i = 0; i < n; ++i) {
    double x = next() * 100;
    double y = next() * 100;
    double w = next() * 5;
    double h = next() * 5;
    entries.push_back({{x, y, x + w, y + h}, static_cast<int64_t>(i)});
  }
  return entries;
}

std::vector<int64_t> BruteForce(const std::vector<RTree::Entry>& entries,
                                const Envelope& query) {
  std::vector<int64_t> out;
  for (const auto& e : entries) {
    if (e.box.Intersects(query)) out.push_back(e.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Query({0, 0, 100, 100}).empty());
}

TEST(RTreeTest, SingleEntry) {
  RTree tree;
  tree.Insert({1, 1, 2, 2}, 42);
  auto hits = tree.Query({0, 0, 3, 3});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42);
  EXPECT_TRUE(tree.Query({5, 5, 6, 6}).empty());
}

TEST(RTreeTest, BulkLoadFindsEverything) {
  auto entries = MakeBoxes(500, 7);
  RTree tree;
  tree.BulkLoad(entries);
  EXPECT_EQ(tree.size(), 500u);
  auto all = tree.Query({-10, -10, 200, 200});
  EXPECT_EQ(all.size(), 500u);
  EXPECT_GT(tree.height(), 1);
}

TEST(RTreeTest, BulkLoadMatchesBruteForce) {
  auto entries = MakeBoxes(300, 11);
  RTree tree;
  tree.BulkLoad(entries);
  const Envelope queries[] = {
      {10, 10, 20, 20}, {0, 0, 5, 5}, {50, 50, 51, 51}, {90, 0, 100, 100}};
  for (const Envelope& q : queries) {
    auto hits = tree.Query(q);
    std::sort(hits.begin(), hits.end());
    EXPECT_EQ(hits, BruteForce(entries, q));
  }
}

TEST(RTreeTest, IncrementalInsertMatchesBruteForce) {
  auto entries = MakeBoxes(400, 23);
  RTree tree(8);
  for (const auto& e : entries) tree.Insert(e.box, e.id);
  EXPECT_EQ(tree.size(), 400u);
  const Envelope queries[] = {
      {25, 25, 40, 40}, {0, 90, 100, 100}, {60, 60, 60.5, 60.5}};
  for (const Envelope& q : queries) {
    auto hits = tree.Query(q);
    std::sort(hits.begin(), hits.end());
    EXPECT_EQ(hits, BruteForce(entries, q));
  }
}

TEST(RTreeTest, MixedBulkThenInsert) {
  auto base = MakeBoxes(100, 3);
  RTree tree;
  tree.BulkLoad(base);
  auto extra = MakeBoxes(100, 17);
  std::vector<RTree::Entry> all = base;
  for (auto& e : extra) {
    e.id += 1000;
    tree.Insert(e.box, e.id);
    all.push_back(e);
  }
  Envelope q{30, 30, 70, 70};
  auto hits = tree.Query(q);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, BruteForce(all, q));
}

TEST(RTreeTest, QueryWithinGrowsSearchBox) {
  RTree tree;
  tree.Insert({10, 10, 11, 11}, 1);
  tree.Insert({20, 20, 21, 21}, 2);
  // Plain query at origin finds nothing; within distance 15 finds #1.
  EXPECT_TRUE(tree.Query({0, 0, 1, 1}).empty());
  auto near = tree.QueryWithin({0, 0, 1, 1}, 15.0);
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0], 1);
  auto far = tree.QueryWithin({0, 0, 1, 1}, 50.0);
  EXPECT_EQ(far.size(), 2u);
}

TEST(RTreeTest, MoveSemantics) {
  RTree a;
  a.Insert({0, 0, 1, 1}, 5);
  RTree b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.Query({0, 0, 2, 2}).size(), 1u);
}

/// Property sweep over sizes and fanouts: tree results always equal brute
/// force on a fixed query battery.
class RTreeSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RTreeSweep, EquivalentToBruteForce) {
  auto [n, fanout] = GetParam();
  auto entries = MakeBoxes(static_cast<size_t>(n), 31 + n);
  RTree bulk(fanout);
  bulk.BulkLoad(entries);
  RTree incremental(fanout);
  for (const auto& e : entries) incremental.Insert(e.box, e.id);
  for (double q0 : {0.0, 33.0, 66.0}) {
    Envelope q{q0, q0, q0 + 25, q0 + 25};
    auto expected = BruteForce(entries, q);
    auto from_bulk = bulk.Query(q);
    auto from_incr = incremental.Query(q);
    std::sort(from_bulk.begin(), from_bulk.end());
    std::sort(from_incr.begin(), from_incr.end());
    EXPECT_EQ(from_bulk, expected);
    EXPECT_EQ(from_incr, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndFanouts, RTreeSweep,
    ::testing::Values(std::make_pair(1, 4), std::make_pair(17, 4),
                      std::make_pair(100, 8), std::make_pair(1000, 16),
                      std::make_pair(2048, 32)));

}  // namespace
}  // namespace teleios::geo
