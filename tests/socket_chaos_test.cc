// The network-fault proof for the service layer (src/server/):
//
//   1. Unit coverage of the injectable transport seam — deterministic
//      fail-the-k-th-op programs, short reads/writes, refusals, stalls.
//   2. The idempotent-retry dedup window — duplicates replay recorded
//      outcomes, reordered/evicted/oversize entries behave.
//   3. Session leases — idle sessions reaped on an injectable clock,
//      executing sessions spared, heartbeats keep a quiet connection
//      alive over the real wire.
//   4. Per-write timeouts — a client that stops reading is killed and
//      leaks nothing.
//   5. The socket chaos sweep: kill the k-th transport operation for
//      EVERY k in a full client workload (connect/handshake, mutations,
//      multi-chunk streaming, prepared statements, heartbeat, goodbye)
//      and require that the resilient client still completes every
//      step, the server remains serviceable, nothing leaks, and — by
//      WAL replay on a fresh instance — every acked mutation applied
//      exactly once, no matter where the wire died.
//   6. A reconnect storm: many threads hammering a faulty transport
//      concurrently (the TSan leg of check.sh runs this too).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/observatory.h"
#include "governor/memory_budget.h"
#include "obs/metrics.h"
#include "obs/query_registry.h"
#include "server/client.h"
#include "server/dedup.h"
#include "server/fault_transport.h"
#include "server/protocol.h"
#include "server/resilient_client.h"
#include "server/server.h"
#include "server/session.h"
#include "server/transport.h"

namespace teleios::server {
namespace {

namespace fs = std::filesystem;
using core::VirtualEarthObservatory;

/// Waits until `pred` holds or ~5s elapse (configurable for paths that
/// first have to chew through a big scan under TSan); returns its
/// final value.
template <typename Pred>
bool Eventually(Pred pred, int ticks = 500) {
  for (int i = 0; i < ticks; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

uint64_t CounterValue(const std::string& name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

// --- 1. the transport seam ------------------------------------------------

TEST(TransportFaultTest, DisarmedIsAPassThroughThatCountsOps) {
  FaultInjectingTransport faulty;
  ScopedTransport scope(&faulty);
  auto listener = faulty.Listen(0, 4);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  int port = (*listener)->bound_port();
  ASSERT_GT(port, 0);

  std::thread server([&] {
    auto conn = (*listener)->AcceptWithTimeout(5000);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    char buf[5] = {0};
    ASSERT_TRUE((*conn)->ReadExact(buf, 5).ok());
    EXPECT_EQ(std::string(buf, 5), "hello");
    ASSERT_TRUE((*conn)->WriteAll("world").ok());
  });
  auto conn = faulty.Connect("127.0.0.1", port);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  ASSERT_TRUE((*conn)->WriteAll("hello").ok());
  char buf[5] = {0};
  ASSERT_TRUE((*conn)->ReadExact(buf, 5).ok());
  EXPECT_EQ(std::string(buf, 5), "world");
  server.join();
  // connect + accept + 2 writes + 2 reads, exactly.
  EXPECT_EQ(faulty.ops(), 6u);
  EXPECT_EQ(faulty.faults_injected(), 0u);
}

TEST(TransportFaultTest, FailsExactlyTheKthOp) {
  FaultInjectingTransport faulty;
  ScopedTransport scope(&faulty);
  auto listener = faulty.Listen(0, 4);
  ASSERT_TRUE(listener.ok());
  int port = (*listener)->bound_port();

  // Op 1 = Connect: refused (connect-class faults degrade to refusal).
  TransportFaultSpec spec;
  spec.kind = TransportFaultKind::kIoError;
  spec.inject_at = 1;
  faulty.Arm(spec);
  auto refused = faulty.Connect("127.0.0.1", port);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable)
      << refused.status().ToString();
  EXPECT_EQ(faulty.faults_injected(), 1u);

  // Re-armed at op 3: connect(1) and accept(2) succeed, the client
  // write (3) dies.
  faulty.Arm(spec);
  spec.inject_at = 3;
  faulty.Arm(spec);
  auto conn = faulty.Connect("127.0.0.1", port);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  auto served = (*listener)->AcceptWithTimeout(5000);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  Status wrote = (*conn)->WriteAll("hello");
  ASSERT_FALSE(wrote.ok());
  EXPECT_EQ(wrote.code(), StatusCode::kIoError) << wrote.ToString();
  EXPECT_EQ(faulty.faults_injected(), 1u);
}

TEST(TransportFaultTest, ShortWriteTearsTheStreamMidMessage) {
  FaultInjectingTransport faulty;
  ScopedTransport scope(&faulty);
  auto listener = faulty.Listen(0, 4);
  ASSERT_TRUE(listener.ok());
  auto conn = faulty.Connect("127.0.0.1", (*listener)->bound_port());
  ASSERT_TRUE(conn.ok());
  auto served = (*listener)->AcceptWithTimeout(5000);
  ASSERT_TRUE(served.ok());

  TransportFaultSpec spec;
  spec.kind = TransportFaultKind::kShortWrite;
  spec.inject_at = 1;
  faulty.Arm(spec);
  std::string message = "0123456789abcdef";
  Status wrote = (*conn)->WriteAll(message);
  ASSERT_FALSE(wrote.ok());
  // The peer got exactly the first half, then EOF: a torn frame.
  char buf[16] = {0};
  Status read = (*served)->ReadExact(buf, sizeof(buf), 250);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.code(), StatusCode::kDataLoss) << read.ToString();
  EXPECT_EQ(std::string(buf, 8), "01234567");
}

TEST(TransportFaultTest, ShortReadDeliversAPrefixThenDataLoss) {
  FaultInjectingTransport faulty;
  ScopedTransport scope(&faulty);
  auto listener = faulty.Listen(0, 4);
  ASSERT_TRUE(listener.ok());
  auto conn = faulty.Connect("127.0.0.1", (*listener)->bound_port());
  ASSERT_TRUE(conn.ok());
  auto served = (*listener)->AcceptWithTimeout(5000);
  ASSERT_TRUE(served.ok());
  ASSERT_TRUE((*conn)->WriteAll("0123456789abcdef").ok());

  TransportFaultSpec spec;
  spec.kind = TransportFaultKind::kShortRead;
  spec.inject_at = 1;
  faulty.Arm(spec);
  char buf[16] = {0};
  Status read = (*served)->ReadExact(buf, sizeof(buf), 250);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.code(), StatusCode::kDataLoss) << read.ToString();
  EXPECT_EQ(std::string(buf, 8), "01234567");
}

TEST(TransportFaultTest, EveryNRepeatsAndStallOnlyDelays) {
  FaultInjectingTransport faulty;
  ScopedTransport scope(&faulty);
  auto listener = faulty.Listen(0, 4);
  ASSERT_TRUE(listener.ok());
  auto conn = faulty.Connect("127.0.0.1", (*listener)->bound_port());
  ASSERT_TRUE(conn.ok());
  auto served = (*listener)->AcceptWithTimeout(5000);
  ASSERT_TRUE(served.ok());

  TransportFaultSpec spec;
  spec.kind = TransportFaultKind::kStall;
  spec.inject_at = 1;
  spec.every_n = 2;
  spec.stall_millis = 5;
  faulty.Arm(spec);
  // Stalls never fail anything, so all writes succeed; ops 1, 3, 5
  // stall (inject_at=1, every 2 after).
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*conn)->WriteAll("x").ok()) << i;
  }
  EXPECT_EQ(faulty.faults_injected(), 3u);
}

TEST(TransportFaultTest, DropAfterBytesKillsTheFattenedConnection) {
  FaultInjectingTransport faulty;
  ScopedTransport scope(&faulty);
  auto listener = faulty.Listen(0, 4);
  ASSERT_TRUE(listener.ok());
  auto conn = faulty.Connect("127.0.0.1", (*listener)->bound_port());
  ASSERT_TRUE(conn.ok());
  auto served = (*listener)->AcceptWithTimeout(5000);
  ASSERT_TRUE(served.ok());

  TransportFaultSpec spec;
  spec.kind = TransportFaultKind::kDisconnect;
  spec.inject_at = 0;  // no op-indexed fault; only the byte bound
  spec.drop_after_bytes = 10;
  faulty.Arm(spec);
  ASSERT_TRUE((*conn)->WriteAll("0123456789ab").ok());  // crosses the bound
  Status wrote = (*conn)->WriteAll("more");
  ASSERT_FALSE(wrote.ok());  // first op after crossing: dead
}

// --- 2. the dedup window --------------------------------------------------

std::shared_ptr<const storage::Table> OneRowTable(int64_t v) {
  auto table = std::make_shared<storage::Table>(
      storage::Schema({{"v", storage::ColumnType::kInt64}}));
  table->column(0).AppendInt64(v);
  return table;
}

TEST(DedupRegistryTest, DuplicateReplaysTheRecordedOutcome) {
  DedupRegistry dedup(/*max_clients=*/4, /*window=*/8);
  auto fresh = dedup.Begin(7, 1);
  EXPECT_EQ(fresh.kind, DedupRegistry::Claim::kFresh);
  dedup.Complete(7, 1, Status::OK(), OneRowTable(42));

  auto replay = dedup.Begin(7, 1);
  EXPECT_EQ(replay.kind, DedupRegistry::Claim::kDone);
  ASSERT_TRUE(replay.status.ok());
  ASSERT_NE(replay.result, nullptr);
  EXPECT_EQ(replay.result->Get(0, 0).AsInt64(), 42);
  EXPECT_EQ(dedup.stats().hits, 1u);

  // Error outcomes replay too — a definitive refusal is as recorded as
  // a success.
  auto bad = dedup.Begin(7, 2);
  EXPECT_EQ(bad.kind, DedupRegistry::Claim::kFresh);
  dedup.Complete(7, 2, Status::InvalidArgument("no such table"), nullptr);
  auto bad_replay = dedup.Begin(7, 2);
  EXPECT_EQ(bad_replay.kind, DedupRegistry::Claim::kDone);
  EXPECT_EQ(bad_replay.status.code(), StatusCode::kInvalidArgument);
}

TEST(DedupRegistryTest, InFlightDuplicateIsToldToBackOff) {
  DedupRegistry dedup(4, 8);
  ASSERT_EQ(dedup.Begin(7, 1).kind, DedupRegistry::Claim::kFresh);
  auto racing = dedup.Begin(7, 1);
  EXPECT_EQ(racing.kind, DedupRegistry::Claim::kInFlight);
  EXPECT_EQ(racing.status.code(), StatusCode::kUnavailable);
  dedup.Complete(7, 1, Status::OK(), OneRowTable(1));
  EXPECT_EQ(dedup.Begin(7, 1).kind, DedupRegistry::Claim::kDone);
}

TEST(DedupRegistryTest, AbandonForgetsOnlyUnfinishedEntries) {
  DedupRegistry dedup(4, 8);
  ASSERT_EQ(dedup.Begin(7, 1).kind, DedupRegistry::Claim::kFresh);
  dedup.Abandon(7, 1);
  // Forgotten: the retry re-executes.
  EXPECT_EQ(dedup.Begin(7, 1).kind, DedupRegistry::Claim::kFresh);
  dedup.Complete(7, 1, Status::OK(), OneRowTable(1));
  dedup.Abandon(7, 1);  // no-op on a completed entry
  EXPECT_EQ(dedup.Begin(7, 1).kind, DedupRegistry::Claim::kDone);
}

TEST(DedupRegistryTest, ReorderedAndEvictedIdsReexecute) {
  DedupRegistry dedup(4, /*window=*/2);
  // Requests complete out of order; both replay while in-window.
  ASSERT_EQ(dedup.Begin(7, 2).kind, DedupRegistry::Claim::kFresh);
  ASSERT_EQ(dedup.Begin(7, 1).kind, DedupRegistry::Claim::kFresh);
  dedup.Complete(7, 2, Status::OK(), OneRowTable(2));
  dedup.Complete(7, 1, Status::OK(), OneRowTable(1));
  EXPECT_EQ(dedup.Begin(7, 1).kind, DedupRegistry::Claim::kDone);
  EXPECT_EQ(dedup.Begin(7, 2).kind, DedupRegistry::Claim::kDone);
  // Two more completions push 2 and then 1 out of the window (FIFO by
  // completion order): the evicted id re-executes.
  ASSERT_EQ(dedup.Begin(7, 3).kind, DedupRegistry::Claim::kFresh);
  dedup.Complete(7, 3, Status::OK(), OneRowTable(3));
  ASSERT_EQ(dedup.Begin(7, 4).kind, DedupRegistry::Claim::kFresh);
  dedup.Complete(7, 4, Status::OK(), OneRowTable(4));
  EXPECT_EQ(dedup.Begin(7, 2).kind, DedupRegistry::Claim::kFresh);
  EXPECT_GE(dedup.stats().evicted, 2u);
}

TEST(DedupRegistryTest, OversizeResultsAreDroppedNotPinned) {
  DedupRegistry dedup(4, 8, /*max_result_bytes=*/64);
  auto big = std::make_shared<storage::Table>(
      storage::Schema({{"s", storage::ColumnType::kString}}));
  big->column(0).AppendString(std::string(4096, 'x'));
  ASSERT_EQ(dedup.Begin(7, 1).kind, DedupRegistry::Claim::kFresh);
  dedup.Complete(7, 1, Status::OK(),
                 std::shared_ptr<const storage::Table>(big));
  // Too big to remember: the duplicate re-executes instead of replaying.
  EXPECT_EQ(dedup.Begin(7, 1).kind, DedupRegistry::Claim::kFresh);
  EXPECT_EQ(dedup.stats().oversize, 1u);
}

TEST(DedupRegistryTest, ColdestClientIsEvictedAtCapacity) {
  DedupRegistry dedup(/*max_clients=*/2, 8);
  dedup.Begin(1, 1);
  dedup.Complete(1, 1, Status::OK(), OneRowTable(1));
  dedup.Begin(2, 1);
  dedup.Complete(2, 1, Status::OK(), OneRowTable(2));
  dedup.Begin(1, 2);  // touch client 1: client 2 is now coldest
  dedup.Begin(3, 1);  // third client evicts client 2
  EXPECT_EQ(dedup.stats().clients, 2u);
  // The touched client survived with its history; the evicted one is a
  // stranger again (and re-admitting it evicts the current coldest).
  EXPECT_EQ(dedup.Begin(1, 1).kind, DedupRegistry::Claim::kDone);
  EXPECT_EQ(dedup.Begin(2, 1).kind, DedupRegistry::Claim::kFresh);
}

// --- 3. session leases ----------------------------------------------------

TEST(SessionLeaseTest, IdleSessionsExpireOnTheInjectedClock) {
  SessionRegistry registry;
  int64_t now = 1'000'000;
  registry.SetClockForTest([&now] { return now; });

  auto idle = registry.Open("peer-a", "binary", 0);
  idle->set_state("idle");
  auto fresh = registry.Open("peer-b", "binary", 0);
  fresh->set_state("idle");
  auto executing = registry.Open("peer-c", "binary", 0);
  executing->set_state("executing");
  auto shaking = registry.Open("peer-d", "binary", 0);  // "handshake"

  now += 5'000;
  fresh->Touch(registry.NowMillis());  // peer-b renews its lease
  now += 56'000;                       // a + d are now 61s idle, b 56s

  const uint64_t before = CounterValue("teleios_server_lease_expired_total");
  EXPECT_EQ(registry.ReapExpired(/*lease_millis=*/60'000), 2u);
  EXPECT_EQ(CounterValue("teleios_server_lease_expired_total"), before + 2);
  EXPECT_EQ(idle->state(), "expired");
  EXPECT_EQ(shaking->state(), "expired");
  // The executing session was spared no matter how stale: a running
  // statement is the write timeout's jurisdiction.
  EXPECT_EQ(executing->state(), "executing");
  EXPECT_EQ(fresh->state(), "idle");
  // Reaping is idempotent until more time passes.
  EXPECT_EQ(registry.ReapExpired(60'000), 0u);
  registry.Close(idle);
  registry.Close(fresh);
  registry.Close(executing);
  registry.Close(shaking);
}

TEST(SessionLeaseTest, ZeroLeaseDisablesReaping) {
  SessionRegistry registry;
  int64_t now = 0;
  registry.SetClockForTest([&now] { return now; });
  auto session = registry.Open("peer", "binary", 0);
  session->set_state("idle");
  now += 1'000'000'000;
  EXPECT_EQ(registry.ReapExpired(0), 0u);
  registry.Close(session);
}

// --- wire-level fixtures --------------------------------------------------

class ChaosServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("socket_chaos_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    governor::AdmissionConfig admission;
    admission.max_concurrent = 8;
    admission.max_queue = 128;
    veo_.SetAdmissionConfig(admission);
  }

  void TearDown() override {
    if (server_ != nullptr) {
      ASSERT_TRUE(server_->Shutdown().ok());
    }
    server_.reset();
    fs::remove_all(dir_);
  }

  void MakeSeedTable(size_t n) {
    auto table = std::make_shared<storage::Table>(
        storage::Schema({{"x", storage::ColumnType::kInt64}}));
    for (size_t i = 0; i < n; ++i) {
      table->column(0).AppendInt64(static_cast<int64_t>(i));
    }
    ASSERT_TRUE(veo_.catalog().CreateTable("seed", table).ok());
  }

  void StartServer(ServerConfig config) {
    config.port = 0;
    server_ = std::make_unique<TeleiosServer>(&veo_, config);
    ASSERT_TRUE(server_->Start().ok());
  }

  fs::path dir_;
  VirtualEarthObservatory veo_;
  std::unique_ptr<TeleiosServer> server_;
};

TEST_F(ChaosServerTest, HeartbeatKeepsAQuietSessionAliveOverTheWire) {
  MakeSeedTable(8);
  ServerConfig config;
  config.lease_millis = 400;  // reaper scans every ~40ms
  StartServer(config);

  auto pinger = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(pinger.ok()) << pinger.status().ToString();
  auto silent = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(silent.ok()) << silent.status().ToString();
  ASSERT_TRUE(Eventually([&] { return server_->sessions().live() == 2; }));

  const uint64_t reaped_before =
      CounterValue("teleios_server_lease_expired_total");
  // 1.2s of quiet — three leases deep — but the pinger heartbeats.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(pinger->Ping().ok()) << "ping " << i;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  // The silent session was reaped; the pinging one survived.
  EXPECT_TRUE(Eventually([&] { return server_->sessions().live() == 1; }));
  EXPECT_GE(CounterValue("teleios_server_lease_expired_total"),
            reaped_before + 1);
  auto result = pinger->Query(Lang::kSql, "SELECT x FROM seed");
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(pinger->Goodbye().ok());
  EXPECT_TRUE(Eventually([&] { return server_->sessions().live() == 0; }));
}

TEST_F(ChaosServerTest, WriteTimeoutKillsAClientThatStoppedReading) {
  // A result comfortably larger than both socket buffers, so the
  // server's stream must stall once the client stops draining it.
  MakeSeedTable(400'000);
  ServerConfig config;
  config.write_timeout_millis = 200;
  config.chunk_rows = 4096;
  config.lease_millis = 0;  // isolate the write-timeout path
  StartServer(config);

  auto client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(
      client->SendQuery(Lang::kSql, "SELECT x FROM seed").ok());
  // Read nothing. The server fills the kernel buffers, stalls, times
  // out, and kills the connection — session and budget released.
  const uint64_t before = CounterValue("teleios_server_write_timeouts_total");
  // 30s ceiling: under TSan the 400k-row scan alone takes several
  // seconds before the stream can even stall.
  EXPECT_TRUE(Eventually([&] { return server_->sessions().live() == 0; },
                         /*ticks=*/3000));
  EXPECT_GE(CounterValue("teleios_server_write_timeouts_total"), before + 1);
}

// --- 5. the socket chaos sweep --------------------------------------------

/// One full client lifetime against a durable observatory: mutations
/// (plain and prepared), multi-chunk streamed reads, a heartbeat, a
/// goodbye. Every statement goes through ResilientClient, so with at
/// most one injected fault the workload must succeed end to end.
/// Returns the values the four INSERTs acked.
void RunChaosWorkload(int port, uint64_t client_id, int64_t base) {
  ResilientClientOptions options;
  options.client.client_id = client_id;
  options.retry.max_attempts = 8;
  options.retry.base_backoff_ms = 1;
  options.retry.max_backoff_ms = 20;
  options.retry.jitter_seed = 42;
  ResilientClient rc("127.0.0.1", port, options);

  auto create = rc.Query(
      Lang::kSql, "CREATE TABLE chaos_t (v INT)");
  ASSERT_TRUE(create.ok()) << create.status().ToString();
  for (int64_t v = base; v < base + 2; ++v) {
    auto insert = rc.Query(
        Lang::kSql, "INSERT INTO chaos_t VALUES (" + std::to_string(v) + ")");
    ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  }
  ASSERT_TRUE(rc.Ping().ok());
  auto stream = rc.Query(Lang::kSql, "SELECT x FROM seed");
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_EQ(stream->num_rows(), 96u);
  auto prepared = rc.Prepare(Lang::kSql, "INSERT INTO chaos_t VALUES (?)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  for (int64_t v = base + 2; v < base + 4; ++v) {
    auto exec = rc.Execute(*prepared, {Value(v)});
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  }
  auto count = rc.Query(Lang::kSql, "SELECT count(*) AS n FROM chaos_t");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count->Get(0, 0).AsInt64(), 4);
  auto ordered = rc.Query(Lang::kSql, "SELECT x FROM seed ORDER BY x");
  ASSERT_TRUE(ordered.ok()) << ordered.status().ToString();
  EXPECT_EQ(ordered->num_rows(), 96u);
  ASSERT_TRUE(rc.Ping().ok());
  Status bye = rc.Goodbye();
  (void)bye;  // goodbye on a faulted connection may legitimately fail
}

constexpr size_t kSeedRows = 96;
constexpr int64_t kBase = 100;

void SeedObservatory(VirtualEarthObservatory* veo) {
  governor::AdmissionConfig admission;
  admission.max_concurrent = 8;
  admission.max_queue = 128;
  veo->SetAdmissionConfig(admission);
  auto table = std::make_shared<storage::Table>(
      storage::Schema({{"x", storage::ColumnType::kInt64}}));
  for (size_t i = 0; i < kSeedRows; ++i) {
    table->column(0).AppendInt64(static_cast<int64_t>(i));
  }
  ASSERT_TRUE(veo->catalog().CreateTable("seed", table).ok());
}

/// One sweep iteration: fresh durable observatory + server in `wal_dir`,
/// the workload run with `spec` armed on `faulty`, then serviceability,
/// leak, and (by reopening the directory) WAL exactly-once checks.
/// Writes the clean run's op count to `ops_out`.
void RunSweepIteration(FaultInjectingTransport* faulty,
                       const TransportFaultSpec& spec, const fs::path& wal_dir,
                       uint64_t client_id, uint64_t* ops_out) {
  fs::create_directories(wal_dir);
  {
    VirtualEarthObservatory veo;
    SeedObservatory(&veo);
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_TRUE(veo.Open(wal_dir.string()).ok());
    ServerConfig config;
    config.port = 0;
    config.chunk_rows = 8;  // 12 ROWS frames per seed SELECT
    config.max_sessions = 8;
    config.lease_millis = 2'000;
    config.write_timeout_millis = 2'000;
    TeleiosServer server(&veo, config);
    ASSERT_TRUE(server.Start().ok());
    const size_t budgets_after_start = governor::AllBudgetStats().size();

    faulty->Arm(spec);
    RunChaosWorkload(server.port(), client_id, kBase);
    *ops_out = faulty->ops();
    faulty->Disarm();
    if (::testing::Test::HasFatalFailure()) return;

    // Server still serviceable after the fault, with nothing leaked:
    // no live session, no budget residue, no orphaned query entry.
    auto probe = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
    auto check =
        probe->Query(Lang::kSql, "SELECT count(*) AS n FROM chaos_t");
    ASSERT_TRUE(check.ok()) << check.status().ToString();
    EXPECT_EQ(check->Get(0, 0).AsInt64(), 4);
    ASSERT_TRUE(probe->Goodbye().ok());
    ASSERT_TRUE(Eventually([&] { return server.sessions().live() == 0; }));
    ASSERT_TRUE(Eventually([&] {
      return governor::AllBudgetStats().size() == budgets_after_start;
    }));
    EXPECT_EQ(veo.introspection().started_total(),
              veo.introspection().finished_total());
    ASSERT_TRUE(server.Shutdown().ok());
  }

  // Exactly-once, proven by WAL replay: a fresh instance recovered from
  // the directory holds each acked mutation exactly once — however many
  // times the wire died and the client retried.
  VirtualEarthObservatory recovered;
  ASSERT_TRUE(recovered.Open(wal_dir.string()).ok());
  auto rows = recovered.Sql("SELECT v FROM chaos_t ORDER BY v");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->num_rows(), 4u)
      << "retried mutations must apply exactly once";
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rows->Get(i, 0).AsInt64(), kBase + i);
  }
  fs::remove_all(wal_dir);
}

TEST_F(ChaosServerTest, KillAtEverySocketOpStaysExactlyOnce) {
  FaultInjectingTransport faulty;
  ScopedTransport scope(&faulty);

  // Probe pass: the workload through a disarmed injector, counting the
  // transport operations a clean run performs.
  TransportFaultSpec probe;
  probe.inject_at = 0;  // disarmed: count only
  uint64_t total_ops = 0;
  RunSweepIteration(&faulty, probe, dir_ / "probe", /*client_id=*/1,
                    &total_ops);
  if (::testing::Test::HasFatalFailure()) return;
  // The tentpole floor: the workload crosses >= 150 distinct fault
  // points (ISSUE acceptance).
  ASSERT_GE(total_ops, 150u);
  std::cout << "[sweep] " << total_ops << " fault points\n";

  // The sweep: for every k, a fresh run whose k-th transport op dies.
  // Fault kinds rotate so resets, torn writes, torn reads, and clean
  // disconnects all land on every path eventually.
  const TransportFaultKind kKinds[] = {
      TransportFaultKind::kIoError, TransportFaultKind::kShortWrite,
      TransportFaultKind::kShortRead, TransportFaultKind::kDisconnect};
  for (uint64_t k = 1; k <= total_ops; ++k) {
    SCOPED_TRACE("fault at op " + std::to_string(k));
    TransportFaultSpec spec;
    spec.kind = kKinds[k % 4];
    spec.inject_at = k;
    uint64_t ignored = 0;
    RunSweepIteration(&faulty, spec, dir_ / ("k" + std::to_string(k)),
                      /*client_id=*/k + 1, &ignored);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// --- 6. the reconnect storm (also the TSan leg) ---------------------------

TEST_F(ChaosServerTest, ReconnectStormAppliesEveryMutationExactlyOnce) {
  MakeSeedTable(96);
  ASSERT_TRUE(
      veo_.Sql("CREATE TABLE storm (tid INT, seq INT)").ok());
  ServerConfig config;
  config.max_sessions = 24;
  config.chunk_rows = 32;
  config.lease_millis = 5'000;
  config.write_timeout_millis = 2'000;
  StartServer(config);

  FaultInjectingTransport faulty;
  ScopedTransport scope(&faulty);
  TransportFaultSpec spec;
  spec.kind = TransportFaultKind::kDisconnect;
  spec.inject_at = 17;
  // The period must exceed the op cost of the longest single operation
  // (connect + handshake + a 5-frame streamed SELECT ≈ 16 ops): a lone
  // straggler with a shorter period would catch a fault on EVERY
  // attempt and could never finish.
  spec.every_n = 53;
  faulty.Arm(spec);

  constexpr int kThreads = 8;
  constexpr int kMutationsPerThread = 6;
  std::atomic<int> failures{0};
  std::mutex log_mu;
  std::vector<std::string> failure_log;
  auto record = [&](const std::string& what, const Status& status) {
    ++failures;
    std::lock_guard<std::mutex> hold(log_mu);
    failure_log.push_back(what + ": " + status.ToString());
  };
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ResilientClientOptions options;
      options.client.client_id = static_cast<uint64_t>(t) + 1;
      options.retry.max_attempts = 12;
      options.retry.base_backoff_ms = 1;
      options.retry.max_backoff_ms = 20;
      options.retry.decorrelated_jitter = true;
      options.retry.jitter_seed = static_cast<uint64_t>(t) + 1;
      ResilientClient rc("127.0.0.1", server_->port(), options);
      for (int i = 0; i < kMutationsPerThread; ++i) {
        auto insert = rc.Query(
            Lang::kSql, "INSERT INTO storm VALUES (" + std::to_string(t) +
                            ", " + std::to_string(i) + ")");
        if (!insert.ok()) {
          record("insert", insert.status());
          continue;
        }
        auto read = rc.Query(Lang::kSql, "SELECT x FROM seed");
        if (!read.ok()) {
          record("read", read.status());
        } else if (read->num_rows() != 96) {
          record("read", Status::DataLoss(
                             "got " + std::to_string(read->num_rows()) +
                             " rows"));
        }
      }
      Status bye = rc.Goodbye();
      (void)bye;
    });
  }
  for (auto& thread : threads) thread.join();
  faulty.Disarm();
  // The storm must actually storm — otherwise this test proves nothing.
  EXPECT_GT(faulty.faults_injected(), 5u);
  std::string sample;
  for (size_t i = 0; i < failure_log.size() && i < 4; ++i) {
    sample += "\n  " + failure_log[i];
  }
  EXPECT_EQ(failures.load(), 0) << "first failures:" << sample;

  // Every (tid, seq) exactly once despite the storm of retries.
  auto rows = veo_.Sql("SELECT count(*) AS n FROM storm");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->Get(0, 0).AsInt64(), kThreads * kMutationsPerThread);
  auto distinct = veo_.Sql(
      "SELECT tid, seq FROM storm GROUP BY tid, seq");
  ASSERT_TRUE(distinct.ok()) << distinct.status().ToString();
  EXPECT_EQ(distinct->num_rows(),
            static_cast<size_t>(kThreads * kMutationsPerThread));
  EXPECT_TRUE(Eventually([&] { return server_->sessions().live() == 0; }));
}

}  // namespace
}  // namespace teleios::server
