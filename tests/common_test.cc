#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/value.h"

namespace teleios {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("table 'x'");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "table 'x'");
  EXPECT_EQ(st.ToString(), "NotFound: table 'x'");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, GovernorCodesRoundTrip) {
  // The resource-governor codes added with the overload-protection work.
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  Status exhausted = Status::ResourceExhausted("budget refused");
  EXPECT_EQ(exhausted.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(exhausted.message(), "budget refused");
  Status shed = Status::Unavailable("shedding load");
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(shed.message(), "shedding load");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::ParseError("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> HelperReturnsEarly(bool fail) {
  TELEIOS_ASSIGN_OR_RETURN(int v, fail ? Result<int>(Status::Internal("x"))
                                       : Result<int>(7));
  return v + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*HelperReturnsEarly(false), 8);
  EXPECT_FALSE(HelperReturnsEarly(true).ok());
}

TEST(StringsTest, Split) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, SplitEmpty) {
  auto parts = StrSplit("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(StrJoin({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(StrTrim("  hello \t\n"), "hello");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(StrLower("SeLeCt"), "select");
  EXPECT_TRUE(StrEqualsIgnoreCase("WHERE", "where"));
  EXPECT_FALSE(StrEqualsIgnoreCase("WHERE", "wher"));
  EXPECT_TRUE(StrStartsWith("teleios.ter", "teleios"));
  EXPECT_TRUE(StrEndsWith("teleios.ter", ".ter"));
  EXPECT_FALSE(StrEndsWith("x", ".ter"));
}

TEST(StringsTest, ParseNumbers) {
  EXPECT_EQ(*ParseInt64("-42"), -42);
  EXPECT_FALSE(ParseInt64("4x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5e2"), 350.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StringsTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_EQ(Value(int64_t{3}).AsInt64(), 3);
  EXPECT_DOUBLE_EQ(Value(2.5).AsFloat64(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_DOUBLE_EQ(*Value(int64_t{4}).ToDouble(), 4.0);
  EXPECT_EQ(*Value(4.9).ToInt64(), 4);
  EXPECT_FALSE(Value("x").ToDouble().ok());
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value().Truthy());
  EXPECT_FALSE(Value(int64_t{0}).Truthy());
  EXPECT_TRUE(Value(int64_t{-1}).Truthy());
  EXPECT_FALSE(Value("").Truthy());
  EXPECT_TRUE(Value("x").Truthy());
}

TEST(ValueTest, CompareNumericAcrossTypes) {
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(int64_t{1}).Compare(Value(1.5)), 0);
  EXPECT_GT(Value(2.5).Compare(Value(int64_t{2})), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value().Compare(Value(int64_t{0})), 0);
  EXPECT_EQ(Value().Compare(Value()), 0);
}

TEST(ValueTest, StringCompare) {
  EXPECT_LT(Value("apple").Compare(Value("banana")), 0);
  EXPECT_EQ(Value("a").Compare(Value("a")), 0);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(int64_t{12}).ToString(), "12");
  EXPECT_EQ(Value("s").ToString(), "s");
}

TEST(LoggingTest, LevelGate) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  TELEIOS_LOG(Info) << "suppressed";
  SetLogLevel(old);
}

TEST(LoggingTest, ParseLogLevel) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("WARNING", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("  Error ", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("0", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("3", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("loud", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_EQ(level, LogLevel::kError);  // untouched on failure
}

}  // namespace
}  // namespace teleios
