#include <gtest/gtest.h>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "rdf/turtle.h"

namespace teleios::rdf {
namespace {

TEST(TermTest, Constructors) {
  Term iri = Term::Iri("http://example.org/a");
  EXPECT_TRUE(iri.IsIri());
  Term blank = Term::Blank("b0");
  EXPECT_TRUE(blank.IsBlank());
  Term lit = Term::Literal("hello", "", "en");
  EXPECT_TRUE(lit.IsLiteral());
  EXPECT_EQ(lit.lang, "en");
  EXPECT_EQ(Term::IntegerLiteral(5).datatype, kXsdInteger);
  EXPECT_EQ(Term::BooleanLiteral(true).lexical, "true");
  EXPECT_TRUE(Term::WktLiteral("POINT (1 2)").IsWkt());
}

TEST(TermTest, NTriplesRendering) {
  EXPECT_EQ(Term::Iri("http://x/a").ToNTriples(), "<http://x/a>");
  EXPECT_EQ(Term::Blank("n1").ToNTriples(), "_:n1");
  EXPECT_EQ(Term::Literal("hi").ToNTriples(), "\"hi\"");
  EXPECT_EQ(Term::Literal("hi", "", "el").ToNTriples(), "\"hi\"@el");
  EXPECT_EQ(Term::IntegerLiteral(3).ToNTriples(),
            "\"3\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  EXPECT_EQ(Term::Literal("a\"b\nc").ToNTriples(), "\"a\\\"b\\nc\"");
}

TEST(TermDictionaryTest, InternAndLookup) {
  TermDictionary dict;
  TermId a = dict.Intern(Term::Iri("http://x/a"));
  TermId b = dict.Intern(Term::Literal("a"));  // different kind, same text
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern(Term::Iri("http://x/a")), a);
  EXPECT_EQ(dict.Lookup(Term::Iri("http://x/a")), a);
  EXPECT_EQ(dict.Lookup(Term::Iri("http://x/zzz")), kNoTerm);
  EXPECT_EQ(dict.At(a).lexical, "http://x/a");
  EXPECT_EQ(dict.size(), 2);
}

class TripleStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto iri = [](const std::string& s) { return Term::Iri("http://x/" + s); };
    store_.Add(iri("s1"), iri("type"), iri("Hotspot"));
    store_.Add(iri("s2"), iri("type"), iri("Hotspot"));
    store_.Add(iri("s3"), iri("type"), iri("Town"));
    store_.Add(iri("s1"), iri("conf"), Term::DoubleLiteral(0.9));
    store_.Add(iri("s1"), iri("near"), iri("s3"));
  }

  Term Iri(const std::string& s) { return Term::Iri("http://x/" + s); }

  TripleStore store_;
};

TEST_F(TripleStoreTest, MatchBySubject) {
  auto triples = store_.Match(Iri("s1"), std::nullopt, std::nullopt);
  EXPECT_EQ(triples.size(), 3u);
}

TEST_F(TripleStoreTest, MatchByPredicate) {
  auto triples = store_.Match(std::nullopt, Iri("type"), std::nullopt);
  EXPECT_EQ(triples.size(), 3u);
}

TEST_F(TripleStoreTest, MatchByObject) {
  auto triples = store_.Match(std::nullopt, std::nullopt, Iri("Hotspot"));
  EXPECT_EQ(triples.size(), 2u);
}

TEST_F(TripleStoreTest, MatchFullyBound) {
  EXPECT_EQ(store_.Match(Iri("s1"), Iri("type"), Iri("Hotspot")).size(), 1u);
  EXPECT_EQ(store_.Match(Iri("s1"), Iri("type"), Iri("Town")).size(), 0u);
}

TEST_F(TripleStoreTest, MatchUnknownTermIsEmpty) {
  EXPECT_TRUE(store_.Match(Iri("nope"), std::nullopt, std::nullopt).empty());
}

TEST_F(TripleStoreTest, MatchAll) {
  EXPECT_EQ(store_.Match(TriplePattern{}).size(), 5u);
}

TEST_F(TripleStoreTest, DuplicatesCollapse) {
  store_.Add(Iri("s1"), Iri("type"), Iri("Hotspot"));  // duplicate
  EXPECT_EQ(store_.Match(TriplePattern{}).size(), 5u);
}

TEST_F(TripleStoreTest, Remove) {
  TriplePattern pattern;
  pattern.p = store_.dict().Lookup(Iri("type"));
  size_t removed = store_.Remove(pattern);
  EXPECT_EQ(removed, 3u);
  EXPECT_EQ(store_.Match(TriplePattern{}).size(), 2u);
}

TEST(TurtleTest, ParsePrefixesAndLists) {
  TripleStore store;
  auto added = ParseTurtle(R"(
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
# a comment
ex:fire1 a ex:Hotspot ;
    ex:confidence "0.85"^^xsd:double ;
    ex:near ex:town1, ex:town2 .
ex:town1 ex:name "Kalamata"@el .
)",
                           &store);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(*added, 5u);
  auto typed = store.Match(Term::Iri("http://example.org/fire1"),
                           Term::Iri(kRdfType), std::nullopt);
  ASSERT_EQ(typed.size(), 1u);
  auto near = store.Match(Term::Iri("http://example.org/fire1"),
                          Term::Iri("http://example.org/near"), std::nullopt);
  EXPECT_EQ(near.size(), 2u);
}

TEST(TurtleTest, ParseNumericAndBooleanShorthand) {
  TripleStore store;
  auto added = ParseTurtle(
      "@prefix ex: <http://e/> . ex:a ex:i 42 ; ex:d 3.25 ; ex:b true .",
      &store);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(*added, 3u);
  auto ints = store.Match(std::nullopt, Term::Iri("http://e/i"),
                          Term::IntegerLiteral(42));
  EXPECT_EQ(ints.size(), 1u);
}

TEST(TurtleTest, ParseTypedWktLiteral) {
  TripleStore store;
  auto added = ParseTurtle(
      "@prefix strdf: <http://strdf.di.uoa.gr/ontology#> .\n"
      "@prefix ex: <http://e/> .\n"
      "ex:a ex:geo \"POINT (21.5 37.2)\"^^strdf:WKT .",
      &store);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  auto triples = store.Match(TriplePattern{});
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_TRUE(store.dict().At(triples[0].o).IsWkt());
}

TEST(TurtleTest, ParseErrors) {
  TripleStore store;
  EXPECT_FALSE(ParseTurtle("ex:a ex:b ex:c .", &store).ok());  // no prefix
  EXPECT_FALSE(
      ParseTurtle("@prefix e: <http://e/> . e:a e:b", &store).ok());  // no dot
  EXPECT_FALSE(ParseTurtle("@prefix e: <http://e/> . \"lit\" e:b e:c .",
                           &store)
                   .ok());  // literal subject
}

TEST(TurtleTest, RoundTrip) {
  TripleStore store;
  ASSERT_TRUE(ParseTurtle(R"(
@prefix ex: <http://example.org/> .
ex:s1 a ex:Hotspot ; ex:label "fire \"A\"" ; ex:conf 0.5 .
ex:s2 ex:near ex:s1 .
)",
                          &store)
                  .ok());
  std::string turtle =
      WriteTurtle(store, {{"ex", "http://example.org/"}});
  TripleStore reloaded;
  auto added = ParseTurtle(turtle, &reloaded);
  ASSERT_TRUE(added.ok()) << turtle << "\n" << added.status().ToString();
  EXPECT_EQ(reloaded.Match(TriplePattern{}).size(),
            store.Match(TriplePattern{}).size());
}

TEST(TurtleTest, BaseResolution) {
  TripleStore store;
  auto added = ParseTurtle(
      "@base <http://base.org/> . <a> <b> <http://abs.org/c> .", &store);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  auto triples = store.Match(TriplePattern{});
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(store.dict().At(triples[0].s).lexical, "http://base.org/a");
  EXPECT_EQ(store.dict().At(triples[0].o).lexical, "http://abs.org/c");
}

/// Index-correctness sweep: Match equals a brute-force scan for every
/// pattern shape over a generated store.
class MatchSweep : public ::testing::TestWithParam<int> {};

TEST_P(MatchSweep, MatchesEqualScan) {
  int n = GetParam();
  TripleStore store;
  for (int i = 0; i < n; ++i) {
    store.Add(Term::Iri("http://x/s" + std::to_string(i % 7)),
              Term::Iri("http://x/p" + std::to_string(i % 3)),
              Term::IntegerLiteral(i % 5));
  }
  auto all = store.Match(TriplePattern{});
  TermId s = store.dict().Lookup(Term::Iri("http://x/s1"));
  TermId p = store.dict().Lookup(Term::Iri("http://x/p2"));
  TermId o = store.dict().Lookup(Term::IntegerLiteral(3));
  const TriplePattern patterns[] = {
      {s, std::nullopt, std::nullopt}, {std::nullopt, p, std::nullopt},
      {std::nullopt, std::nullopt, o}, {s, p, std::nullopt},
      {std::nullopt, p, o},            {s, p, o}};
  for (const TriplePattern& pattern : patterns) {
    if (n == 0) continue;
    size_t expected = 0;
    for (const Triple& t : all) {
      if ((!pattern.s || *pattern.s == t.s) &&
          (!pattern.p || *pattern.p == t.p) &&
          (!pattern.o || *pattern.o == t.o)) {
        ++expected;
      }
    }
    EXPECT_EQ(store.Match(pattern).size(), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatchSweep,
                         ::testing::Values(0, 1, 10, 105, 1000));

}  // namespace
}  // namespace teleios::rdf
