#include <gtest/gtest.h>

#include <cmath>

#include "geo/clip.h"
#include "geo/polygonize.h"
#include "geo/predicates.h"
#include "geo/wkt.h"

namespace teleios::geo {
namespace {

Geometry Tri(double scale) {
  Polygon p;
  p.outer = {{0, 0}, {20 * scale, 0}, {10 * scale, 18 * scale}};
  return Geometry::MakePolygon(p);
}

TEST(ClipTest, OverlappingSquares) {
  Geometry a = Geometry::MakeBox(0, 0, 10, 10);
  Geometry b = Geometry::MakeBox(5, 5, 15, 15);
  auto inter = Intersection(a, b);
  ASSERT_TRUE(inter.ok());
  EXPECT_NEAR(inter->Area(), 25.0, 1e-6);
  auto uni = Union(a, b);
  ASSERT_TRUE(uni.ok());
  EXPECT_NEAR(uni->Area(), 175.0, 1e-6);
  auto diff = Difference(a, b);
  ASSERT_TRUE(diff.ok());
  EXPECT_NEAR(diff->Area(), 75.0, 1e-6);
  // Inclusion-exclusion: |A| + |B| = |A u B| + |A n B|.
  EXPECT_NEAR(a.Area() + b.Area(), uni->Area() + inter->Area(), 1e-6);
}

TEST(ClipTest, DisjointInputs) {
  Geometry a = Geometry::MakeBox(0, 0, 1, 1);
  Geometry b = Geometry::MakeBox(5, 5, 6, 6);
  auto inter = Intersection(a, b);
  ASSERT_TRUE(inter.ok());
  EXPECT_TRUE(inter->IsEmpty());
  auto uni = Union(a, b);
  ASSERT_TRUE(uni.ok());
  EXPECT_EQ(uni->polygons().size(), 2u);
  EXPECT_NEAR(uni->Area(), 2.0, 1e-9);
  auto diff = Difference(a, b);
  ASSERT_TRUE(diff.ok());
  EXPECT_NEAR(diff->Area(), 1.0, 1e-9);
}

TEST(ClipTest, ContainedInputs) {
  Geometry big = Geometry::MakeBox(0, 0, 10, 10);
  Geometry small = Geometry::MakeBox(3, 3, 5, 5);
  auto inter = Intersection(big, small);
  ASSERT_TRUE(inter.ok());
  EXPECT_NEAR(inter->Area(), 4.0, 1e-9);
  auto uni = Union(big, small);
  ASSERT_TRUE(uni.ok());
  EXPECT_NEAR(uni->Area(), 100.0, 1e-9);
  // Hole is punched when the clip is strictly inside the subject.
  auto diff = Difference(big, small);
  ASSERT_TRUE(diff.ok());
  EXPECT_NEAR(diff->Area(), 96.0, 1e-9);
  ASSERT_EQ(diff->polygons().size(), 1u);
  EXPECT_EQ(diff->polygons()[0].holes.size(), 1u);
  // Reverse difference is empty.
  auto reverse = Difference(small, big);
  ASSERT_TRUE(reverse.ok());
  EXPECT_TRUE(reverse->IsEmpty());
}

TEST(ClipTest, TriangleClippedByBand) {
  Geometry tri = Tri(1.0);
  Geometry band = Geometry::MakeBox(-5, 5, 25, 9);
  auto inter = Intersection(tri, band);
  ASSERT_TRUE(inter.ok());
  // Trapezoid between y=5 and y=9: widths 20*(1-y/18).
  double w5 = 20.0 * (1 - 5.0 / 18.0);
  double w9 = 20.0 * (1 - 9.0 / 18.0);
  EXPECT_NEAR(inter->Area(), (w5 + w9) / 2 * 4, 1e-6);
}

TEST(ClipTest, SharedEdgeDegenerateHandled) {
  // Squares sharing a full edge: classic Greiner-Hormann degeneracy,
  // resolved by perturbation.
  Geometry a = Geometry::MakeBox(0, 0, 10, 10);
  Geometry b = Geometry::MakeBox(10, 0, 20, 10);
  auto uni = Union(a, b);
  ASSERT_TRUE(uni.ok());
  EXPECT_NEAR(uni->Area(), 200.0, 0.01);
  auto inter = Intersection(a, b);
  ASSERT_TRUE(inter.ok());
  EXPECT_NEAR(inter->Area(), 0.0, 0.01);
}

TEST(ClipTest, SharedCornerDegenerateHandled) {
  Geometry a = Geometry::MakeBox(0, 0, 10, 10);
  Geometry b = Geometry::MakeBox(10, 10, 20, 20);
  auto diff = Difference(a, b);
  ASSERT_TRUE(diff.ok());
  EXPECT_NEAR(diff->Area(), 100.0, 0.01);
}

TEST(ClipTest, DifferenceSplitsIntoParts) {
  // A horizontal bar cuts the square into top and bottom halves.
  Geometry square = Geometry::MakeBox(0, 0, 10, 10);
  Geometry bar = Geometry::MakeBox(-1, 4, 11, 6);
  auto diff = Difference(square, bar);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->polygons().size(), 2u);
  EXPECT_NEAR(diff->Area(), 80.0, 1e-6);
}

TEST(ClipTest, MultiPolygonClip) {
  Geometry two = Geometry::MakeMultiPolygon(
      {{{{0, 0}, {4, 0}, {4, 4}, {0, 4}}, {}},
       {{{10, 0}, {14, 0}, {14, 4}, {10, 4}}, {}}});
  Geometry band = Geometry::MakeBox(2, -1, 12, 5);
  auto inter = Intersection(two, band);
  ASSERT_TRUE(inter.ok());
  EXPECT_NEAR(inter->Area(), 2 * 4 + 2 * 4, 1e-6);
  auto diff = Difference(two, band);
  ASSERT_TRUE(diff.ok());
  EXPECT_NEAR(diff->Area(), 2 * 4 + 2 * 4, 1e-6);
}

TEST(ClipTest, SubjectHolePreservedInDifference) {
  Polygon donut;
  donut.outer = {{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  donut.holes.push_back({{4, 4}, {6, 4}, {6, 6}, {4, 6}});
  Geometry subject = Geometry::MakePolygon(donut);  // area 96
  Geometry clip = Geometry::MakeBox(8, -1, 12, 11);
  auto diff = Difference(subject, clip);
  ASSERT_TRUE(diff.ok());
  // Removes the 2x10 right strip (hole untouched): 96 - 20 = 76.
  EXPECT_NEAR(diff->Area(), 76.0, 1e-6);
}

TEST(ClipTest, RejectsNonPolygonInputs) {
  Geometry point = Geometry::MakePoint(1, 1);
  Geometry box = Geometry::MakeBox(0, 0, 1, 1);
  EXPECT_FALSE(Intersection(point, box).ok());
  EXPECT_FALSE(Union(box, point).ok());
}

/// Property sweep: inclusion-exclusion and containment invariants hold
/// for a grid of offset box pairs.
class BooleanSweep : public ::testing::TestWithParam<double> {};

TEST_P(BooleanSweep, InclusionExclusionHolds) {
  double offset = GetParam();
  Geometry a = Geometry::MakeBox(0, 0, 10, 10);
  Geometry b = Geometry::MakeBox(offset, offset / 2, offset + 8, offset / 2 + 8);
  auto inter = Intersection(a, b);
  auto uni = Union(a, b);
  auto diff = Difference(a, b);
  ASSERT_TRUE(inter.ok());
  ASSERT_TRUE(uni.ok());
  ASSERT_TRUE(diff.ok());
  EXPECT_NEAR(a.Area() + b.Area(), uni->Area() + inter->Area(), 0.02);
  EXPECT_NEAR(diff->Area(), a.Area() - inter->Area(), 0.02);
  // The difference never intersects the clip interior (sample check).
  if (!diff->IsEmpty() && !inter->IsEmpty()) {
    Point c = inter->Centroid();
    for (const Polygon& p : diff->polygons()) {
      // Centroid of the intersection should not be strictly inside any
      // difference part (it belongs to A n B).
      bool inside =
          PointInPolygon(c, p) &&
          Distance(Geometry::MakePoint(c.x, c.y),
                   Geometry::MakePolygon(p)) == 0.0;
      if (inside) {
        // Allowed only on a shared boundary: distance to boundary ~ 0.
        double d = 1e9;
        const Ring& ring = p.outer;
        for (size_t i = 0; i < ring.size(); ++i) {
          d = std::min(d, PointSegmentDistance(
                              c, ring[i], ring[(i + 1) % ring.size()]));
        }
        EXPECT_LT(d, 0.05);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, BooleanSweep,
                         ::testing::Values(1.0, 3.0, 5.0, 7.5, 9.0, 11.0));

TEST(ClipTest, DifferenceWithHoledClipKeepsHoleContent) {
  Geometry subject = Geometry::MakeBox(0, 0, 10, 10);  // area 100
  Polygon donut;
  donut.outer = {{2, 2}, {8, 2}, {8, 8}, {2, 8}};
  donut.holes.push_back({{4, 4}, {6, 4}, {6, 6}, {4, 6}});
  Geometry clip = Geometry::MakePolygon(donut);  // area 32
  auto diff = Difference(subject, clip);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  // 100 - 36 (outer) + 4 (hole content kept) = 68.
  EXPECT_NEAR(diff->Area(), 68.0, 1e-6);
}

/// Cross-module ground-truth property: polygonize two random binary
/// masks, run the Greiner-Hormann boolean ops on the resulting
/// (multi)polygons, and compare the areas against direct cell counting.
/// Exercises polygonization, hole attachment, multipolygon boolean ops
/// and the degeneracy perturbation (rectilinear inputs share edges
/// constantly) in one invariant.
class MaskBooleanSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaskBooleanSweep, AreasMatchCellCounts) {
  const int w = 12, h = 10;
  uint64_t state = GetParam();
  auto next = [&]() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  };
  // Blobby masks: seed a few rectangles to get connected regions with
  // occasional holes.
  auto make_mask = [&]() {
    std::vector<uint8_t> mask(static_cast<size_t>(w) * h, 0);
    for (int blob = 0; blob < 3; ++blob) {
      int x0 = static_cast<int>(next() % (w - 3));
      int y0 = static_cast<int>(next() % (h - 3));
      int bw = 2 + static_cast<int>(next() % 5);
      int bh = 2 + static_cast<int>(next() % 4);
      for (int y = y0; y < std::min(y0 + bh, h); ++y) {
        for (int x = x0; x < std::min(x0 + bw, w); ++x) {
          mask[static_cast<size_t>(y) * w + x] = 1;
        }
      }
    }
    // Punch a hole sometimes.
    if (next() % 2 == 0) {
      int x = 1 + static_cast<int>(next() % (w - 2));
      int y = 1 + static_cast<int>(next() % (h - 2));
      mask[static_cast<size_t>(y) * w + x] = 0;
    }
    return mask;
  };
  std::vector<uint8_t> ma = make_mask();
  std::vector<uint8_t> mb = make_mask();
  Geometry ga = Geometry::MakeMultiPolygon(PolygonizeMask(ma, w, h));
  Geometry gb = Geometry::MakeMultiPolygon(PolygonizeMask(mb, w, h));
  if (ga.IsEmpty() || gb.IsEmpty()) return;

  double cells_a = 0, cells_b = 0, cells_and = 0, cells_diff = 0;
  for (size_t i = 0; i < ma.size(); ++i) {
    cells_a += ma[i];
    cells_b += mb[i];
    cells_and += ma[i] && mb[i];
    cells_diff += ma[i] && !mb[i];
  }
  EXPECT_NEAR(ga.Area(), cells_a, 1e-6);
  EXPECT_NEAR(gb.Area(), cells_b, 1e-6);

  auto inter = Intersection(ga, gb);
  ASSERT_TRUE(inter.ok()) << inter.status().ToString();
  EXPECT_NEAR(inter->Area(), cells_and, 0.02 * ma.size() / 100.0 + 0.01);
  auto diff = Difference(ga, gb);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  EXPECT_NEAR(diff->Area(), cells_diff, 0.02 * ma.size() / 100.0 + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskBooleanSweep,
                         ::testing::Values(11u, 23u, 47u, 91u, 137u, 251u,
                                           509u, 1021u));

/// Rotated (non-axis-aligned) polygon sweep.
class RotatedSweep : public ::testing::TestWithParam<double> {};

TEST_P(RotatedSweep, RotatedSquareIntersection) {
  double angle = GetParam();
  // Square of side 10 centered at (5,5), rotated by `angle`.
  Polygon rot;
  for (int k = 0; k < 4; ++k) {
    double t = angle + k * M_PI / 2;
    rot.outer.push_back(
        {5 + 7.0710678 * std::cos(t + M_PI / 4),
         5 + 7.0710678 * std::sin(t + M_PI / 4)});
  }
  Geometry rotated = Geometry::MakePolygon(rot);
  Geometry fixed = Geometry::MakeBox(0, 0, 10, 10);
  auto inter = Intersection(fixed, rotated);
  ASSERT_TRUE(inter.ok());
  // Intersection is at most either input and at least 40% of the square.
  EXPECT_LE(inter->Area(), 100.0 + 0.1);
  EXPECT_GT(inter->Area(), 40.0);
}

INSTANTIATE_TEST_SUITE_P(Angles, RotatedSweep,
                         ::testing::Values(0.1, 0.35, 0.6, 1.1, 1.4));

}  // namespace
}  // namespace teleios::geo
