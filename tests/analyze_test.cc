// Tests for tools/teleios_analyze: each fixture tree under
// tests/analyze_fixtures/ is a miniature source layout exhibiting (or
// deliberately avoiding) exactly one class of cross-file violation; the
// tests assert the exact rule IDs and file:line witnesses, not just
// finding counts, so a regression that reports the right number of
// wrong findings still fails.

#include "analyze.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace teleios::analyze {
namespace {

namespace fs = std::filesystem;

std::string ReadFileOrDie(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Loads fixture tree `name`: every *.h / *.cc sorted by relative path,
/// plus its layers.txt.
struct Tree {
  std::vector<SourceFile> files;
  LayerSpec layers;
};

Tree LoadTree(const std::string& name) {
  Tree tree;
  fs::path root = fs::path(TELEIOS_ANALYZE_FIXTURE_DIR) / name;
  EXPECT_TRUE(fs::is_directory(root)) << root;
  for (auto it = fs::recursive_directory_iterator(root);
       it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    fs::path p = it->path();
    if (p.extension() != ".h" && p.extension() != ".cc") continue;
    tree.files.push_back(
        {fs::relative(p, root).generic_string(), ReadFileOrDie(p)});
  }
  std::sort(tree.files.begin(), tree.files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  LayerSpecParse parsed = ParseLayerSpec(ReadFileOrDie(root / "layers.txt"));
  EXPECT_TRUE(parsed.ok) << parsed.error;
  tree.layers = parsed.spec;
  return tree;
}

std::vector<std::string> RuleIds(const Analysis& analysis) {
  std::vector<std::string> out;
  for (const Finding& f : analysis.findings) out.push_back(f.rule);
  return out;
}

bool HasWitness(const Finding& f, const std::string& file, int line) {
  for (const Site& s : f.witness) {
    if (s.file == file && s.line == line) return true;
  }
  return false;
}

TEST(AnalyzeCycleTest, CycleTreeReportsTa001WithCrossFileWitness) {
  Tree tree = LoadTree("cycle_tree");
  Analysis analysis = Analyze(tree.files, tree.layers, Options{});
  ASSERT_EQ(RuleIds(analysis), std::vector<std::string>{"TA001"});
  const Finding& f = analysis.findings[0];
  EXPECT_NE(f.message.find("Node::mu_"), std::string::npos) << f.message;
  EXPECT_NE(f.message.find("Peer::nu_"), std::string::npos) << f.message;
  // The witness must span both translation units: the acquisition in
  // node.cc AND the opposite-order acquisition in peer.cc.
  EXPECT_TRUE(HasWitness(f, "core/node.cc", 4));
  EXPECT_TRUE(HasWitness(f, "core/peer.cc", 4));
}

TEST(AnalyzeCycleTest, EdgesCarryDirectedWitnessChains) {
  Tree tree = LoadTree("cycle_tree");
  Analysis analysis = Analyze(tree.files, tree.layers, Options{});
  ASSERT_EQ(analysis.edges.size(), 2u);
  std::set<std::pair<std::string, std::string>> pairs;
  for (const EdgeInfo& e : analysis.edges) pairs.insert({e.from, e.to});
  EXPECT_TRUE(pairs.count({"Node::mu_", "Peer::nu_"}));
  EXPECT_TRUE(pairs.count({"Peer::nu_", "Node::mu_"}));
  for (const EdgeInfo& e : analysis.edges) {
    ASSERT_FALSE(e.witness.empty());
    // First witness site is where the `from` mutex was taken.
    EXPECT_EQ(e.witness.front().file,
              e.from == "Node::mu_" ? "core/node.cc" : "core/peer.cc");
  }
}

TEST(AnalyzeCycleTest, DisablingLockOrderSkipsTa001) {
  Tree tree = LoadTree("cycle_tree");
  Options options;
  options.lock_order = false;
  Analysis analysis = Analyze(tree.files, tree.layers, options);
  EXPECT_TRUE(analysis.findings.empty());
}

TEST(AnalyzeLayeringTest, LayeringTreeReportsEachRuleExactlyOnce) {
  Tree tree = LoadTree("layering_tree");
  Analysis analysis = Analyze(tree.files, tree.layers, Options{});
  ASSERT_EQ(RuleIds(analysis),
            (std::vector<std::string>{"TA002", "TA003", "TA004"}));

  const Finding& inversion = analysis.findings[0];
  EXPECT_TRUE(HasWitness(inversion, "base/bad.cc", 2));
  EXPECT_NE(inversion.message.find("top/api.h"), std::string::npos);

  const Finding& peer = analysis.findings[1];
  EXPECT_TRUE(HasWitness(peer, "peer1/p1.cc", 1));
  EXPECT_NE(peer.message.find("peer2"), std::string::npos);

  const Finding& undeclared = analysis.findings[2];
  EXPECT_TRUE(HasWitness(undeclared, "rogue/r.cc", 1));
  EXPECT_NE(undeclared.message.find("rogue"), std::string::npos);
}

TEST(AnalyzeLayeringTest, AllowEdgePermitsPeerInclude) {
  Tree tree = LoadTree("layering_tree");
  tree.layers.allowed.insert({"peer1", "peer2"});
  Analysis analysis = Analyze(tree.files, tree.layers, Options{});
  ASSERT_EQ(RuleIds(analysis),
            (std::vector<std::string>{"TA002", "TA004"}));
}

TEST(AnalyzeLayeringTest, DisablingLayeringSkipsAllLayerRules) {
  Tree tree = LoadTree("layering_tree");
  Options options;
  options.layering = false;
  Analysis analysis = Analyze(tree.files, tree.layers, options);
  EXPECT_TRUE(analysis.findings.empty());
}

TEST(AnalyzeCleanTest, CleanTreeHasNoFindings) {
  Tree tree = LoadTree("clean_tree");
  Analysis analysis = Analyze(tree.files, tree.layers, Options{});
  EXPECT_TRUE(analysis.findings.empty());
  EXPECT_EQ(analysis.stats.lock_sites, 2u);
}

TEST(AnalyzeCleanTest, RequiresAnnotationSeedsHeldSet) {
  // Engine::Step acquires b_ under TELEIOS_REQUIRES(a_); the a_ -> b_
  // edge exists only if the annotation seeded the held-set.
  Tree tree = LoadTree("clean_tree");
  Analysis analysis = Analyze(tree.files, tree.layers, Options{});
  ASSERT_EQ(analysis.edges.size(), 1u);
  EXPECT_EQ(analysis.edges[0].from, "Engine::a_");
  EXPECT_EQ(analysis.edges[0].to, "Engine::b_");
}

TEST(LayerSpecTest, ParsesLayersCommentsAndAllows) {
  LayerSpecParse parsed = ParseLayerSpec(
      "# comment\n"
      "layer base\n"
      "layer left right  # peers\n"
      "allow left right\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.spec.rank.at("base"), 0);
  EXPECT_EQ(parsed.spec.rank.at("left"), 1);
  EXPECT_EQ(parsed.spec.rank.at("right"), 1);
  EXPECT_TRUE(parsed.spec.allowed.count({"left", "right"}));
}

TEST(LayerSpecTest, RejectsDuplicateDirectory) {
  LayerSpecParse parsed = ParseLayerSpec("layer a\nlayer a b\n");
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("'a'"), std::string::npos) << parsed.error;
}

TEST(LayerSpecTest, RejectsUnknownDirective) {
  LayerSpecParse parsed = ParseLayerSpec("tier a\n");
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("tier"), std::string::npos) << parsed.error;
}

TEST(LayerSpecTest, RejectsEmptyLayerLine) {
  LayerSpecParse parsed = ParseLayerSpec("layer\n");
  EXPECT_FALSE(parsed.ok);
}

TEST(LayerSpecTest, RejectsMalformedAllow) {
  LayerSpecParse parsed = ParseLayerSpec("layer a b\nallow a\n");
  EXPECT_FALSE(parsed.ok);
}

}  // namespace
}  // namespace teleios::analyze
