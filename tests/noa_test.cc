#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "eo/ontology.h"
#include "eo/scene.h"
#include "linkeddata/generators.h"
#include "geo/predicates.h"
#include "noa/burned_area.h"
#include "noa/chain.h"
#include "noa/classification.h"
#include "noa/hotspot.h"
#include "noa/mapping.h"
#include "noa/refinement.h"
#include "obs/metrics.h"
#include "vault/formats.h"

namespace teleios::noa {
namespace {

namespace fs = std::filesystem;

eo::Scene TestScene(uint64_t seed = 42, int size = 96) {
  eo::SceneSpec spec;
  spec.width = size;
  spec.height = size;
  spec.seed = seed;
  spec.num_fires = 4;
  auto scene = eo::GenerateScene(spec);
  EXPECT_TRUE(scene.ok());
  return *scene;
}

TEST(ClassificationTest, ThresholdFindsSeededFires) {
  eo::Scene scene = TestScene();
  ClassifierConfig config;
  config.kind = ClassifierKind::kThreshold;
  auto mask = ClassifyFirePixels(scene, config);
  ASSERT_TRUE(mask.ok());
  PixelScore score = ScoreMask(scene, *mask);
  EXPECT_GT(score.true_positive, 0);
  EXPECT_GT(score.Recall(), 0.3);
}

TEST(ClassificationTest, ContextualBeatsThresholdOnPrecision) {
  eo::Scene scene = TestScene();
  ClassifierConfig threshold;
  threshold.kind = ClassifierKind::kThreshold;
  threshold.threshold_kelvin = 312.0;  // aggressive: many false alarms
  ClassifierConfig contextual;
  contextual.kind = ClassifierKind::kContextual;
  auto mask_t = ClassifyFirePixels(scene, threshold);
  auto mask_c = ClassifyFirePixels(scene, contextual);
  ASSERT_TRUE(mask_t.ok());
  ASSERT_TRUE(mask_c.ok());
  PixelScore st = ScoreMask(scene, *mask_t);
  PixelScore sc = ScoreMask(scene, *mask_c);
  EXPECT_GE(sc.Precision(), st.Precision());
  EXPECT_GT(sc.F1(), 0.3);
}

TEST(ComponentsTest, LabelsConnectedRegions) {
  // Two components: an L and a separate dot.
  std::vector<uint8_t> mask = {
      1, 1, 0, 0,
      1, 0, 0, 1,
      0, 0, 0, 0,
  };
  std::vector<int32_t> labels;
  size_t count = LabelComponents(mask, 4, 3, &labels);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[4]);
  EXPECT_NE(labels[0], labels[7]);
  EXPECT_EQ(labels[2], 0);
}

TEST(HotspotTest, ExtractGeoreferencesPolygons) {
  eo::Scene scene = TestScene();
  ClassifierConfig config;
  config.kind = ClassifierKind::kContextual;
  auto mask = ClassifyFirePixels(scene, config);
  ASSERT_TRUE(mask.ok());
  auto hotspots = ExtractHotspots(scene, *mask, 1);
  ASSERT_TRUE(hotspots.ok());
  ASSERT_GT(hotspots->size(), 0u);
  geo::Envelope footprint{scene.spec.lon_min, scene.spec.lat_min,
                          scene.spec.lon_max, scene.spec.lat_max};
  for (const Hotspot& h : *hotspots) {
    EXPECT_FALSE(h.geometry.IsEmpty());
    EXPECT_GT(h.pixel_count, 0);
    EXPECT_GT(h.max_t39, 300.0);
    EXPECT_GT(h.confidence, 0.0);
    EXPECT_TRUE(footprint.Contains(h.geometry.GetEnvelope().Center()));
  }
}

TEST(HotspotTest, MinPixelsFilters) {
  eo::Scene scene = TestScene();
  ClassifierConfig config;
  config.kind = ClassifierKind::kContextual;
  auto mask = ClassifyFirePixels(scene, config);
  ASSERT_TRUE(mask.ok());
  auto all = ExtractHotspots(scene, *mask, 1);
  auto big = ExtractHotspots(scene, *mask, 5);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_LE(big->size(), all->size());
}

TEST(HotspotTest, VecRoundTrip) {
  eo::Scene scene = TestScene();
  ClassifierConfig config;
  config.kind = ClassifierKind::kContextual;
  auto mask = ClassifyFirePixels(scene, config);
  auto hotspots = ExtractHotspots(scene, *mask, 1);
  ASSERT_TRUE(hotspots.ok());
  vault::VecFile vec = HotspotsToVec(*hotspots, "test-product");
  auto back = HotspotsFromVec(vec);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), hotspots->size());
  for (size_t i = 0; i < back->size(); ++i) {
    EXPECT_EQ((*back)[i].pixel_count, (*hotspots)[i].pixel_count);
    EXPECT_NEAR((*back)[i].confidence, (*hotspots)[i].confidence, 1e-3);
  }
}

class ChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("noa_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    scene_ = TestScene();
    ASSERT_TRUE(vault::WriteTer(scene_.ToTerRaster(),
                                (dir_ / "scene.ter").string())
                    .ok());
    vault_ = std::make_unique<vault::DataVault>(&catalog_);
    ASSERT_TRUE(vault_->Attach(dir_.string()).ok());
    sciql_ = std::make_unique<sciql::SciQlEngine>(&catalog_);
    ASSERT_TRUE(strabon_.LoadTurtle(eo::OntologyTurtle()).ok());
    chain_ = std::make_unique<ProcessingChain>(vault_.get(), sciql_.get(),
                                               &strabon_, &catalog_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  eo::Scene scene_;
  storage::Catalog catalog_;
  std::unique_ptr<vault::DataVault> vault_;
  std::unique_ptr<sciql::SciQlEngine> sciql_;
  strabon::Strabon strabon_;
  std::unique_ptr<ProcessingChain> chain_;
};

TEST_F(ChainTest, EndToEndRun) {
  ChainConfig config;
  config.classifier.kind = ClassifierKind::kContextual;
  config.output_dir = dir_.string();
  auto result = chain_->Run("MSG2-SEVIRI-scene", config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->hotspots.size(), 0u);
  EXPECT_EQ(result->timings.size(), 4u);
  EXPECT_FALSE(result->vec_path.empty());
  EXPECT_TRUE(fs::exists(result->vec_path));
  // The L2 product is in the relational catalog...
  auto products = catalog_.GetTable("products");
  ASSERT_TRUE(products.ok());
  EXPECT_EQ((*products)->num_rows(), 1u);
  // ...and its hotspots are queryable in Strabon.
  auto found = strabon_.Select(
      "SELECT ?h WHERE { ?h a noa:Hotspot ; noa:hasGeometry ?g }");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->rows.size(), result->hotspots.size());
}

TEST_F(ChainTest, HotspotsCarryValidTimePeriods) {
  ChainConfig config;
  config.classifier.kind = ClassifierKind::kContextual;
  auto result = chain_->Run("MSG2-SEVIRI-scene", config);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->hotspots.size(), 0u);
  // Temporal stSPARQL: hotspots whose valid time lies within Aug 25.
  auto found = strabon_.Select(
      "SELECT ?h WHERE { ?h a noa:Hotspot ; noa:hasValidTime ?vt . "
      "FILTER(strdf:during(?vt, \"[2007-08-25T00:00:00, "
      "2007-08-25T23:59:59]\"^^strdf:period)) }");
  ASSERT_TRUE(found.ok()) << found.status().ToString();
  EXPECT_EQ(found->rows.size(), result->hotspots.size());
}

TEST_F(ChainTest, AggregateHotspotsPerProduct) {
  ChainConfig a;
  a.classifier.kind = ClassifierKind::kThreshold;
  a.classifier.threshold_kelvin = 315.0;
  ChainConfig b;
  b.classifier.kind = ClassifierKind::kContextual;
  auto ra = chain_->Run("MSG2-SEVIRI-scene", a);
  auto rb = chain_->Run("MSG2-SEVIRI-scene", b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  // SPARQL aggregation: hotspots per product.
  auto counts = strabon_.Select(
      "SELECT ?p (count(*) AS ?n) WHERE { ?h a noa:Hotspot ; "
      "noa:derivedFromProduct ?p } GROUP BY ?p ORDER BY ?p");
  ASSERT_TRUE(counts.ok()) << counts.status().ToString();
  ASSERT_EQ(counts->rows.size(), 2u);
  const auto& dict = strabon_.store().dict();
  int64_t total = 0;
  for (const auto& row : counts->rows) {
    total += std::stoll(dict.At(row[1]).lexical);
  }
  EXPECT_EQ(total, static_cast<int64_t>(ra->hotspots.size() +
                                        rb->hotspots.size()));
}

TEST_F(ChainTest, SciQlStatementIsReal) {
  ChainConfig config;
  config.classifier.kind = ClassifierKind::kThreshold;
  std::string stmt =
      ProcessingChain::ClassificationSciQl("MSG2-SEVIRI-scene", config);
  EXPECT_NE(stmt.find("SELECT y, x FROM \"MSG2-SEVIRI-scene\""),
            std::string::npos);
  auto result = chain_->Run("MSG2-SEVIRI-scene", config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->sciql.size(), 1u);
}

TEST_F(ChainTest, CropRestrictsHotspots) {
  ChainConfig full;
  full.classifier.kind = ClassifierKind::kContextual;
  auto all = chain_->Run("MSG2-SEVIRI-scene", full);
  ASSERT_TRUE(all.ok());
  ASSERT_GT(all->hotspots.size(), 0u);
  // Crop to a corner that excludes at least one hotspot.
  ChainConfig cropped = full;
  cropped.has_crop = true;
  cropped.crop_x0 = 0;
  cropped.crop_y0 = 0;
  cropped.crop_x1 = scene_.spec.width / 2;
  cropped.crop_y1 = scene_.spec.height / 2;
  // Re-run under a new product id by using the other classifier name.
  auto partial = chain_->Run("MSG2-SEVIRI-scene", cropped);
  // Second run with same product id: product row appended, fine.
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_LE(partial->hotspots.size(), all->hotspots.size());
}

TEST_F(ChainTest, TwoClassifiersProduceComparableProducts) {
  ChainConfig a;
  a.classifier.kind = ClassifierKind::kThreshold;
  a.classifier.threshold_kelvin = 312.0;
  ChainConfig b;
  b.classifier.kind = ClassifierKind::kContextual;
  auto ra = chain_->Run("MSG2-SEVIRI-scene", a);
  auto rb = chain_->Run("MSG2-SEVIRI-scene", b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_NE(ra->product_id, rb->product_id);
  // Scenario 1's comparison: catalog lets the user search prior runs.
  auto products = catalog_.GetTable("products");
  ASSERT_TRUE(products.ok());
  EXPECT_EQ((*products)->num_rows(), 2u);
}

TEST_F(ChainTest, BatchCompletesPastCorruptProduct) {
  // A second attached scene whose payload gets corrupted on disk: the
  // batch must finish the healthy product, record the failure, and count
  // it in teleios_noa_products_failed_total.
  eo::Scene second = TestScene(7);
  vault::TerRaster r = second.ToTerRaster();
  r.name = "scene-b";
  std::string bad_path = (dir_ / "zz_b.ter").string();
  ASSERT_TRUE(vault::WriteTer(r, bad_path).ok());
  ASSERT_TRUE(vault_->AttachFile(bad_path).ok());
  {
    std::fstream f(bad_path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(-5, std::ios::end);
    char c;
    f.get(c);
    f.seekp(-5, std::ios::end);
    f.put(static_cast<char>(c ^ 0x08));
  }
  uint64_t failed_before = obs::MetricsRegistry::Global()
                               .GetCounter("teleios_noa_products_failed_total")
                               ->value();

  ChainConfig config;
  config.classifier.kind = ClassifierKind::kContextual;
  config.output_dir = dir_.string();
  auto batch = chain_->RunBatch({"MSG2-SEVIRI-scene", "scene-b"}, config);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->product_ids.size(), 1u);
  EXPECT_NE(batch->product_ids[0].find("MSG2-SEVIRI-scene"),
            std::string::npos);
  ASSERT_EQ(batch->failures.size(), 1u);
  EXPECT_EQ(batch->failures[0].raster, "scene-b");
  EXPECT_EQ(batch->failures[0].status.code(), StatusCode::kDataLoss);
  EXPECT_GT(batch->hotspots.size(), 0u);
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetCounter("teleios_noa_products_failed_total")
                ->value(),
            failed_before + 1);
  // The healthy product made it into the catalog; the corrupt one did not.
  auto products = catalog_.GetTable("products");
  ASSERT_TRUE(products.ok());
  EXPECT_EQ((*products)->num_rows(), 1u);
}

class RefinementTest : public ChainTest {
 protected:
  void SetUp() override {
    ChainTest::SetUp();
    // Load coastline so the sea geometry exists.
    auto coast = linkeddata::GenerateCoastline(scene_);
    ASSERT_TRUE(coast.ok()) << coast.status().ToString();
    ASSERT_TRUE(strabon_.LoadTurtle(*coast).ok());
    // Produce hotspots with the naive classifier (sea leakage likely).
    ChainConfig config;
    config.classifier.kind = ClassifierKind::kThreshold;
    config.classifier.threshold_kelvin = 315.0;
    auto result = chain_->Run("MSG2-SEVIRI-scene", config);
    ASSERT_TRUE(result.ok());
    product_id_ = result->product_id;
    hotspot_count_ = result->hotspots.size();
  }

  std::string product_id_;
  size_t hotspot_count_ = 0;
};

TEST_F(RefinementTest, RefinementRunsAndReports) {
  auto report = RefineHotspots(&strabon_, product_id_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->hotspots_examined, hotspot_count_);
  EXPECT_EQ(report->statements.size(), 2u);
  EXPECT_NE(report->statements[0].find("strdf:difference"),
            std::string::npos);
  EXPECT_GE(report->area_removed, 0.0);
}

TEST_F(RefinementTest, ThematicAccuracyDoesNotDegrade) {
  auto before = FetchHotspotGeometries(&strabon_, product_id_);
  ASSERT_TRUE(before.ok());
  auto acc_before =
      ScoreHotspotsAgainstTruth(*before, scene_.GroundTruthFires());
  ASSERT_TRUE(acc_before.ok());
  auto report = RefineHotspots(&strabon_, product_id_);
  ASSERT_TRUE(report.ok());
  auto after = FetchHotspotGeometries(&strabon_, product_id_);
  ASSERT_TRUE(after.ok());
  auto acc_after =
      ScoreHotspotsAgainstTruth(*after, scene_.GroundTruthFires());
  ASSERT_TRUE(acc_after.ok());
  // Clipping to land can only remove non-fire (sea) area, so precision
  // must not drop.
  EXPECT_GE(acc_after->precision + 1e-9, acc_before->precision);
}

TEST_F(RefinementTest, RequiresCoastlineLayer) {
  strabon::Strabon empty;
  EXPECT_FALSE(RefineHotspots(&empty, product_id_).ok());
}

TEST_F(RefinementTest, RapidMapRendersAllLayers) {
  auto towns = linkeddata::GenerateTowns(scene_, 5, 1);
  ASSERT_TRUE(towns.ok());
  ASSERT_TRUE(strabon_.LoadTurtle(*towns).ok());
  RapidMapper mapper(&strabon_);
  ASSERT_TRUE(mapper
                  .AddQueryLayer("land", "#88aa66", '.',
                                 "SELECT ?g WHERE { ?x a noa:LandArea ; "
                                 "noa:hasGeometry ?g }")
                  .ok());
  ASSERT_TRUE(mapper
                  .AddQueryLayer(
                      "hotspots", "#dd2200", '#',
                      "SELECT ?g WHERE { ?h a noa:Hotspot ; "
                      "noa:hasGeometry ?g }")
                  .ok());
  ASSERT_TRUE(
      mapper
          .AddQueryLayer("towns", "#2244cc", 'o',
                         "PREFIX geonames: <http://www.geonames.org/"
                         "ontology#> SELECT ?g ?n WHERE { ?t a "
                         "geonames:Feature ; strdf:hasGeometry ?g ; "
                         "geonames:name ?n }")
          .ok());
  EXPECT_EQ(mapper.layers().size(), 3u);
  std::string svg = mapper.RenderSvg();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("hotspots"), std::string::npos);
  std::string ascii = mapper.RenderAscii(40, 20);
  EXPECT_NE(ascii.find('o'), std::string::npos);
  EXPECT_NE(ascii.find('.'), std::string::npos);
}

TEST_F(ChainTest, BurnedAreaAggregatesWindow) {
  ChainConfig config;
  config.classifier.kind = ClassifierKind::kContextual;
  auto result = chain_->Run("MSG2-SEVIRI-scene", config);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->hotspots.size(), 0u);
  int64_t t = scene_.spec.acquisition_time;
  auto burned = MapBurnedArea(&strabon_, "aug25", t - 3600, t + 3600);
  ASSERT_TRUE(burned.ok()) << burned.status().ToString();
  EXPECT_EQ(burned->hotspots_merged, result->hotspots.size());
  EXPECT_GT(burned->area, 0.0);
  // Each hotspot footprint lies within the dissolved burned area.
  for (const Hotspot& h : result->hotspots) {
    EXPECT_TRUE(geo::Intersects(burned->geometry, h.geometry));
  }
  // The product is queryable, typed, timed and with provenance.
  auto found = strabon_.Select(
      "SELECT ?b ?p WHERE { ?b a noa:BurnedArea ; noa:hasValidTime ?vt ; "
      "noa:derivedFromProduct ?p . }");
  ASSERT_TRUE(found.ok()) << found.status().ToString();
  EXPECT_EQ(found->rows.size(), 1u);
}

TEST_F(ChainTest, BurnedAreaEmptyWindow) {
  ChainConfig config;
  config.classifier.kind = ClassifierKind::kContextual;
  ASSERT_TRUE(chain_->Run("MSG2-SEVIRI-scene", config).ok());
  // A window a year earlier matches nothing.
  int64_t t = scene_.spec.acquisition_time - 365 * 86400;
  auto burned = MapBurnedArea(&strabon_, "empty", t, t + 3600);
  ASSERT_TRUE(burned.ok()) << burned.status().ToString();
  EXPECT_EQ(burned->hotspots_merged, 0u);
  EXPECT_TRUE(burned->geometry.IsEmpty());
  EXPECT_FALSE(
      MapBurnedArea(&strabon_, "bad", t + 10, t).ok());  // inverted window
}

TEST(LinkedDataTest, GeneratorsEmitParseableTurtle) {
  eo::Scene scene = TestScene(5, 64);
  strabon::Strabon strabon;
  auto towns = linkeddata::GenerateTowns(scene, 8, 2);
  ASSERT_TRUE(towns.ok());
  ASSERT_TRUE(strabon.LoadTurtle(*towns).ok());
  auto sites = linkeddata::GenerateArchaeologicalSites(scene, 5, 2);
  ASSERT_TRUE(sites.ok());
  ASSERT_TRUE(strabon.LoadTurtle(*sites).ok());
  auto roads = linkeddata::GenerateRoads(scene, 6, 2);
  ASSERT_TRUE(roads.ok());
  ASSERT_TRUE(strabon.LoadTurtle(*roads).ok());
  auto landcover = linkeddata::GenerateLandCover(scene, 16);
  ASSERT_TRUE(landcover.ok());
  ASSERT_TRUE(strabon.LoadTurtle(*landcover).ok());
  auto count = strabon.Select("SELECT ?s WHERE { ?s ?p ?o }");
  ASSERT_TRUE(count.ok());
  EXPECT_GT(count->rows.size(), 50u);
  // Towns landed on land pixels.
  auto town_geos = strabon.Select(
      "PREFIX geonames: <http://www.geonames.org/ontology#> "
      "SELECT ?g WHERE { ?t a geonames:Feature ; strdf:hasGeometry ?g }");
  ASSERT_TRUE(town_geos.ok());
  EXPECT_EQ(town_geos->rows.size(), 8u);
}

}  // namespace
}  // namespace teleios::noa
