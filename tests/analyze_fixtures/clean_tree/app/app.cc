#include "common/engine.h"

void RunApp(Engine& engine) { engine.Tick(); }
