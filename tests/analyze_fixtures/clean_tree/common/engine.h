// A consistently-ordered two-lock class: a_ is always taken before b_,
// and Step's TELEIOS_REQUIRES(a_) annotation is the only way the
// analyzer can know a_ is held across the b_ acquisition.
#ifndef CLEAN_TREE_COMMON_ENGINE_H_
#define CLEAN_TREE_COMMON_ENGINE_H_

class Engine {
 public:
  void Tick();
  void Step() TELEIOS_REQUIRES(a_);

 private:
  Mutex a_;
  Mutex b_;
};

#endif  // CLEAN_TREE_COMMON_ENGINE_H_
