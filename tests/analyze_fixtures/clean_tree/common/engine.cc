#include "common/engine.h"

void Engine::Tick() {
  MutexLock lock(a_);
  Step();
}

void Engine::Step() {
  MutexLock lock(b_);  // a_ held (REQUIRES) -> b_: one direction only
}
