#include "core/pair.h"

void Node::Transfer(Peer& other) {
  MutexLock lock(mu_);
  other.Receive();  // Node::mu_ held -> acquires Peer::nu_
}

void Node::Receive() { MutexLock lock(mu_); }
