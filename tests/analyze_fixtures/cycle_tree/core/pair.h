// Two classes that take each other's locks in opposite orders across
// two translation units: the canonical ABBA deadlock, invisible to any
// per-file check.
#ifndef CYCLE_TREE_CORE_PAIR_H_
#define CYCLE_TREE_CORE_PAIR_H_

class Peer;

class Node {
 public:
  void Transfer(Peer& other);
  void Receive();

 private:
  Mutex mu_;
};

class Peer {
 public:
  void Transfer(Node& other);
  void Receive();

 private:
  Mutex nu_;
};

#endif  // CYCLE_TREE_CORE_PAIR_H_
