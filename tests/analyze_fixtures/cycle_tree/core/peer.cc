#include "core/pair.h"

void Peer::Transfer(Node& other) {
  MutexLock lock(nu_);
  other.Receive();  // Peer::nu_ held -> acquires Node::mu_
}

void Peer::Receive() { MutexLock lock(nu_); }
