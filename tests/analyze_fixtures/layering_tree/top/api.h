#ifndef LAYERING_TREE_TOP_API_H_
#define LAYERING_TREE_TOP_API_H_

#include "base/util.h"  // fine: top (rank 2) may depend on base (rank 0)

int TopApi();

#endif  // LAYERING_TREE_TOP_API_H_
