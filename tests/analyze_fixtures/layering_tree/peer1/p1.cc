#include "peer2/p2.h"  // TA003: same-rank peer include without an allow edge

int PeerOne() { return PeerTwo(); }
