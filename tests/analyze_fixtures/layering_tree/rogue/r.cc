// TA004: this directory is not declared in layers.txt at all.
#include "base/util.h"

int Rogue() { return BaseUtil(); }
