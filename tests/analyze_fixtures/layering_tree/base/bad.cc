#include "base/util.h"
#include "top/api.h"  // TA002: base (rank 0) must not reach into top (rank 2)

int BaseBad() { return TopApi() + BaseUtil(); }
