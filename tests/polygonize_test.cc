#include <gtest/gtest.h>

#include "geo/polygonize.h"
#include "geo/predicates.h"

namespace teleios::geo {
namespace {

std::vector<uint8_t> Mask(std::initializer_list<std::string> rows) {
  std::vector<uint8_t> mask;
  for (const std::string& row : rows) {
    for (char c : row) mask.push_back(c == '#' ? 1 : 0);
  }
  return mask;
}

double TotalArea(const std::vector<Polygon>& polys) {
  double area = 0;
  for (const Polygon& p : polys) {
    area += SignedRingArea(p.outer);
    for (const Ring& h : p.holes) area += SignedRingArea(h);  // negative
  }
  return area;
}

TEST(PolygonizeTest, SingleCell) {
  auto polys = PolygonizeMask(Mask({"#"}), 1, 1);
  ASSERT_EQ(polys.size(), 1u);
  EXPECT_EQ(polys[0].outer.size(), 4u);
  EXPECT_DOUBLE_EQ(TotalArea(polys), 1.0);
}

TEST(PolygonizeTest, EmptyMask) {
  auto polys = PolygonizeMask(Mask({"..", ".."}), 2, 2);
  EXPECT_TRUE(polys.empty());
}

TEST(PolygonizeTest, FullRectangleCollapsesVertices) {
  auto polys = PolygonizeMask(Mask({"###", "###"}), 3, 2);
  ASSERT_EQ(polys.size(), 1u);
  EXPECT_EQ(polys[0].outer.size(), 4u);  // collinear points collapsed
  EXPECT_DOUBLE_EQ(TotalArea(polys), 6.0);
}

TEST(PolygonizeTest, LShape) {
  auto polys = PolygonizeMask(Mask({"#.", "##"}), 2, 2);
  ASSERT_EQ(polys.size(), 1u);
  EXPECT_EQ(polys[0].outer.size(), 6u);
  EXPECT_DOUBLE_EQ(TotalArea(polys), 3.0);
}

TEST(PolygonizeTest, TwoSeparateRegions) {
  auto polys = PolygonizeMask(Mask({"#.#"}), 3, 1);
  EXPECT_EQ(polys.size(), 2u);
  EXPECT_DOUBLE_EQ(TotalArea(polys), 2.0);
}

TEST(PolygonizeTest, DiagonalTouchSplits) {
  // 4-connectivity: diagonal neighbours are separate polygons.
  auto polys = PolygonizeMask(Mask({"#.", ".#"}), 2, 2);
  EXPECT_EQ(polys.size(), 2u);
  EXPECT_DOUBLE_EQ(TotalArea(polys), 2.0);
}

TEST(PolygonizeTest, RingWithHole) {
  auto polys = PolygonizeMask(Mask({"###", "#.#", "###"}), 3, 3);
  ASSERT_EQ(polys.size(), 1u);
  ASSERT_EQ(polys[0].holes.size(), 1u);
  EXPECT_DOUBLE_EQ(TotalArea(polys), 8.0);
  // The hole center is not inside the polygon.
  EXPECT_FALSE(PointInPolygon({1.5, 1.5}, polys[0]));
  EXPECT_TRUE(PointInPolygon({0.5, 0.5}, polys[0]));
}

TEST(PolygonizeTest, HoleWithIslandInside) {
  auto polys = PolygonizeMask(
      Mask({"#####", "#...#", "#.#.#", "#...#", "#####"}), 5, 5);
  // Outer ring 5x5 with a 3x3 hole, plus a 1x1 island polygon inside.
  ASSERT_EQ(polys.size(), 2u);
  EXPECT_DOUBLE_EQ(TotalArea(polys), 25 - 9 + 1);
}

TEST(PolygonizeTest, OrientationConvention) {
  auto polys = PolygonizeMask(Mask({"##", "##"}), 2, 2);
  ASSERT_EQ(polys.size(), 1u);
  EXPECT_GT(SignedRingArea(polys[0].outer), 0.0);  // shells positive
  auto holed = PolygonizeMask(Mask({"###", "#.#", "###"}), 3, 3);
  ASSERT_EQ(holed.size(), 1u);
  ASSERT_EQ(holed[0].holes.size(), 1u);
  EXPECT_LT(SignedRingArea(holed[0].holes[0]), 0.0);  // holes negative
}

/// Property: polygonized area always equals the number of set cells.
class AreaSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AreaSweep, AreaEqualsCellCount) {
  uint64_t seed = GetParam();
  int w = 17, h = 13;
  std::vector<uint8_t> mask(static_cast<size_t>(w) * h);
  uint64_t state = seed;
  int set = 0;
  for (auto& cell : mask) {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    cell = (state * 0x2545f4914f6cdd1dull >> 62) == 0 ? 1 : 0;  // ~25%
    set += cell;
  }
  auto polys = PolygonizeMask(mask, w, h);
  EXPECT_NEAR(TotalArea(polys), static_cast<double>(set), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AreaSweep,
                         ::testing::Values(1u, 7u, 42u, 123u, 999u, 31337u));

}  // namespace
}  // namespace teleios::geo
