#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <thread>
#include <vector>

#include "array/array.h"
#include "array/array_ops.h"
#include "common/thread_annotations.h"
#include "eo/scene.h"
#include "common/cancellation.h"
#include "exec/parallel_for.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"
#include "mining/features.h"
#include "mining/kmeans.h"
#include "noa/chain.h"
#include "obs/metrics.h"
#include "relational/sql_engine.h"
#include "sciql/sciql_engine.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "vault/formats.h"
#include "vault/vault.h"

namespace teleios::exec {
namespace {

namespace fs = std::filesystem;

/// Restores the global pool to the environment default on scope exit so
/// thread-sweep tests cannot leak their setting into other suites.
class GlobalThreadsGuard {
 public:
  GlobalThreadsGuard() = default;
  ~GlobalThreadsGuard() { ThreadPool::SetGlobalThreads(ThreadPool::DefaultThreads()); }
};

// --- annotated mutex wrappers (common/thread_annotations.h) ---------------
//
// The wrappers must stay byte-for-byte equivalent to the std primitives
// at runtime: these tests hammer them from pool threads so the TSan
// pass (check.sh pass 4) verifies the RAII bookkeeping really locks.

TEST(ThreadAnnotationsTest, MutexLockWrappersExcludeEachOther) {
  GlobalThreadsGuard guard;
  ThreadPool::SetGlobalThreads(4);
  Mutex mu;
  int counter = 0;  // protected by mu
  TaskGroup group;
  for (int t = 0; t < 4; ++t) {
    group.Run([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  group.Wait();
  MutexLock lock(mu);
  EXPECT_EQ(counter, 4000);
}

TEST(ThreadAnnotationsTest, TryLockGuardsTheSameState) {
  GlobalThreadsGuard guard;
  ThreadPool::SetGlobalThreads(4);
  Mutex mu;
  int counter = 0;  // protected by mu
  std::atomic<int> acquired{0};
  TaskGroup group;
  for (int t = 0; t < 4; ++t) {
    group.Run([&] {
      for (int i = 0; i < 1000; ++i) {
        if (mu.TryLock()) {
          ++counter;
          mu.Unlock();
          acquired.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  group.Wait();
  MutexLock lock(mu);
  EXPECT_EQ(counter, acquired.load(std::memory_order_relaxed));
  EXPECT_GT(counter, 0);
}

TEST(ThreadAnnotationsTest, SharedMutexReadersSeeConsistentState) {
  GlobalThreadsGuard guard;
  ThreadPool::SetGlobalThreads(4);
  SharedMutex mu;
  std::vector<int> data{0};  // protected by mu; back() == size()-1 invariant
  std::atomic<int> reads{0};
  TaskGroup group;
  for (int t = 0; t < 2; ++t) {
    group.Run([&] {
      for (int i = 0; i < 500; ++i) {
        WriterMutexLock lock(mu);
        data.push_back(data.back() + 1);
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    group.Run([&] {
      for (int i = 0; i < 500; ++i) {
        ReaderMutexLock lock(mu);
        ASSERT_EQ(data.back(), static_cast<int>(data.size()) - 1);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  group.Wait();
  WriterMutexLock lock(mu);
  EXPECT_EQ(data.size(), 1001u);
  EXPECT_EQ(reads.load(std::memory_order_relaxed), 1000);
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, LifecycleRunsEverySubmittedTask) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4, "lifecycle_test");
    EXPECT_EQ(pool.workers(), 3);
    EXPECT_EQ(pool.parallelism(), 4);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    // Destructor joins workers and drains leftovers.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1, "serial_test");
  EXPECT_EQ(pool.workers(), 0);
  std::thread::id caller = std::this_thread::get_id();
  bool inline_run = false;
  pool.Submit([&] { inline_run = std::this_thread::get_id() == caller; });
  EXPECT_TRUE(inline_run);
  EXPECT_FALSE(pool.OnWorkerThread());
}

TEST(ThreadPoolTest, ThreadCountClampedToOne) {
  ThreadPool pool(0, "clamp_test");
  EXPECT_EQ(pool.parallelism(), 1);
}

TEST(ThreadPoolTest, WorkersStealFromABusySibling) {
  ThreadPool pool(3, "steal_test");  // 2 workers
  obs::Counter* steals = obs::MetricsRegistry::Global().GetCounter(
      obs::WithLabel("teleios_exec_steals_total", "pool", "steal_test"));
  std::atomic<int> ran{0};
  std::atomic<bool> was_worker{false};
  // Submit (not TaskGroup: Wait() would let this caller thread run the
  // task inline) so the flood task must land on a worker. It fills its
  // own deque, then blocks until a task has run — since this thread
  // never consumes and the owner is blocked, the first run must be a
  // steal by the sibling.
  pool.Submit([&] {
    was_worker.store(pool.OnWorkerThread());
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    while (ran.load() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  while (ran.load() < 100) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ran.load(), 100);
  EXPECT_TRUE(was_worker.load());
  EXPECT_GT(steals->value(), 0u);
}

TEST(ThreadPoolTest, TasksCounterAndQueueDepthSettle) {
  obs::Counter* tasks = obs::MetricsRegistry::Global().GetCounter(
      obs::WithLabel("teleios_exec_tasks_total", "pool", "metrics_test"));
  obs::Gauge* depth = obs::MetricsRegistry::Global().GetGauge(
      obs::WithLabel("teleios_exec_queue_depth", "pool", "metrics_test"));
  uint64_t before = tasks->value();
  {
    ThreadPool pool(2, "metrics_test");
    for (int i = 0; i < 50; ++i) pool.Submit([] {});
  }
  EXPECT_EQ(tasks->value(), before + 50);
  EXPECT_EQ(depth->value(), 0);
}

TEST(ThreadPoolTest, DefaultThreadsHonorsEnv) {
  ::setenv("TELEIOS_THREADS", "5", 1);
  EXPECT_EQ(ThreadPool::DefaultThreads(), 5);
  ::setenv("TELEIOS_THREADS", "0", 1);
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);  // invalid -> hardware
  ::unsetenv("TELEIOS_THREADS");
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

// ---------------------------------------------------------------------------
// TaskGroup

TEST(TaskGroupTest, WaitJoinsAllForkedTasks) {
  ThreadPool pool(4, "group_test");
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 64; ++i) group.Run([&ran] { ran.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(ran.load(), 64);
}

TEST(TaskGroupTest, ExceptionCrossesWait) {
  ThreadPool pool(4, "group_throw_test");
  TaskGroup group(&pool);
  group.Run([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

TEST(TaskGroupTest, DestructorSwallowsException) {
  ThreadPool pool(2, "group_dtor_test");
  // Must not terminate: the destructor waits and swallows.
  TaskGroup group(&pool);
  group.Run([] { throw std::runtime_error("unseen"); });
}

// ---------------------------------------------------------------------------
// MorselPlan / ParallelFor

TEST(MorselPlanTest, DependsOnlyOnInputSize) {
  MorselPlan plan = PlanMorsels(1 << 20);
  EXPECT_GT(plan.count, 1u);
  EXPECT_EQ(plan.Begin(0), 0u);
  EXPECT_EQ(plan.End(plan.count - 1, 1 << 20), size_t{1} << 20);
  // Small inputs are one morsel: the serial fast path.
  EXPECT_EQ(PlanMorsels(1000).count, 1u);
  // Explicit grain is respected.
  EXPECT_EQ(PlanMorsels(100, 10).count, 10u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  GlobalThreadsGuard guard;
  ThreadPool::SetGlobalThreads(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelOptions opts;
  opts.grain = 64;
  Status st = ParallelFor(kN, opts, [&](size_t, size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, LowestMorselErrorWins) {
  GlobalThreadsGuard guard;
  ThreadPool::SetGlobalThreads(4);
  ParallelOptions opts;
  opts.grain = 1;
  Status st = ParallelFor(64, opts, [&](size_t m, size_t, size_t) {
    if (m == 3 || m == 40) {
      return Status::InvalidArgument("morsel " + std::to_string(m));
    }
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "morsel 3");
}

TEST(ParallelForTest, BodyExceptionPropagates) {
  GlobalThreadsGuard guard;
  ThreadPool::SetGlobalThreads(4);
  ParallelOptions opts;
  opts.grain = 1;
  EXPECT_THROW(
      {
        (void)ParallelFor(32, opts, [&](size_t m, size_t, size_t) -> Status {
          if (m == 5) throw std::runtime_error("kaboom");
          return Status::OK();
        });
      },
      std::runtime_error);
}

TEST(ParallelForTest, CancellationStopsUnstartedMorsels) {
  GlobalThreadsGuard guard;
  ThreadPool::SetGlobalThreads(2);
  CancellationToken token;
  std::atomic<size_t> executed{0};
  ParallelOptions opts;
  opts.grain = 1;
  opts.cancel = &token;
  Status st = ParallelFor(10000, opts, [&](size_t, size_t, size_t) {
    executed.fetch_add(1);
    token.Cancel();  // cancel from inside the first morsels that run
    return Status::OK();
  });
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_LT(executed.load(), size_t{10000});
  EXPECT_GT(executed.load(), size_t{0});
}

TEST(ParallelForTest, ExpiredDeadlineRunsNothing) {
  GlobalThreadsGuard guard;
  ThreadPool::SetGlobalThreads(4);
  CancellationToken token;
  token.SetDeadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  std::atomic<size_t> executed{0};
  ParallelOptions opts;
  opts.grain = 1;
  opts.cancel = &token;
  Status st = ParallelFor(100, opts, [&](size_t, size_t, size_t) {
    executed.fetch_add(1);
    return Status::OK();
  });
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(executed.load(), size_t{0});
}

TEST(CancellationTokenTest, CheckIsStickyAndTyped) {
  CancellationToken token;
  EXPECT_TRUE(token.Check().ok());
  EXPECT_FALSE(token.Expired());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
  CancellationToken deadline;
  deadline.CancelAfter(std::chrono::nanoseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(deadline.Check().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(deadline.Expired());
}

// ---------------------------------------------------------------------------
// Serial-vs-parallel equivalence: identical bytes at 1, 2 and 8 threads.

storage::TablePtr MakeMeasurements(size_t rows) {
  auto table = std::make_shared<storage::Table>(storage::Schema({
      {"id", storage::ColumnType::kInt64},
      {"band", storage::ColumnType::kString},
      {"temp", storage::ColumnType::kFloat64},
  }));
  uint64_t state = 12345;
  for (size_t i = 0; i < rows; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    double temp = 250.0 + static_cast<double>(state % 100000) / 1000.0;
    EXPECT_TRUE(table
                    ->AppendRow({Value(static_cast<int64_t>(i)),
                                 Value(std::string(1, 'a' + (i % 7))),
                                 Value(temp)})
                    .ok());
  }
  return table;
}

TEST(EquivalenceTest, SqlScanFilterAndAggregate) {
  GlobalThreadsGuard guard;
  storage::Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("m", MakeMeasurements(20000)).ok());
  relational::SqlEngine sql(&catalog);
  const std::string scan =
      "SELECT id, temp FROM m WHERE temp > 300.0 AND id % 3 = 0 ORDER BY id";
  const std::string agg =
      "SELECT band, count(*) AS n, sum(temp) AS s, avg(temp) AS a, "
      "min(temp) AS lo, max(temp) AS hi FROM m GROUP BY band ORDER BY band";
  ThreadPool::SetGlobalThreads(1);
  auto scan1 = sql.Execute(scan);
  auto agg1 = sql.Execute(agg);
  ASSERT_TRUE(scan1.ok() && agg1.ok());
  for (int threads : {2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    auto scan_n = sql.Execute(scan);
    auto agg_n = sql.Execute(agg);
    ASSERT_TRUE(scan_n.ok() && agg_n.ok());
    EXPECT_EQ(scan_n->ToString(25000), scan1->ToString(25000))
        << "scan differs at " << threads << " threads";
    EXPECT_EQ(agg_n->ToString(25000), agg1->ToString(25000))
        << "aggregate differs at " << threads << " threads";
  }
}

array::ArrayPtr MakeRasterArray(int64_t h, int64_t w) {
  auto arr = array::Array::Create(
      "r", {{"y", 0, h}, {"x", 0, w}},
      {{"v", storage::ColumnType::kFloat64}}, {Value(0.0)});
  EXPECT_TRUE(arr.ok());
  double* data = *(*arr)->MutableDoubles(0);
  uint64_t state = 99;
  for (int64_t i = 0; i < h * w; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    data[i] = static_cast<double>(state % 100000) / 997.0;
  }
  return *arr;
}

TEST(EquivalenceTest, ConvolveTileAggregateAndStats) {
  GlobalThreadsGuard guard;
  array::ArrayPtr raster = MakeRasterArray(160, 128);
  const std::vector<double> kernel = {0, 1, 0, 1, -4, 1, 0, 1, 0};
  ThreadPool::SetGlobalThreads(1);
  auto conv1 = array::Convolve2D(*raster, 0, kernel, 3);
  auto tiles1 = array::TileAggregate2D(*raster, 0, 16, 16, "avg");
  auto stats1 = array::ComputeStats(*raster, 0);
  ASSERT_TRUE(conv1.ok() && tiles1.ok() && stats1.ok());
  for (int threads : {2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    auto conv_n = array::Convolve2D(*raster, 0, kernel, 3);
    auto tiles_n = array::TileAggregate2D(*raster, 0, 16, 16, "avg");
    auto stats_n = array::ComputeStats(*raster, 0);
    ASSERT_TRUE(conv_n.ok() && tiles_n.ok() && stats_n.ok());
    EXPECT_EQ(std::memcmp(*(*conv_n)->Doubles(0), *(*conv1)->Doubles(0),
                          sizeof(double) * (*conv1)->num_cells()),
              0)
        << "convolve differs at " << threads << " threads";
    EXPECT_EQ(std::memcmp(*(*tiles_n)->Doubles(0), *(*tiles1)->Doubles(0),
                          sizeof(double) * (*tiles1)->num_cells()),
              0)
        << "tile aggregate differs at " << threads << " threads";
    EXPECT_EQ(stats_n->mean, stats1->mean);
    EXPECT_EQ(stats_n->stddev, stats1->stddev);
    EXPECT_EQ(stats_n->min, stats1->min);
    EXPECT_EQ(stats_n->max, stats1->max);
  }
}

TEST(EquivalenceTest, KMeansAndFeatureExtraction) {
  GlobalThreadsGuard guard;
  eo::SceneSpec spec;
  spec.width = 128;
  spec.height = 128;
  spec.seed = 11;
  spec.num_fires = 5;
  auto scene = eo::GenerateScene(spec);
  ASSERT_TRUE(scene.ok());

  ThreadPool::SetGlobalThreads(1);
  auto patches1 = mining::CutPatches(*scene, 8);
  ASSERT_TRUE(patches1.ok());
  std::vector<std::vector<double>> data1;
  for (const auto& p : *patches1) data1.push_back(p.features);
  auto km1 = mining::KMeans(data1, 4, 30, 17);
  ASSERT_TRUE(km1.ok());

  for (int threads : {2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    auto patches_n = mining::CutPatches(*scene, 8);
    ASSERT_TRUE(patches_n.ok());
    ASSERT_EQ(patches_n->size(), patches1->size());
    for (size_t i = 0; i < patches1->size(); ++i) {
      EXPECT_EQ((*patches_n)[i].row, (*patches1)[i].row);
      EXPECT_EQ((*patches_n)[i].col, (*patches1)[i].col);
      EXPECT_EQ((*patches_n)[i].features, (*patches1)[i].features)
          << "patch " << i << " differs at " << threads << " threads";
    }
    std::vector<std::vector<double>> data_n;
    for (const auto& p : *patches_n) data_n.push_back(p.features);
    auto km_n = mining::KMeans(data_n, 4, 30, 17);
    ASSERT_TRUE(km_n.ok());
    EXPECT_EQ(km_n->iterations, km1->iterations);
    EXPECT_EQ(km_n->assignments, km1->assignments);
    EXPECT_EQ(km_n->centroids, km1->centroids);
    EXPECT_EQ(km_n->inertia, km1->inertia);
  }
}

class BatchEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("exec_batch_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    for (int i = 0; i < 4; ++i) {
      eo::SceneSpec spec;
      spec.width = 64;
      spec.height = 64;
      spec.seed = 100 + i;
      spec.num_fires = 3;
      auto scene = eo::GenerateScene(spec);
      ASSERT_TRUE(scene.ok());
      vault::TerRaster raster = scene->ToTerRaster();
      raster.name = "scene-" + std::to_string(i);
      names_.push_back(raster.name);
      ASSERT_TRUE(
          vault::WriteTer(raster,
                          (dir_ / (raster.name + ".ter")).string())
              .ok());
    }
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// A fresh observatory stack per run so catalogs do not accumulate.
  noa::ChainConfig Config() const {
    noa::ChainConfig config;
    config.classifier.kind = noa::ClassifierKind::kContextual;
    return config;
  }
  Result<noa::ChainResult> RunOnce(const CancellationToken* cancel =
                                       nullptr) {
    storage::Catalog catalog;
    vault::DataVault vault(&catalog);
    auto attached = vault.Attach(dir_.string());
    EXPECT_TRUE(attached.ok());
    sciql::SciQlEngine sciql(&catalog);
    strabon::Strabon strabon;
    noa::ProcessingChain chain(&vault, &sciql, &strabon, &catalog);
    return chain.RunBatch(names_, Config(), cancel);
  }

  fs::path dir_;
  std::vector<std::string> names_;
};

TEST_F(BatchEquivalenceTest, SameProductsAtAnyThreadCount) {
  GlobalThreadsGuard guard;
  ThreadPool::SetGlobalThreads(1);
  auto serial = RunOnce();
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_EQ(serial->product_ids.size(), names_.size());
  EXPECT_TRUE(serial->failures.empty());
  for (int threads : {2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    auto parallel = RunOnce();
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(parallel->product_ids, serial->product_ids)
        << "product order differs at " << threads << " threads";
    EXPECT_TRUE(parallel->failures.empty());
    ASSERT_EQ(parallel->hotspots.size(), serial->hotspots.size());
    for (size_t i = 0; i < serial->hotspots.size(); ++i) {
      EXPECT_EQ(parallel->hotspots[i].pixel_count,
                serial->hotspots[i].pixel_count);
      EXPECT_EQ(parallel->hotspots[i].confidence,
                serial->hotspots[i].confidence);
    }
    EXPECT_EQ(parallel->sciql, serial->sciql);
  }
}

TEST_F(BatchEquivalenceTest, CancelledBatchRecordsSkippedProducts) {
  GlobalThreadsGuard guard;
  ThreadPool::SetGlobalThreads(2);
  CancellationToken token;
  token.Cancel();  // cancelled before the batch starts
  auto batch = RunOnce(&token);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_TRUE(batch->product_ids.empty());
  ASSERT_EQ(batch->failures.size(), names_.size());
  for (const auto& failure : batch->failures) {
    EXPECT_EQ(failure.status.code(), StatusCode::kCancelled);
  }
}

}  // namespace
}  // namespace teleios::exec
