#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace teleios::obs {
namespace {

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0);
}

TEST(Histogram, CountsSumAndBuckets) {
  Histogram h({1, 2, 5});
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(4);
  h.Observe(100);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0);
}

TEST(Histogram, QuantilesOnKnownDistribution) {
  // Buckets every 10 up to 1000; observe 1..1000 uniformly, so the
  // interpolated quantile must sit within one bucket width of the truth.
  std::vector<double> bounds;
  for (double b = 10; b <= 1000; b += 10) bounds.push_back(b);
  Histogram h(bounds);
  for (int v = 1; v <= 1000; ++v) h.Observe(v);
  EXPECT_NEAR(h.Quantile(0.5), 500, 10);
  EXPECT_NEAR(h.Quantile(0.95), 950, 10);
  EXPECT_NEAR(h.Quantile(0.99), 990, 10);
  // Quantiles are clamped to the observed range.
  EXPECT_NEAR(h.Quantile(0.0), 0, 10);
  EXPECT_NEAR(h.Quantile(1.0), 1000, 10);
}

TEST(Histogram, OverflowClampsToLastBound) {
  Histogram h({1, 2});
  h.Observe(1000);
  h.Observe(2000);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2);
}

TEST(Registry, ReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x_total");
  a->Inc(7);
  // Same name, same counter; Reset zeroes but never invalidates.
  EXPECT_EQ(registry.GetCounter("x_total"), a);
  registry.Reset();
  EXPECT_EQ(a->value(), 0u);
  EXPECT_EQ(registry.GetCounter("x_total"), a);
}

TEST(Registry, TextExposition) {
  MetricsRegistry registry;
  registry.GetCounter("teleios_t_requests_total")->Inc(3);
  registry.GetCounter(WithLabel("teleios_t_errors_total", "code", "IoError"))
      ->Inc();
  registry.GetGauge("teleios_t_indexed")->Set(12);
  Histogram* h = registry.GetHistogram(
      WithLabel("teleios_t_latency_millis", "op", "scan"));
  h->Observe(3);
  h->Observe(5);
  std::string text = registry.TextExposition();
  EXPECT_NE(text.find("# TYPE teleios_t_requests_total counter\n"
                      "teleios_t_requests_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("teleios_t_errors_total{code=\"IoError\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE teleios_t_indexed gauge\nteleios_t_indexed 12"),
            std::string::npos);
  // Summary series place labels before the quantile and suffixes on the
  // base name, Prometheus style.
  EXPECT_NE(
      text.find("teleios_t_latency_millis{op=\"scan\",quantile=\"0.5\"}"),
      std::string::npos);
  EXPECT_NE(text.find("teleios_t_latency_millis_sum{op=\"scan\"} 8"),
            std::string::npos);
  EXPECT_NE(text.find("teleios_t_latency_millis_count{op=\"scan\"} 2"),
            std::string::npos);
}

TEST(Registry, JsonExposition) {
  MetricsRegistry registry;
  registry.GetCounter("a_total")->Inc(2);
  registry.GetGauge("b")->Set(1.5);
  registry.GetHistogram("c_millis")->Observe(4);
  std::string json = registry.JsonExposition();
  EXPECT_NE(json.find("\"counters\": {\"a_total\": 2}"), std::string::npos);
  EXPECT_NE(json.find("\"b\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"c_millis\": {\"count\": 1, \"sum\": 4"),
            std::string::npos);
}

TEST(Trace, SpansNestInCreationOrder) {
  ScopedTrace trace("request");
  {
    TraceSpan outer("parse");
    outer.SetAttr("statements", "1");
  }
  {
    TraceSpan outer("execute");
    { TraceSpan inner("scan"); }
    { TraceSpan inner("filter"); }
  }
  SpanNode root = trace.Finish();
  EXPECT_EQ(root.name, "request");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].name, "parse");
  EXPECT_EQ(root.children[0].Attr("statements"), "1");
  ASSERT_EQ(root.children[1].children.size(), 2u);
  EXPECT_EQ(root.children[1].children[0].name, "scan");
  EXPECT_EQ(root.children[1].children[1].name, "filter");
  // DFS lookup and rendering see the whole tree.
  EXPECT_NE(root.Find("filter"), nullptr);
  EXPECT_EQ(root.Find("no-such-span"), nullptr);
  std::string rendered = root.Render();
  EXPECT_NE(rendered.find("request"), std::string::npos);
  EXPECT_NE(rendered.find("    filter"), std::string::npos);
}

TEST(Trace, InnerTraceBecomesSpanOfOuter) {
  ScopedTrace outer("outer");
  {
    ScopedTrace inner("inner");
    { TraceSpan s("work"); }
  }
  SpanNode root = outer.Finish();
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0].name, "inner");
  ASSERT_EQ(root.children[0].children.size(), 1u);
  EXPECT_EQ(root.children[0].children[0].name, "work");
}

TEST(Trace, SpanIsNoOpWithoutActiveTrace) {
  TraceSpan span("orphan");
  span.SetAttr("k", "v");  // must not crash
  EXPECT_FALSE(TraceActive());
  EXPECT_GE(span.ElapsedMillis(), 0);
}

TEST(Trace, SpanFeedsHistogramEvenWithoutTrace) {
  Histogram h({1000000});
  { TraceSpan span("timed", &h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(Trace, FinishIsIdempotent) {
  ScopedTrace trace("t");
  { TraceSpan s("a"); }
  SpanNode first = trace.Finish();
  SpanNode second = trace.Finish();
  EXPECT_EQ(first.children.size(), 1u);
  EXPECT_EQ(second.children.size(), 1u);
}

// Prometheus text-format conformance: escaping and family headers.

TEST(Registry, LabelValuesAreEscapedInExposition) {
  MetricsRegistry registry;
  registry.GetCounter(WithLabel("esc_total", "path", "a\"b\\c\nd"))->Inc();
  std::string text = registry.TextExposition();
  EXPECT_NE(text.find("esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos)
      << text;
}

TEST(Registry, HelpTextIsEscapedAndEmittedOncePerFamily) {
  MetricsRegistry registry;
  registry.SetHelp("helped_total", "first line\nsecond \\ line");
  registry.GetCounter(WithLabel("helped_total", "code", "a"))->Inc();
  registry.GetCounter(WithLabel("helped_total", "code", "b"))->Inc();
  std::string text = registry.TextExposition();
  std::string help = "# HELP helped_total first line\\nsecond \\\\ line\n";
  size_t first = text.find(help);
  ASSERT_NE(first, std::string::npos) << text;
  EXPECT_EQ(text.find(help, first + 1), std::string::npos)
      << "one HELP per family, not per series";
  EXPECT_EQ(text.find("# TYPE helped_total counter", first),
            text.find(help) + help.size())
      << "TYPE follows HELP";
}

TEST(Registry, EveryFamilyHasExactlyOneTypeLine) {
  MetricsRegistry registry;
  registry.GetCounter("fam_a_total")->Inc();
  registry.GetCounter(WithLabel("fam_a_total", "code", "x"))->Inc();
  registry.GetGauge("fam_b")->Set(1);
  registry.GetHistogram(WithLabel("fam_c_millis", "op", "scan"))->Observe(2);
  registry.GetHistogram(WithLabel("fam_c_millis", "op", "sort"))->Observe(3);

  std::set<std::string> typed;
  std::istringstream lines(registry.TextExposition());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      std::string family = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_TRUE(typed.insert(family).second)
          << "duplicate # TYPE for " << family;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    // Every sample belongs to a family announced by a preceding TYPE.
    std::string name = line.substr(0, line.find_first_of("{ "));
    for (const char* suffix : {"_sum", "_count"}) {
      size_t at = name.size() > strlen(suffix)
                      ? name.rfind(suffix)
                      : std::string::npos;
      if (at != std::string::npos && at == name.size() - strlen(suffix) &&
          typed.count(name.substr(0, at))) {
        name = name.substr(0, at);
      }
    }
    EXPECT_TRUE(typed.count(name)) << "sample before its TYPE: " << line;
  }
}

TEST(Registry, UptimeAndBuildInfoAreExposedGlobally) {
  // Process-level series live only in the global registry; instance
  // registries (like this test's locals elsewhere) never invent them.
  std::string text = MetricsRegistry::Global().TextExposition();
  EXPECT_NE(text.find("# TYPE teleios_process_uptime_seconds gauge"),
            std::string::npos);
  EXPECT_NE(text.find("teleios_build_info{compiler="), std::string::npos);
  EXPECT_GT(ProcessUptimeSeconds(), 0.0);

  MetricsRegistry local;
  local.GetCounter("anything_total")->Inc();
  EXPECT_EQ(local.TextExposition().find("teleios_process_uptime_seconds"),
            std::string::npos);
}

// Structured event log: ring bounds, JSON rendering, JSONL sink.

TEST(EventLog, RingDropsOldestAndCountsEverything) {
  EventLog log(3);
  for (int i = 0; i < 5; ++i) {
    log.Post("e" + std::to_string(i), {{"i", std::to_string(i)}});
  }
  std::vector<Event> window = log.Snapshot();
  ASSERT_EQ(window.size(), 3u);
  EXPECT_EQ(window.front().type, "e2");
  EXPECT_EQ(window.back().type, "e4");
  EXPECT_EQ(log.posted_total(), 5u);
  EXPECT_EQ(log.dropped_total(), 2u);
}

TEST(EventLog, ToJsonEscapesFieldValues) {
  Event event;
  event.unix_millis = 7;
  event.type = "test.event";
  event.fields = {{"msg", "say \"hi\"\n"}};
  EXPECT_EQ(event.ToJson(),
            "{\"ts_millis\": 7, \"type\": \"test.event\", "
            "\"msg\": \"say \\\"hi\\\"\\n\"}");
}

TEST(EventLog, JsonlSinkMirrorsEvents) {
  namespace fs = std::filesystem;
  fs::path path = fs::temp_directory_path() /
                  ("event_sink_" + std::to_string(::getpid()) + ".jsonl");
  EventLog log(8);
  ASSERT_TRUE(log.SetSinkPath(path.string()).ok());
  log.Post("sink.a", {{"k", "v"}});
  log.Post("sink.b", {});
  ASSERT_TRUE(log.SetSinkPath("").ok());  // close and flush

  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"type\": \"sink.a\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"k\": \"v\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\": \"sink.b\""), std::string::npos);
  fs::remove(path);
}

// Chrome trace-event codec.

/// Structural equality, attr order and float bits included.
void ExpectSameTree(const SpanNode& a, const SpanNode& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.millis, b.millis);
  EXPECT_EQ(a.start_millis, b.start_millis);
  EXPECT_EQ(a.attrs, b.attrs);
  ASSERT_EQ(a.children.size(), b.children.size());
  for (size_t i = 0; i < a.children.size(); ++i) {
    ExpectSameTree(a.children[i], b.children[i]);
  }
}

TEST(TraceExport, RoundTripsTreeTimestampsAndAttrs) {
  SpanNode root;
  root.name = "sql";
  root.millis = 12.375;
  root.attrs = {{"status", "OK"}, {"rows", "4"}};
  SpanNode admit;
  admit.name = "governor.admit";
  admit.millis = 0.25;
  SpanNode scan;
  scan.name = "exec.filter";
  scan.millis = 11.5;
  scan.start_millis = 0.5;
  scan.attrs = {{"note", "quote \" back\\slash\nnewline"}};
  SpanNode morsel;
  morsel.name = "morsel";
  morsel.millis = 1.0625;
  morsel.start_millis = 0.75;
  scan.children.push_back(morsel);
  root.children.push_back(admit);
  root.children.push_back(scan);

  std::string json = ToChromeTraceJson(root);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  auto parsed = FromChromeTraceJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSameTree(root, *parsed);
  // Byte-exact second generation: the codec is a fixed point.
  EXPECT_EQ(ToChromeTraceJson(*parsed), json);
}

TEST(TraceExport, RejectsMalformedInput) {
  EXPECT_EQ(FromChromeTraceJson("{\"traceEvents\": [").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(FromChromeTraceJson("{\"traceEvents\": []}").status().code(),
            StatusCode::kInvalidArgument);
  // Two depth-0 events cannot form one rooted tree.
  SpanNode root;
  root.name = "a";
  std::string one = ToChromeTraceJson(root);
  std::string events = one.substr(one.find('['));
  events = events.substr(1, events.rfind(']') - 1);
  std::string twin =
      "{\"traceEvents\": [" + events + ", " + events + "]}";
  EXPECT_EQ(FromChromeTraceJson(twin).status().code(),
            StatusCode::kInvalidArgument);
}

// Race-audit stress tests: run these under TELEIOS_SANITIZE=thread
// (scripts/check.sh pass 4). Counters/gauges/histogram buckets are
// atomics; registry creation and exposition take the registry mutex;
// traces are thread-local, so concurrent per-thread traces never share
// span state.

TEST(ThreadSafety, ConcurrentMetricUpdatesAndExposition) {
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("obs_stress_counter_total");
  counter->Reset();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, counter, t] {
      // Same-name lookups race with creation of per-thread names.
      Gauge* gauge = registry.GetGauge("obs_stress_gauge");
      Histogram* histo = registry.GetHistogram(
          WithLabel("obs_stress_millis", "thread", std::to_string(t)));
      for (int i = 0; i < kIters; ++i) {
        counter->Inc();
        gauge->Add(1.0);
        gauge->Add(-1.0);
        histo->Observe(static_cast<double>(i % 13));
        if (i % 500 == 0) {
          // Exposition concurrent with updates must stay well-formed.
          std::string text = registry.TextExposition();
          EXPECT_NE(text.find("obs_stress_counter_total"),
                    std::string::npos);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(registry.GetGauge("obs_stress_gauge")->value(), 0.0);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry
                  .GetHistogram(WithLabel("obs_stress_millis", "thread",
                                          std::to_string(t)))
                  ->count(),
              static_cast<uint64_t>(kIters));
  }
}

TEST(ThreadSafety, PerThreadTracesStayIsolated) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int round = 0; round < 50; ++round) {
        ScopedTrace trace("stress" + std::to_string(t));
        {
          TraceSpan outer("outer");
          outer.SetAttr("thread", std::to_string(t));
          TraceSpan inner("inner");
        }
        SpanNode root = trace.Finish();
        ASSERT_EQ(root.children.size(), 1u);
        ASSERT_EQ(root.children[0].children.size(), 1u);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace
}  // namespace teleios::obs
