#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace teleios::obs {
namespace {

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0);
}

TEST(Histogram, CountsSumAndBuckets) {
  Histogram h({1, 2, 5});
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(4);
  h.Observe(100);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0);
}

TEST(Histogram, QuantilesOnKnownDistribution) {
  // Buckets every 10 up to 1000; observe 1..1000 uniformly, so the
  // interpolated quantile must sit within one bucket width of the truth.
  std::vector<double> bounds;
  for (double b = 10; b <= 1000; b += 10) bounds.push_back(b);
  Histogram h(bounds);
  for (int v = 1; v <= 1000; ++v) h.Observe(v);
  EXPECT_NEAR(h.Quantile(0.5), 500, 10);
  EXPECT_NEAR(h.Quantile(0.95), 950, 10);
  EXPECT_NEAR(h.Quantile(0.99), 990, 10);
  // Quantiles are clamped to the observed range.
  EXPECT_NEAR(h.Quantile(0.0), 0, 10);
  EXPECT_NEAR(h.Quantile(1.0), 1000, 10);
}

TEST(Histogram, OverflowClampsToLastBound) {
  Histogram h({1, 2});
  h.Observe(1000);
  h.Observe(2000);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2);
}

TEST(Registry, ReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x_total");
  a->Inc(7);
  // Same name, same counter; Reset zeroes but never invalidates.
  EXPECT_EQ(registry.GetCounter("x_total"), a);
  registry.Reset();
  EXPECT_EQ(a->value(), 0u);
  EXPECT_EQ(registry.GetCounter("x_total"), a);
}

TEST(Registry, TextExposition) {
  MetricsRegistry registry;
  registry.GetCounter("teleios_t_requests_total")->Inc(3);
  registry.GetCounter(WithLabel("teleios_t_errors_total", "code", "IoError"))
      ->Inc();
  registry.GetGauge("teleios_t_indexed")->Set(12);
  Histogram* h = registry.GetHistogram(
      WithLabel("teleios_t_latency_millis", "op", "scan"));
  h->Observe(3);
  h->Observe(5);
  std::string text = registry.TextExposition();
  EXPECT_NE(text.find("# TYPE teleios_t_requests_total counter\n"
                      "teleios_t_requests_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("teleios_t_errors_total{code=\"IoError\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE teleios_t_indexed gauge\nteleios_t_indexed 12"),
            std::string::npos);
  // Summary series place labels before the quantile and suffixes on the
  // base name, Prometheus style.
  EXPECT_NE(
      text.find("teleios_t_latency_millis{op=\"scan\",quantile=\"0.5\"}"),
      std::string::npos);
  EXPECT_NE(text.find("teleios_t_latency_millis_sum{op=\"scan\"} 8"),
            std::string::npos);
  EXPECT_NE(text.find("teleios_t_latency_millis_count{op=\"scan\"} 2"),
            std::string::npos);
}

TEST(Registry, JsonExposition) {
  MetricsRegistry registry;
  registry.GetCounter("a_total")->Inc(2);
  registry.GetGauge("b")->Set(1.5);
  registry.GetHistogram("c_millis")->Observe(4);
  std::string json = registry.JsonExposition();
  EXPECT_NE(json.find("\"counters\": {\"a_total\": 2}"), std::string::npos);
  EXPECT_NE(json.find("\"b\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"c_millis\": {\"count\": 1, \"sum\": 4"),
            std::string::npos);
}

TEST(Trace, SpansNestInCreationOrder) {
  ScopedTrace trace("request");
  {
    TraceSpan outer("parse");
    outer.SetAttr("statements", "1");
  }
  {
    TraceSpan outer("execute");
    { TraceSpan inner("scan"); }
    { TraceSpan inner("filter"); }
  }
  SpanNode root = trace.Finish();
  EXPECT_EQ(root.name, "request");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].name, "parse");
  EXPECT_EQ(root.children[0].Attr("statements"), "1");
  ASSERT_EQ(root.children[1].children.size(), 2u);
  EXPECT_EQ(root.children[1].children[0].name, "scan");
  EXPECT_EQ(root.children[1].children[1].name, "filter");
  // DFS lookup and rendering see the whole tree.
  EXPECT_NE(root.Find("filter"), nullptr);
  EXPECT_EQ(root.Find("no-such-span"), nullptr);
  std::string rendered = root.Render();
  EXPECT_NE(rendered.find("request"), std::string::npos);
  EXPECT_NE(rendered.find("    filter"), std::string::npos);
}

TEST(Trace, InnerTraceBecomesSpanOfOuter) {
  ScopedTrace outer("outer");
  {
    ScopedTrace inner("inner");
    { TraceSpan s("work"); }
  }
  SpanNode root = outer.Finish();
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0].name, "inner");
  ASSERT_EQ(root.children[0].children.size(), 1u);
  EXPECT_EQ(root.children[0].children[0].name, "work");
}

TEST(Trace, SpanIsNoOpWithoutActiveTrace) {
  TraceSpan span("orphan");
  span.SetAttr("k", "v");  // must not crash
  EXPECT_FALSE(TraceActive());
  EXPECT_GE(span.ElapsedMillis(), 0);
}

TEST(Trace, SpanFeedsHistogramEvenWithoutTrace) {
  Histogram h({1000000});
  { TraceSpan span("timed", &h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(Trace, FinishIsIdempotent) {
  ScopedTrace trace("t");
  { TraceSpan s("a"); }
  SpanNode first = trace.Finish();
  SpanNode second = trace.Finish();
  EXPECT_EQ(first.children.size(), 1u);
  EXPECT_EQ(second.children.size(), 1u);
}

// Race-audit stress tests: run these under TELEIOS_SANITIZE=thread
// (scripts/check.sh pass 4). Counters/gauges/histogram buckets are
// atomics; registry creation and exposition take the registry mutex;
// traces are thread-local, so concurrent per-thread traces never share
// span state.

TEST(ThreadSafety, ConcurrentMetricUpdatesAndExposition) {
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("obs_stress_counter_total");
  counter->Reset();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, counter, t] {
      // Same-name lookups race with creation of per-thread names.
      Gauge* gauge = registry.GetGauge("obs_stress_gauge");
      Histogram* histo = registry.GetHistogram(
          WithLabel("obs_stress_millis", "thread", std::to_string(t)));
      for (int i = 0; i < kIters; ++i) {
        counter->Inc();
        gauge->Add(1.0);
        gauge->Add(-1.0);
        histo->Observe(static_cast<double>(i % 13));
        if (i % 500 == 0) {
          // Exposition concurrent with updates must stay well-formed.
          std::string text = registry.TextExposition();
          EXPECT_NE(text.find("obs_stress_counter_total"),
                    std::string::npos);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(registry.GetGauge("obs_stress_gauge")->value(), 0.0);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry
                  .GetHistogram(WithLabel("obs_stress_millis", "thread",
                                          std::to_string(t)))
                  ->count(),
              static_cast<uint64_t>(kIters));
  }
}

TEST(ThreadSafety, PerThreadTracesStayIsolated) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int round = 0; round < 50; ++round) {
        ScopedTrace trace("stress" + std::to_string(t));
        {
          TraceSpan outer("outer");
          outer.SetAttr("thread", std::to_string(t));
          TraceSpan inner("inner");
        }
        SpanNode root = trace.Finish();
        ASSERT_EQ(root.children.size(), 1u);
        ASSERT_EQ(root.children[0].children.size(), 1u);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace
}  // namespace teleios::obs
