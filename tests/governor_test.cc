// The resource governor: hierarchical memory budgets (exact accounting,
// refusal semantics, OOM fault injection), the admission controller
// (bounded slots, bounded FIFO queue, deadline-aware waits), the circuit
// breaker state machine under an injected clock, retry/deadline
// composition, and the end-to-end overload scenario through the
// observatory facade. Everything here is deterministic on one core: the
// breaker never sleeps (injected clock), admission waits are bounded by
// token deadlines of a few tens of milliseconds, and OOM injection is
// counted, not timed.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "core/observatory.h"
#include "eo/scene.h"
#include "common/cancellation.h"
#include "governor/admission.h"
#include "governor/circuit_breaker.h"
#include "governor/fault_injection.h"
#include "governor/memory_budget.h"
#include "io/fault_injection.h"
#include "io/filesystem.h"
#include "io/retry.h"
#include "mining/kmeans.h"
#include "noa/chain.h"

namespace teleios {
namespace {

namespace stdfs = std::filesystem;
using governor::BudgetCharge;
using governor::BudgetFaultSpec;
using governor::CircuitBreaker;
using governor::CircuitBreakerConfig;
using governor::FaultInjectingBudget;
using governor::MemoryBudget;
using governor::ScopedBudget;

// ---------------------------------------------------------------------
// MemoryBudget
// ---------------------------------------------------------------------

TEST(MemoryBudgetTest, ReserveReleaseBalancesToZero) {
  MemoryBudget budget("b", 1000);
  ASSERT_TRUE(budget.Reserve(400).ok());
  ASSERT_TRUE(budget.Reserve(600).ok());
  EXPECT_EQ(budget.used(), 1000u);
  budget.Release(400);
  budget.Release(600);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak(), 1000u);
}

TEST(MemoryBudgetTest, RefusalNamesTheBudgetAndChargesNothing) {
  MemoryBudget budget("tiny-root", 100);
  Status refused = budget.Reserve(101);
  ASSERT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(refused.message().find("tiny-root"), std::string::npos);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak(), 0u);  // a refusal never inflates the peak
}

TEST(MemoryBudgetTest, OverflowSizedRequestIsRefusedNotWrapped) {
  MemoryBudget budget("b", 1000);
  ASSERT_TRUE(budget.Reserve(500).ok());
  EXPECT_EQ(budget.Reserve(MemoryBudget::kUnlimited).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.used(), 500u);
  budget.Release(500);
}

TEST(MemoryBudgetTest, ChildChargesEveryAncestor) {
  MemoryBudget root("root", 1000);
  MemoryBudget query("query", MemoryBudget::kUnlimited, &root);
  ASSERT_TRUE(query.Reserve(300).ok());
  EXPECT_EQ(query.used(), 300u);
  EXPECT_EQ(root.used(), 300u);
  query.Release(300);
  EXPECT_EQ(query.used(), 0u);
  EXPECT_EQ(root.used(), 0u);
}

TEST(MemoryBudgetTest, AncestorRefusalRollsBackTheChild) {
  MemoryBudget root("root", 100);
  MemoryBudget query("query", MemoryBudget::kUnlimited, &root);
  Status refused = query.Reserve(200);
  ASSERT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(refused.message().find("root"), std::string::npos);
  // Nothing left charged anywhere, no phantom peak in the child.
  EXPECT_EQ(query.used(), 0u);
  EXPECT_EQ(root.used(), 0u);
  EXPECT_EQ(query.peak(), 0u);
}

TEST(MemoryBudgetTest, ZeroByteReserveIsFree) {
  MemoryBudget budget("b", 0);  // refuses any non-zero request
  EXPECT_TRUE(budget.Reserve(0).ok());
  EXPECT_EQ(budget.Reserve(1).code(), StatusCode::kResourceExhausted);
}

TEST(BudgetChargeTest, RaiiReleasesOnScopeExitAndMoves) {
  MemoryBudget budget("b", 1000);
  {
    auto charge = governor::TryCharge(&budget, 128, "test buffer");
    ASSERT_TRUE(charge.ok());
    EXPECT_EQ(budget.used(), 128u);
    BudgetCharge moved = std::move(*charge);
    EXPECT_EQ(budget.used(), 128u);  // moving does not double-release
    moved.reset();
    EXPECT_EQ(budget.used(), 0u);
    moved.reset();  // idempotent
  }
  EXPECT_EQ(budget.used(), 0u);
}

TEST(BudgetChargeTest, TryChargePrefixesTheRefusalWithWhat) {
  MemoryBudget budget("b", 10);
  auto charge = governor::TryCharge(&budget, 100, "sort selection");
  ASSERT_FALSE(charge.ok());
  EXPECT_EQ(charge.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(charge.status().message().find("sort selection"),
            std::string::npos);
}

TEST(ScopedBudgetTest, OverridesAndRestoresTheThreadBudget) {
  MemoryBudget* default_budget = governor::CurrentBudget();
  EXPECT_EQ(default_budget, &governor::ProcessBudget());
  MemoryBudget mine("mine", MemoryBudget::kUnlimited);
  {
    ScopedBudget scope(&mine);
    EXPECT_EQ(governor::CurrentBudget(), &mine);
    auto charge = governor::ChargeCurrent(64, "scratch");
    ASSERT_TRUE(charge.ok());
    EXPECT_EQ(mine.used(), 64u);
  }
  EXPECT_EQ(governor::CurrentBudget(), default_budget);
  EXPECT_EQ(mine.used(), 0u);
}

// ---------------------------------------------------------------------
// FaultInjectingBudget
// ---------------------------------------------------------------------

TEST(FaultInjectingBudgetTest, InjectsAtTheKthReservation) {
  MemoryBudget base("base", MemoryBudget::kUnlimited);
  FaultInjectingBudget injector(&base);
  BudgetFaultSpec spec;
  spec.inject_at = 2;
  injector.Arm(spec);
  ASSERT_TRUE(injector.Reserve(10).ok());
  Status second = injector.Reserve(10);
  ASSERT_EQ(second.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(second.message().find("injected allocation failure"),
            std::string::npos);
  EXPECT_EQ(injector.reservations(), 2u);
  EXPECT_EQ(injector.injected(), 1u);
  // The refused reservation charged nothing; the accepted one did.
  EXPECT_EQ(base.used(), 10u);
  injector.Release(10);
  EXPECT_EQ(base.used(), 0u);
  EXPECT_EQ(injector.used(), 0u);
}

TEST(FaultInjectingBudgetTest, EveryNRepeatsAndZeroBytesAreNotCounted) {
  MemoryBudget base("base", MemoryBudget::kUnlimited);
  FaultInjectingBudget injector(&base);
  BudgetFaultSpec spec;
  spec.inject_at = 1;
  spec.every_n = 2;
  injector.Arm(spec);
  EXPECT_TRUE(injector.Reserve(0).ok());  // not counted, not injected
  EXPECT_FALSE(injector.Reserve(8).ok());  // #1 injected
  EXPECT_TRUE(injector.Reserve(8).ok());   // #2
  EXPECT_FALSE(injector.Reserve(8).ok());  // #3 = 1 + 2 injected
  EXPECT_TRUE(injector.Reserve(8).ok());   // #4
  EXPECT_FALSE(injector.Reserve(8).ok());  // #5 injected
  EXPECT_EQ(injector.injected(), 3u);
  injector.Disarm();
  EXPECT_TRUE(injector.Reserve(8).ok());
  injector.Release(24);
  EXPECT_EQ(base.used(), 0u);
}

// ---------------------------------------------------------------------
// CircuitBreaker (injected clock; no sleeping)
// ---------------------------------------------------------------------

class BreakerTest : public ::testing::Test {
 protected:
  BreakerTest() : breaker_("test-breaker", Config()) {
    now_ = std::chrono::steady_clock::now();
    breaker_.SetClockForTest([this] { return now_; });
  }

  static CircuitBreakerConfig Config() {
    CircuitBreakerConfig config;
    config.failure_threshold = 2;
    config.open_duration = std::chrono::milliseconds(100);
    config.half_open_successes = 1;
    return config;
  }

  void Advance(int ms) { now_ += std::chrono::milliseconds(ms); }

  std::chrono::steady_clock::time_point now_;
  CircuitBreaker breaker_;
};

TEST_F(BreakerTest, TripsAfterConsecutiveFailuresAndSheds) {
  ASSERT_TRUE(breaker_.Admit().ok());
  breaker_.RecordFailure();
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kClosed);
  ASSERT_TRUE(breaker_.Admit().ok());
  breaker_.RecordFailure();
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker_.trips(), 1u);
  Status shed = breaker_.Admit();
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.message().find("test-breaker"), std::string::npos);
}

TEST_F(BreakerTest, SuccessResetsTheConsecutiveCount) {
  ASSERT_TRUE(breaker_.Admit().ok());
  breaker_.RecordFailure();
  ASSERT_TRUE(breaker_.Admit().ok());
  breaker_.RecordSuccess();  // streak broken
  ASSERT_TRUE(breaker_.Admit().ok());
  breaker_.RecordFailure();
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker_.trips(), 0u);
}

TEST_F(BreakerTest, HalfOpenAdmitsOneProbeThenCloses) {
  ASSERT_TRUE(breaker_.Admit().ok());
  breaker_.RecordFailure();
  ASSERT_TRUE(breaker_.Admit().ok());
  breaker_.RecordFailure();  // open
  Advance(99);
  EXPECT_EQ(breaker_.Admit().code(), StatusCode::kUnavailable);
  Advance(2);  // past the cool-down
  ASSERT_TRUE(breaker_.Admit().ok());  // the probe
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kHalfOpen);
  // A second caller while the probe is in flight is shed.
  EXPECT_EQ(breaker_.Admit().code(), StatusCode::kUnavailable);
  breaker_.RecordSuccess();
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker_.Admit().ok());
  breaker_.RecordSuccess();
}

TEST_F(BreakerTest, FailedProbeReopensForAnotherCoolDown) {
  ASSERT_TRUE(breaker_.Admit().ok());
  breaker_.RecordFailure();
  ASSERT_TRUE(breaker_.Admit().ok());
  breaker_.RecordFailure();
  Advance(101);
  ASSERT_TRUE(breaker_.Admit().ok());
  breaker_.RecordFailure();  // probe failed
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker_.trips(), 2u);
  EXPECT_EQ(breaker_.Admit().code(), StatusCode::kUnavailable);
}

TEST_F(BreakerTest, RunOnlyCountsInfrastructureFailures) {
  // NotFound is the caller's problem, not the dependency's: it must
  // pass through unchanged and never trip the breaker.
  for (int i = 0; i < 5; ++i) {
    Status s = breaker_.Run([] { return Status::NotFound("no such raster"); });
    EXPECT_EQ(s.code(), StatusCode::kNotFound);
  }
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kClosed);
  // Two I/O errors trip it.
  (void)breaker_.Run([] { return Status::IoError("disk"); });
  (void)breaker_.Run([] { return Status::IoError("disk"); });
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kOpen);
  // Shed calls never invoke the function.
  bool ran = false;
  Status shed = breaker_.Run([&] {
    ran = true;
    return Status::OK();
  });
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(ran);
}

TEST_F(BreakerTest, ReconfigureResetsToClosed) {
  ASSERT_TRUE(breaker_.Admit().ok());
  breaker_.RecordFailure();
  ASSERT_TRUE(breaker_.Admit().ok());
  breaker_.RecordFailure();
  ASSERT_EQ(breaker_.state(), CircuitBreaker::State::kOpen);
  breaker_.Reconfigure(Config());
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker_.Admit().ok());
  breaker_.RecordSuccess();
}

// ---------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------

governor::AdmissionConfig AdmitConfig(int max_concurrent, int max_queue,
                                      int max_wait_ms) {
  governor::AdmissionConfig config;
  config.max_concurrent = max_concurrent;
  config.max_queue = max_queue;
  config.max_wait = std::chrono::milliseconds(max_wait_ms);
  return config;
}

TEST(AdmissionTest, TicketReleasesTheSlot) {
  governor::AdmissionController admission(AdmitConfig(1, 0, 0));
  auto first = admission.Admit(nullptr);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(admission.running(), 1);
  // Slot taken, queue capacity zero: shed instantly.
  auto second = admission.Admit(nullptr);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  first->reset();
  EXPECT_EQ(admission.running(), 0);
  auto third = admission.Admit(nullptr);
  EXPECT_TRUE(third.ok());
}

TEST(AdmissionTest, ZeroMaxWaitTimesOutWithoutStrandingTheQueue) {
  governor::AdmissionController admission(AdmitConfig(1, 4, 0));
  auto held = admission.Admit(nullptr);
  ASSERT_TRUE(held.ok());
  auto timed_out = admission.Admit(nullptr);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(timed_out.status().message().find("timed out"),
            std::string::npos);
  // The give-up waiter removed itself; nothing is left queued.
  EXPECT_EQ(admission.queued(), 0);
}

TEST(AdmissionTest, CancelledTokenReturnsItsStatus) {
  governor::AdmissionController admission(AdmitConfig(1, 4, 10000));
  auto held = admission.Admit(nullptr);
  ASSERT_TRUE(held.ok());
  CancellationToken token;
  token.Cancel();
  auto cancelled = admission.Admit(&token);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  EXPECT_NE(cancelled.status().message().find("abandoned admission queue"),
            std::string::npos);
  EXPECT_EQ(admission.queued(), 0);
}

TEST(AdmissionTest, DeadlineBoundsTheQueueWait) {
  governor::AdmissionController admission(AdmitConfig(1, 4, 10000));
  auto held = admission.Admit(nullptr);
  ASSERT_TRUE(held.ok());
  CancellationToken token;
  token.CancelAfter(std::chrono::milliseconds(30));
  auto start = std::chrono::steady_clock::now();
  auto expired = admission.Admit(&token);
  auto waited = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);
  // The wait ended near the 30ms deadline, nowhere near max_wait=10s.
  EXPECT_LT(waited, std::chrono::seconds(5));
  EXPECT_EQ(admission.queued(), 0);
}

// ---------------------------------------------------------------------
// RetryPolicy + CancellationToken (the PR's retry/deadline fix)
// ---------------------------------------------------------------------

TEST(RetryDeadlineTest, ExpiredTokenStopsRetriesAndKeepsTheLastError) {
  CancellationToken token;
  token.CancelAfter(std::chrono::nanoseconds(0));  // already expired
  io::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.cancel = &token;
  int calls = 0;
  Status s = io::WithRetry(policy, "flaky op", [&] {
    ++calls;
    return Status::IoError("disk hiccup");
  });
  EXPECT_EQ(calls, 1);  // no retry once the budget is spent
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  // The cause of the final failed attempt is not lost.
  EXPECT_NE(s.message().find("disk hiccup"), std::string::npos);
  EXPECT_NE(s.message().find("last error"), std::string::npos);
}

TEST(RetryDeadlineTest, BackoffNeverOvershootsTheDeadline) {
  CancellationToken token;
  token.CancelAfter(std::chrono::milliseconds(50));
  io::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 60000;  // sleeping would blow the deadline
  policy.cancel = &token;
  int calls = 0;
  auto start = std::chrono::steady_clock::now();
  Status s = io::WithRetry(policy, "slow-retry op", [&] {
    ++calls;
    return Status::IoError("transient");
  });
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(s.message().find("overshoot"), std::string::npos);
  // It refused to sleep rather than discovering the deadline afterwards.
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(RetryDeadlineTest, CancelledTokenStopsBetweenAttempts) {
  CancellationToken token;
  io::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.cancel = &token;
  int calls = 0;
  Status s = io::WithRetry(policy, "op", [&] {
    ++calls;
    token.Cancel();  // cancelled mid-flight after the first attempt
    return Status::IoError("fault");
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
}

TEST(RetryDeadlineTest, TokenWithoutDeadlineDoesNotLimitRetries) {
  CancellationToken token;  // live, no deadline
  io::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.cancel = &token;
  int calls = 0;
  Status s = io::WithRetry(policy, "op", [&] {
    ++calls;
    return Status::IoError("persistent");
  });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------
// k-means under a budget (mining tier)
// ---------------------------------------------------------------------

TEST(GovernedEngineTest, KMeansRespectsTheThreadBudget) {
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 200; ++i) {
    data.push_back({static_cast<double>(i % 17), static_cast<double>(i % 5),
                    static_cast<double>(i)});
  }
  MemoryBudget tiny("tiny", 16);
  {
    ScopedBudget scope(&tiny);
    auto refused = mining::KMeans(data, 3);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(tiny.used(), 0u);  // balance survives the error path
  MemoryBudget roomy("roomy", 16u << 20);
  {
    ScopedBudget scope(&roomy);
    auto fits = mining::KMeans(data, 3);
    ASSERT_TRUE(fits.ok()) << fits.status().ToString();
    EXPECT_EQ(fits->centroids.size(), 3u);
  }
  EXPECT_EQ(roomy.used(), 0u);
}

// ---------------------------------------------------------------------
// Observatory facade: budgets, admission, OOM sweeps, overload E2E
// ---------------------------------------------------------------------

class GovernedObservatoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = stdfs::temp_directory_path() /
           ("governor_test_" + std::to_string(::getpid()));
    stdfs::create_directories(dir_);
    eo::SceneSpec spec;
    spec.width = 64;
    spec.height = 64;
    spec.num_fires = 3;
    for (const char* name : {"alpha", "beta", "gamma", "delta"}) {
      spec.name = name;
      spec.seed += 13;
      auto scene = eo::GenerateScene(spec);
      ASSERT_TRUE(scene.ok());
      ASSERT_TRUE(vault::WriteTer(scene->ToTerRaster(),
                                  (dir_ / (std::string(name) + ".ter"))
                                      .string())
                      .ok());
    }
    ASSERT_TRUE(veo_.AttachArchive(dir_.string()).ok());
  }
  void TearDown() override { stdfs::remove_all(dir_); }

  static noa::ChainConfig FireConfig() {
    noa::ChainConfig config;
    config.classifier.kind = noa::ClassifierKind::kThreshold;
    config.classifier.threshold_kelvin = 315.0;
    return config;
  }

  stdfs::path dir_;
  core::VirtualEarthObservatory veo_;
};

TEST_F(GovernedObservatoryTest, QueryFailsCleanlyUnderATinyBudget) {
  MemoryBudget tiny("tiny-root", 16);
  Result<storage::Table> starved = [&] {
    ScopedBudget scope(&tiny);
    return veo_.Sql("SELECT satellite, count(*) AS n FROM vault_rasters "
                    "GROUP BY satellite");
  }();
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(tiny.used(), 0u);
  // The same statement succeeds with room, and the governor leaves no
  // residue: an ungoverned rerun gives the identical table.
  MemoryBudget roomy("roomy-root", 64u << 20);
  Result<storage::Table> governed = [&] {
    ScopedBudget scope(&roomy);
    return veo_.Sql("SELECT satellite, count(*) AS n FROM vault_rasters "
                    "GROUP BY satellite");
  }();
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  EXPECT_EQ(roomy.used(), 0u);
  auto ungoverned = veo_.Sql(
      "SELECT satellite, count(*) AS n FROM vault_rasters "
      "GROUP BY satellite");
  ASSERT_TRUE(ungoverned.ok());
  EXPECT_EQ(governed->ToString(1000), ungoverned->ToString(1000));
}

TEST_F(GovernedObservatoryTest, OomInjectionSweepNeverCrashesOrLeaks) {
  ASSERT_TRUE(veo_.RegisterRaster("alpha").ok());
  const std::string query =
      "SELECT count(*) AS n FROM alpha WHERE LANDMASK > 0.5";
  MemoryBudget root("sweep-root", MemoryBudget::kUnlimited);
  FaultInjectingBudget injector(&root);
  ScopedBudget scope(&injector);

  // Baseline: disarmed pass-through; learn the reservation count.
  auto baseline = veo_.SciQl(query);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  uint64_t reservations = injector.reservations();
  ASSERT_GT(reservations, 0u) << "query must exercise budget charges";

  // Refuse the k-th reservation for every k: each run must fail with a
  // clean kResourceExhausted (no crash, no bad_alloc escape) and leave
  // the budget balanced at zero.
  for (uint64_t k = 1; k <= reservations; ++k) {
    BudgetFaultSpec spec;
    spec.inject_at = k;
    injector.Arm(spec);
    auto starved = veo_.SciQl(query);
    ASSERT_FALSE(starved.ok()) << "k=" << k;
    EXPECT_EQ(starved.status().code(), StatusCode::kResourceExhausted)
        << "k=" << k << ": " << starved.status().ToString();
    EXPECT_EQ(root.used(), 0u) << "k=" << k;
    EXPECT_EQ(injector.used(), 0u) << "k=" << k;
  }

  // Disarmed again the result is bit-identical to the baseline.
  injector.Disarm();
  auto recovered = veo_.SciQl(query);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->ToString(1000), baseline->ToString(1000));
}

TEST_F(GovernedObservatoryTest, AdmissionShedsWhenSaturated) {
  veo_.SetAdmissionConfig(AdmitConfig(1, 0, 0));
  auto held = veo_.admission().Admit(nullptr);
  ASSERT_TRUE(held.ok());
  auto shed = veo_.Sql("SELECT name FROM vault_rasters");
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  held->reset();
  auto admitted = veo_.Sql("SELECT name FROM vault_rasters");
  EXPECT_TRUE(admitted.ok()) << admitted.status().ToString();
  veo_.SetAdmissionConfig(governor::AdmissionConfig{});
}

TEST_F(GovernedObservatoryTest, AdmissionHonoursTheCallersDeadline) {
  veo_.SetAdmissionConfig(AdmitConfig(1, 4, 10000));
  auto held = veo_.admission().Admit(nullptr);
  ASSERT_TRUE(held.ok());
  CancellationToken token;
  token.CancelAfter(std::chrono::milliseconds(30));
  auto expired = veo_.Sql("SELECT name FROM vault_rasters", &token);
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(veo_.admission().queued(), 0);
  held->reset();
  veo_.SetAdmissionConfig(governor::AdmissionConfig{});
}

TEST_F(GovernedObservatoryTest, ProfileShowsTheAdmitSpan) {
  auto profile = veo_.Sql("PROFILE SELECT name FROM vault_rasters");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  std::set<std::string> spans;
  for (size_t r = 0; r < profile->num_rows(); ++r) {
    spans.insert(profile->Get(r, 0).AsString());
  }
  EXPECT_TRUE(spans.count("governor.admit"))
      << "PROFILE output must surface queue wait";
}

TEST_F(GovernedObservatoryTest, GovernorMetricsAreExposed) {
  ASSERT_TRUE(veo_.Sql("SELECT name FROM vault_rasters").ok());
  std::string text = veo_.MetricsText();
  EXPECT_NE(text.find("teleios_governor_admission_admitted_total"),
            std::string::npos);
  EXPECT_NE(text.find("teleios_governor_query_peak_bytes"),
            std::string::npos);
  EXPECT_NE(text.find("teleios_governor_query_leak_bytes"),
            std::string::npos);
}

TEST_F(GovernedObservatoryTest, VaultIngestBreakerTripsAndRecovers) {
  auto now = std::chrono::steady_clock::now();
  veo_.vault().ingest_breaker().SetClockForTest([&now] { return now; });

  io::PosixFileSystem posix;
  io::FaultInjectingFileSystem faulty(&posix);
  io::ScopedFileSystem fs_scope(&faulty);
  io::FaultSpec spec;
  spec.kind = io::FaultKind::kIoError;
  spec.inject_at = 1;
  spec.every_n = 1;  // every operation fails
  faulty.Arm(spec);

  // Three distinct rasters fail ingestion (each quarantined after its
  // retries); the third consecutive infrastructure failure trips the
  // breaker, so the fourth is shed before doing any I/O.
  for (const char* name : {"alpha", "beta", "gamma"}) {
    auto r = veo_.vault().GetRasterArray(name);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kIoError) << name;
  }
  EXPECT_EQ(veo_.vault().ingest_breaker().state(),
            CircuitBreaker::State::kOpen);
  uint64_t ops_before = faulty.ops();
  auto shed = veo_.vault().GetRasterArray("delta");
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(faulty.ops(), ops_before);  // shed without touching the disk

  // Recovery: the fault clears, the cool-down elapses, the half-open
  // probe succeeds and ingestion works again.
  faulty.Disarm();
  now += std::chrono::milliseconds(1000);
  auto healed = veo_.vault().GetRasterArray("delta");
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(veo_.vault().ingest_breaker().state(),
            CircuitBreaker::State::kClosed);
  veo_.vault().ingest_breaker().SetClockForTest(nullptr);
}

TEST_F(GovernedObservatoryTest, ExportBreakerShedsAfterPersistentFailures) {
  noa::ProcessingChain chain(&veo_.vault(), &veo_.sciql(), &veo_.strabon(),
                             &veo_.catalog());
  auto now = std::chrono::steady_clock::now();
  chain.export_breaker().SetClockForTest([&now] { return now; });

  noa::ChainConfig config = FireConfig();
  // A file where the output directory should be: every export fails.
  stdfs::path blocker = dir_ / "not_a_directory";
  ASSERT_TRUE(io::GetFileSystem()->WriteFileAtomic(blocker.string(), "x").ok());
  config.output_dir = (blocker / "out").string();

  auto batch = chain.RunBatch({"alpha", "beta", "gamma", "delta"}, config);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->failures.size(), 4u);
  EXPECT_TRUE(batch->product_ids.empty());
  EXPECT_GE(chain.export_breaker().trips(), 1u);
  // Once the breaker tripped, later products shed with kUnavailable
  // instead of burning a retry budget each.
  bool saw_shed = false;
  for (const noa::ChainFailure& failure : batch->failures) {
    EXPECT_FALSE(failure.status.ok());
    saw_shed = saw_shed ||
               failure.status.code() == StatusCode::kUnavailable;
  }
  EXPECT_TRUE(saw_shed);

  // Recovery: cool-down elapses, a valid output directory, and the next
  // run (different classifier => different product ids) fully succeeds.
  now += std::chrono::milliseconds(1000);
  noa::ChainConfig good = FireConfig();
  good.classifier.kind = noa::ClassifierKind::kContextual;
  good.output_dir = (dir_ / "products").string();
  ASSERT_TRUE(io::GetFileSystem()->CreateDir(good.output_dir).ok());
  auto recovered = chain.RunBatch({"alpha", "beta"}, good);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->failures.empty());
  EXPECT_EQ(recovered->product_ids.size(), 2u);
  EXPECT_EQ(chain.export_breaker().state(), CircuitBreaker::State::kClosed);
}

TEST_F(GovernedObservatoryTest, OverloadEndToEnd) {
  // Acceptance scenario: a batch plus queries against an undersized
  // budget shed cleanly (kResourceExhausted / kUnavailable, zero
  // crashes), the budget balances to zero, and once the budget is
  // raised the results are identical to an ungoverned run.
  MemoryBudget starved_root("starved", 1024);
  {
    ScopedBudget scope(&starved_root);
    auto batch =
        veo_.RunFireChainBatch({"alpha", "beta", "gamma"}, FireConfig());
    // Either the whole batch was refused or every product failed; both
    // are clean sheds, not crashes.
    if (batch.ok()) {
      EXPECT_EQ(batch->failures.size(), 3u);
      for (const noa::ChainFailure& failure : batch->failures) {
        EXPECT_EQ(failure.status.code(), StatusCode::kResourceExhausted)
            << failure.status.ToString();
      }
    } else {
      EXPECT_EQ(batch.status().code(), StatusCode::kResourceExhausted);
    }
    auto q = veo_.Sql("SELECT satellite, count(*) AS n FROM vault_rasters "
                      "GROUP BY satellite");
    EXPECT_TRUE(q.ok() ||
                q.status().code() == StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(starved_root.used(), 0u);

  // Raise the budget: the identical batch now fully succeeds...
  MemoryBudget roomy_root("roomy", 256u << 20);
  Result<noa::ChainResult> governed = [&] {
    ScopedBudget scope(&roomy_root);
    return veo_.RunFireChainBatch({"alpha", "beta", "gamma"}, FireConfig());
  }();
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  EXPECT_TRUE(governed->failures.empty());
  ASSERT_EQ(governed->product_ids.size(), 3u);
  EXPECT_EQ(roomy_root.used(), 0u);
  EXPECT_GT(roomy_root.peak(), 0u);

  // ... and matches an ungoverned run of the same inputs on a fresh
  // observatory, product for product and hotspot for hotspot.
  core::VirtualEarthObservatory fresh;
  ASSERT_TRUE(fresh.AttachArchive(dir_.string()).ok());
  auto baseline =
      fresh.RunFireChainBatch({"alpha", "beta", "gamma"}, FireConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_EQ(governed->product_ids, baseline->product_ids);
  ASSERT_EQ(governed->hotspots.size(), baseline->hotspots.size());
  for (size_t i = 0; i < governed->hotspots.size(); ++i) {
    EXPECT_EQ(governed->hotspots[i].confidence,
              baseline->hotspots[i].confidence)
        << "hotspot " << i;
  }
}

}  // namespace
}  // namespace teleios
