#include <gtest/gtest.h>

#include "eo/ontology.h"
#include "eo/product.h"
#include "eo/scene.h"
#include "geo/predicates.h"
#include "rdf/turtle.h"
#include "strabon/strabon.h"

namespace teleios::eo {
namespace {

SceneSpec SmallSpec() {
  SceneSpec spec;
  spec.width = 64;
  spec.height = 64;
  spec.seed = 99;
  spec.num_fires = 3;
  return spec;
}

TEST(SceneTest, DeterministicUnderSeed) {
  auto a = GenerateScene(SmallSpec());
  auto b = GenerateScene(SmallSpec());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->tir039, b->tir039);
  EXPECT_EQ(a->landmask, b->landmask);
  SceneSpec other = SmallSpec();
  other.seed = 100;
  auto c = GenerateScene(other);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->tir039, c->tir039);
}

TEST(SceneTest, HasLandAndSea) {
  auto scene = GenerateScene(SmallSpec());
  ASSERT_TRUE(scene.ok());
  size_t land = 0;
  for (uint8_t v : scene->landmask) land += v;
  EXPECT_GT(land, scene->PixelCount() / 10);
  EXPECT_LT(land, scene->PixelCount() * 9 / 10);
}

TEST(SceneTest, FiresAreHotOnLand) {
  auto scene = GenerateScene(SmallSpec());
  ASSERT_TRUE(scene.ok());
  ASSERT_EQ(scene->fires.size(), 3u);
  for (const FireEvent& fire : scene->fires) {
    size_t i = static_cast<size_t>(fire.center_row) * scene->spec.width +
               static_cast<size_t>(fire.center_col);
    EXPECT_EQ(scene->landmask[i], 1);
    // Fire pixels show the SEVIRI signature: T3.9 much greater than T10.8.
    EXPECT_GT(scene->tir039[i] - scene->tir108[i], 15.0);
  }
}

TEST(SceneTest, CloudCoverTracksSpec) {
  SceneSpec spec = SmallSpec();
  spec.cloud_cover = 0.25;
  auto scene = GenerateScene(spec);
  ASSERT_TRUE(scene.ok());
  size_t clouds = 0;
  for (uint8_t v : scene->cloudmask) clouds += v;
  double frac = static_cast<double>(clouds) / scene->PixelCount();
  EXPECT_NEAR(frac, 0.25, 0.07);
}

TEST(SceneTest, SeaColderThanLand) {
  auto scene = GenerateScene(SmallSpec());
  ASSERT_TRUE(scene.ok());
  double land_sum = 0, sea_sum = 0;
  size_t land_n = 0, sea_n = 0;
  for (size_t i = 0; i < scene->PixelCount(); ++i) {
    if (scene->cloudmask[i]) continue;
    if (scene->landmask[i]) {
      land_sum += scene->tir108[i];
      ++land_n;
    } else {
      sea_sum += scene->tir108[i];
      ++sea_n;
    }
  }
  ASSERT_GT(land_n, 0u);
  ASSERT_GT(sea_n, 0u);
  EXPECT_GT(land_sum / land_n, sea_sum / sea_n);
}

TEST(SceneTest, GeoreferencingCoversFootprint) {
  auto scene = GenerateScene(SmallSpec());
  ASSERT_TRUE(scene.ok());
  geo::Point tl = scene->transform.PixelToWorld(0, 0);
  geo::Point br = scene->transform.PixelToWorld(scene->spec.width,
                                                scene->spec.height);
  EXPECT_DOUBLE_EQ(tl.x, scene->spec.lon_min);
  EXPECT_DOUBLE_EQ(tl.y, scene->spec.lat_max);
  EXPECT_NEAR(br.x, scene->spec.lon_max, 1e-9);
  EXPECT_NEAR(br.y, scene->spec.lat_min, 1e-9);
}

TEST(SceneTest, RasterRoundTrip) {
  auto scene = GenerateScene(SmallSpec());
  ASSERT_TRUE(scene.ok());
  vault::TerRaster raster = scene->ToTerRaster();
  EXPECT_EQ(raster.band_names.size(), 6u);
  auto back = SceneFromRaster(raster);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->tir039, scene->tir039);
  EXPECT_EQ(back->landmask, scene->landmask);
  EXPECT_EQ(back->spec.acquisition_time, scene->spec.acquisition_time);
}

TEST(SceneTest, SceneFromRasterRequiresBands) {
  vault::TerRaster raster;
  raster.width = 2;
  raster.height = 2;
  raster.band_names = {"VIS006"};
  raster.bands = {{1, 2, 3, 4}};
  EXPECT_FALSE(SceneFromRaster(raster).ok());
}

TEST(SceneTest, GroundTruthFiresNonEmpty) {
  auto scene = GenerateScene(SmallSpec());
  ASSERT_TRUE(scene.ok());
  geo::Geometry truth = scene->GroundTruthFires();
  EXPECT_FALSE(truth.IsEmpty());
  EXPECT_GT(truth.Area(), 0.0);
}

TEST(SceneTest, LandPolygonsMatchMaskRoughly) {
  auto scene = GenerateScene(SmallSpec());
  ASSERT_TRUE(scene.ok());
  geo::Geometry land = LandPolygons(*scene, 4);
  ASSERT_FALSE(land.IsEmpty());
  // Compare polygon area against the landmask fraction of footprint area.
  size_t land_cells = 0;
  for (uint8_t v : scene->landmask) land_cells += v;
  double frac = static_cast<double>(land_cells) / scene->PixelCount();
  double footprint = (scene->spec.lon_max - scene->spec.lon_min) *
                     (scene->spec.lat_max - scene->spec.lat_min);
  EXPECT_NEAR(land.Area() / footprint, frac, 0.15);
}

TEST(ProductTest, MetadataFromHeader) {
  vault::TerHeader header;
  header.name = "MSG2-x";
  header.satellite = "Meteosat-9";
  header.sensor = "SEVIRI";
  header.width = 10;
  header.height = 10;
  header.acquisition_time = 1187997600;
  header.transform = {21, 38.5, 0.01, -0.01, 0, 0};
  header.path = "/tmp/x.ter";
  ProductMetadata meta = MetadataFromHeader(header, ProductLevel::kL1);
  EXPECT_EQ(meta.id, "MSG2-x");
  EXPECT_EQ(meta.level, ProductLevel::kL1);
  EXPECT_NE(meta.footprint_wkt.find("POLYGON"), std::string::npos);
}

TEST(ProductTest, RegisterRowAndTriples) {
  ProductMetadata meta;
  meta.id = "p1";
  meta.satellite = "Meteosat-9";
  meta.sensor = "SEVIRI";
  meta.level = ProductLevel::kL2;
  meta.acquisition_time = 1187997600;
  meta.footprint_wkt = "POLYGON ((21 36, 23 36, 23 38, 21 38, 21 36))";
  meta.derived_from = "p0";

  storage::Catalog catalog;
  ASSERT_TRUE(RegisterProductRow(meta, &catalog).ok());
  ASSERT_TRUE(RegisterProductRow(meta, &catalog).ok());  // appends again
  auto table = catalog.GetTable("products");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 2u);

  strabon::Strabon strabon;
  ASSERT_TRUE(RegisterProductTriples(meta, &strabon).ok());
  auto found = strabon.Select(
      "SELECT ?p WHERE { ?p a noa:Product ; noa:hasProcessingLevel \"L2\" ; "
      "noa:wasDerivedFrom ?parent . }");
  ASSERT_TRUE(found.ok()) << found.status().ToString();
  EXPECT_EQ(found->rows.size(), 1u);
}

TEST(OntologyTest, ParsesAndHasClasses) {
  rdf::TripleStore store;
  auto added = rdf::ParseTurtle(OntologyTurtle(), &store);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_GT(*added, 30u);
}

TEST(OntologyTest, RdfsClosureInfersTypes) {
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::ParseTurtle(OntologyTurtle(), &store).ok());
  // Add an instance typed as the most specific class.
  std::string ns(kNoaNs);
  store.Add(rdf::Term::Iri(ns + "h1"), rdf::Term::Iri(rdf::kRdfType),
            rdf::Term::Iri(ns + "Hotspot"));
  size_t inferred = MaterializeRdfsClosure(&store);
  EXPECT_GT(inferred, 0u);
  // Hotspot subClassOf Fire subClassOf Event: h1 must now be an Event.
  auto events = store.Match(rdf::Term::Iri(ns + "h1"),
                            rdf::Term::Iri(rdf::kRdfType),
                            rdf::Term::Iri(ns + "Event"));
  EXPECT_EQ(events.size(), 1u);
}

TEST(OntologyTest, SubPropertyInheritance) {
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::ParseTurtle(OntologyTurtle(), &store).ok());
  std::string ns(kNoaNs);
  // refinedGeometry subPropertyOf hasGeometry.
  store.Add(rdf::Term::Iri(ns + "h1"), rdf::Term::Iri(ns + "refinedGeometry"),
            rdf::Term::WktLiteral("POINT (1 1)"));
  MaterializeRdfsClosure(&store);
  auto generic = store.Match(rdf::Term::Iri(ns + "h1"),
                             rdf::Term::Iri(ns + "hasGeometry"),
                             std::nullopt);
  EXPECT_EQ(generic.size(), 1u);
}

TEST(OntologyTest, SuperClassesQuery) {
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::ParseTurtle(OntologyTurtle(), &store).ok());
  std::string ns(kNoaNs);
  auto supers = SuperClassesOf(store, ns + "Sea");
  // Sea -> WaterBody -> Region.
  EXPECT_EQ(supers.size(), 2u);
  EXPECT_TRUE(SuperClassesOf(store, ns + "NoSuchClass").empty());
}

/// Sweep: scenes of several sizes keep basic radiometric invariants.
class SceneSweep : public ::testing::TestWithParam<int> {};

TEST_P(SceneSweep, RadiometryInRange) {
  SceneSpec spec = SmallSpec();
  spec.width = spec.height = GetParam();
  auto scene = GenerateScene(spec);
  ASSERT_TRUE(scene.ok());
  for (size_t i = 0; i < scene->PixelCount(); ++i) {
    EXPECT_GE(scene->vis006[i], 0.0);
    EXPECT_LE(scene->vis006[i], 1.2);
    EXPECT_GT(scene->tir108[i], 200.0);
    EXPECT_LT(scene->tir108[i], 400.0);
    EXPECT_GT(scene->tir039[i], 200.0);
    EXPECT_LT(scene->tir039[i], 450.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SceneSweep, ::testing::Values(16, 48, 96));

}  // namespace
}  // namespace teleios::eo
