// Tests for the runtime lock-order validator (common/deadlock.{h,cc}).
//
// The engine tests drive the On* hooks directly with fake addresses, so
// they run (and protect the validator) in EVERY build configuration —
// deadlock.cc is always compiled; only the Mutex wrapper calls are
// conditional. The final test exercises real Mutex objects and is
// skipped unless the build was configured with TELEIOS_DEADLOCK_CHECK.

#include "common/deadlock.h"

#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "gtest/gtest.h"

namespace teleios::deadlock {
namespace {

std::vector<std::string>& Reports() {
  static std::vector<std::string>* reports = new std::vector<std::string>();
  return *reports;
}

void CaptureReport(const std::string& report) {
  Reports().push_back(report);
}

class DeadlockGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ResetGraphForTest();
    Reports().clear();
    previous_ = SetHandler(&CaptureReport);
  }
  void TearDown() override {
    SetHandler(previous_);
    ResetGraphForTest();
  }

  // Balanced scoped acquisition of fake mutex addresses.
  void Acquire(const void* mu) {
    OnAcquire(mu);
    OnAcquired(mu);
  }

  Handler previous_ = nullptr;
};

TEST_F(DeadlockGraphTest, ConsistentOrderReportsNothing) {
  int a = 0, b = 0;
  for (int i = 0; i < 3; ++i) {
    Acquire(&a);
    Acquire(&b);
    OnRelease(&b);
    OnRelease(&a);
  }
  EXPECT_TRUE(Reports().empty());
  EXPECT_EQ(InversionCount(), 0u);
}

TEST_F(DeadlockGraphTest, AbbaInversionIsReportedWithoutOverlap) {
  int a = 0, b = 0;
  // First half of the ABBA pair: a before b. Released before the second
  // half starts, so the two never overlap in time — only the recorded
  // ORDER condemns them.
  Acquire(&a);
  Acquire(&b);
  OnRelease(&b);
  OnRelease(&a);

  Acquire(&b);
  Acquire(&a);  // b held while acquiring a: inversion
  OnRelease(&a);
  OnRelease(&b);

  ASSERT_EQ(Reports().size(), 1u);
  EXPECT_NE(Reports()[0].find("lock-order inversion"), std::string::npos);
  EXPECT_EQ(InversionCount(), 1u);
}

TEST_F(DeadlockGraphTest, TransitiveInversionIsReported) {
  int a = 0, b = 0, c = 0;
  Acquire(&a);
  Acquire(&b);
  OnRelease(&b);
  OnRelease(&a);
  Acquire(&b);
  Acquire(&c);
  OnRelease(&c);
  OnRelease(&b);

  Acquire(&c);
  Acquire(&a);  // c -> a closes a -> b -> c transitively
  OnRelease(&a);
  OnRelease(&c);

  ASSERT_EQ(Reports().size(), 1u);
  EXPECT_EQ(InversionCount(), 1u);
}

TEST_F(DeadlockGraphTest, RecursiveAcquisitionIsReported) {
  int a = 0;
  Acquire(&a);
  OnAcquire(&a);  // same thread, same mutex: certain deadlock
  OnRelease(&a);
  ASSERT_EQ(Reports().size(), 1u);
  EXPECT_NE(Reports()[0].find("recursive acquisition"), std::string::npos);
}

TEST_F(DeadlockGraphTest, TryLockRecordsNoOrderEdges) {
  int a = 0, b = 0;
  // try_lock cannot block, so holding a while try-locking b must not
  // commit an a -> b edge ...
  Acquire(&a);
  OnTryAcquired(&b);
  OnRelease(&b);
  OnRelease(&a);
  // ... and the opposite blocking order afterwards is legal.
  Acquire(&b);
  Acquire(&a);
  OnRelease(&a);
  OnRelease(&b);
  EXPECT_TRUE(Reports().empty());
}

TEST_F(DeadlockGraphTest, DestroyDropsHistoryForRecycledAddress) {
  int a = 0, b = 0;
  Acquire(&a);
  Acquire(&b);
  OnRelease(&b);
  OnRelease(&a);
  OnDestroy(&b);  // b's mutex dies; a new mutex may reuse the address
  Acquire(&b);
  Acquire(&a);
  OnRelease(&a);
  OnRelease(&b);
  EXPECT_TRUE(Reports().empty());
}

TEST_F(DeadlockGraphTest, ResetClearsEdgesAndCounter) {
  int a = 0, b = 0;
  Acquire(&a);
  Acquire(&b);
  OnRelease(&b);
  OnRelease(&a);
  ResetGraphForTest();
  Acquire(&b);
  Acquire(&a);
  OnRelease(&a);
  OnRelease(&b);
  EXPECT_TRUE(Reports().empty());
  EXPECT_EQ(InversionCount(), 0u);
}

TEST_F(DeadlockGraphTest, RealMutexIntegration) {
#if defined(TELEIOS_DEADLOCK_CHECK)
  Mutex first;
  Mutex second;
  {
    MutexLock a(first);
    MutexLock b(second);
  }
  {
    MutexLock b(second);
    MutexLock a(first);  // inversion through the instrumented wrappers
  }
  ASSERT_EQ(Reports().size(), 1u);
  EXPECT_NE(Reports()[0].find("lock-order inversion"), std::string::npos);
#else
  GTEST_SKIP() << "build configured without TELEIOS_DEADLOCK_CHECK";
#endif
}

}  // namespace
}  // namespace teleios::deadlock
