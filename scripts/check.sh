#!/usr/bin/env bash
# Tier-1 gate: plain build + full ctest, then a sanitizer build
# (ASan + UBSan) over the same test suite. Run from the repo root.
#
#   scripts/check.sh            # both passes
#   scripts/check.sh --fast     # plain pass only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

run_pass() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

echo "== pass 1/2: plain build + ctest =="
run_pass build

if [[ "${1:-}" == "--fast" ]]; then
  echo "check.sh: fast mode, skipping sanitizer pass"
  exit 0
fi

echo "== pass 2/2: ASan + UBSan build + ctest =="
run_pass build-sanitize -DTELEIOS_SANITIZE=address,undefined

echo "check.sh: all passes green"
