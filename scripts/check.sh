#!/usr/bin/env bash
# Tier-1 gate: plain build + full ctest (serial and TELEIOS_THREADS=8),
# then a sanitizer build (ASan + UBSan), a TSan build (with the runtime
# deadlock validator compiled in via TELEIOS_DEADLOCK_CHECK) over the
# same test suite, and a static-analysis pass (clang
# -Werror=thread-safety over the thread-safety annotations, the
# teleios_lint ctest target, and the teleios_analyze whole-tree
# lock-order + layering analysis). Run from the repo root.
#
#   scripts/check.sh            # all passes
#   scripts/check.sh --fast     # plain pass only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

run_pass() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

echo "== pass 1/5: plain build + ctest =="
run_pass build

echo "== pass 2/5: ctest again with TELEIOS_THREADS=8 =="
TELEIOS_THREADS=8 ctest --test-dir build --output-on-failure -j "${JOBS}"

if [[ "${1:-}" == "--fast" ]]; then
  echo "check.sh: fast mode, skipping sanitizer passes"
  exit 0
fi

echo "== pass 3/5: ASan + UBSan build + ctest =="
run_pass build-sanitize -DTELEIOS_SANITIZE=address,undefined

echo "== pass 4/5: TSan build + ctest (TELEIOS_THREADS=8, deadlock check on) =="
# TELEIOS_DEADLOCK_CHECK compiles the runtime lock-order validator into
# the Mutex wrappers: one green run proves every acquisition ORDER taken
# by the suite is acyclic (the graph accumulates over the process
# lifetime), not just that no interleaving happened to hang. Paired with
# TSan because both want the maximally-concurrent configuration.
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTELEIOS_SANITIZE=thread -DTELEIOS_DEADLOCK_CHECK=ON
cmake --build build-tsan -j "${JOBS}"
TELEIOS_THREADS=8 ctest --test-dir build-tsan --output-on-failure -j "${JOBS}"

echo "== pass 4b/5: overload leg — governor tests under tight budgets =="
# The resource-governor suite again, now with an externally tightened
# process budget and a tiny admission pool, under both sanitizer builds:
# shed paths and refusal paths must stay clean under ASan/UBSan (no
# leak on any error path) and TSan (admission queue + breaker + budget
# locking). Facade-level tests install their own roomy budget via
# ScopedBudget, so a 64m process root only starves what means to be
# starved.
TELEIOS_MEMORY_BUDGET=64m TELEIOS_MAX_CONCURRENT_QUERIES=2 \
  ctest --test-dir build-sanitize --output-on-failure -R "governor_test|GovernedObservatoryTest|MemoryBudgetTest|AdmissionTest|BreakerTest"
TELEIOS_MEMORY_BUDGET=64m TELEIOS_MAX_CONCURRENT_QUERIES=2 TELEIOS_THREADS=8 \
  ctest --test-dir build-tsan --output-on-failure -R "governor_test|GovernedObservatoryTest|MemoryBudgetTest|AdmissionTest|BreakerTest"

echo "== pass 4c/5: introspection leg — every statement traced and flagged =="
# The introspection suite (sys.* tables, KillQuery, query log, event
# ring) plus the obs format/codec tests, with sampling on every
# statement and a zero slow-query threshold: the costliest observability
# configuration must be leak-free under ASan/UBSan and race-free under
# TSan (registry ledger, event ring, and trace buffers are all hit from
# every worker thread).
TELEIOS_TRACE_SAMPLE=1 TELEIOS_SLOW_QUERY_MS=0 \
  ctest --test-dir build-sanitize --output-on-failure -R "IntrospectionTest|Registry\.|EventLog\.|TraceExport\.|Trace\.|ThreadSafety"
TELEIOS_TRACE_SAMPLE=1 TELEIOS_SLOW_QUERY_MS=0 TELEIOS_THREADS=8 \
  ctest --test-dir build-tsan --output-on-failure -R "IntrospectionTest|Registry\.|EventLog\.|TraceExport\.|Trace\.|ThreadSafety"

echo "== pass 4d/5: durability leg — crash sweep with aggressive checkpointing =="
# The recovery sweep and WAL unit tests again under both sanitizer
# builds, with the auto-checkpoint threshold squeezed to 4 KiB so the
# checkpoint protocol (rotate + carry-forward + truncate) fires inside
# the kill window on nearly every workload: every replay, rollover and
# poisoned-segment path must be leak-free under ASan/UBSan and the
# writer/durability-manager locking race-free under TSan.
TELEIOS_WAL_CHECKPOINT_BYTES=4k \
  ctest --test-dir build-sanitize --output-on-failure -R "RecoverySweepTest|WalTest|RetryTest"
TELEIOS_WAL_CHECKPOINT_BYTES=4k TELEIOS_THREADS=8 \
  ctest --test-dir build-tsan --output-on-failure -R "RecoverySweepTest|WalTest|RetryTest"

echo "== pass 4e/5: server leg — wire protocol under tight admission =="
# The network service layer (E2E server suite + wire-protocol
# malformation corpus) under both sanitizer builds, with the admission
# pool squeezed to 2 so concurrent wire statements pile into the queue:
# session teardown, shed paths, and mid-stream disconnects must be
# leak-free under ASan/UBSan, and the session registry / streaming
# backpressure / drain handshake race-free under TSan.
TELEIOS_MAX_CONCURRENT_QUERIES=2 \
  ctest --test-dir build-sanitize --output-on-failure -R "ServerTest|ProtocolTest|WireProtocolFuzz"
TELEIOS_MAX_CONCURRENT_QUERIES=2 TELEIOS_THREADS=8 \
  ctest --test-dir build-tsan --output-on-failure -R "ServerTest|ProtocolTest|WireProtocolFuzz"

echo "== pass 4f/5: chaos leg — transport faults, leases, and the socket sweep =="
# The network fault-tolerance suite under both sanitizer builds: the
# fault-injecting transport unit programs, the dedup window, lease
# expiry, the heartbeat/write-timeout wire tests, the
# kill-at-every-socket-op sweep (every fault point must leave the
# server serviceable, leak-free, and exactly-once on WAL replay), and
# the reconnect storm. The storm is the TSan centerpiece: eight
# resilient clients reconnecting through injected disconnects hammer
# the session registry, dedup window, and accept loop concurrently.
ctest --test-dir build-sanitize --output-on-failure \
  -R "TransportFaultTest|DedupRegistryTest|SessionLeaseTest|ChaosServerTest"
TELEIOS_THREADS=8 ctest --test-dir build-tsan --output-on-failure \
  -R "TransportFaultTest|DedupRegistryTest|SessionLeaseTest|ChaosServerTest"

echo "== pass 5/5: static analysis (thread-safety annotations + lint + analyzer) =="
if command -v clang++ >/dev/null 2>&1; then
  # Compile-time lock-discipline check: the annotated build must be
  # warning-clean under -Werror=thread-safety (clang only).
  cmake -B build-analysis -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_COMPILER=clang++ -DTELEIOS_THREAD_SAFETY_ANALYSIS=ON
  cmake --build build-analysis -j "${JOBS}"
  ctest --test-dir build-analysis --output-on-failure -R "teleios_lint|LintRuleTest|LintScannerTest|LintPathTest"
else
  echo "check.sh: clang++ not found; thread-safety analysis skipped," \
       "running teleios_lint from the plain build"
  ctest --test-dir build --output-on-failure -R "teleios_lint|LintRuleTest|LintScannerTest|LintPathTest"
fi

# Whole-tree cross-file analysis: lock-order cycle detection over every
# TU at once plus the layer-DAG check against layers.txt. ctest covers
# it too; running the binary here prints the edge/statistics summary
# into the check log.
./build/tools/teleios_analyze/teleios_analyze \
  --layers tools/teleios_analyze/layers.txt src
ctest --test-dir build --output-on-failure -R "Analyze|LayerSpec|DeadlockGraphTest"

echo "check.sh: all passes green"
